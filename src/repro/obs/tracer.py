"""Structured spans and events over the simulated clock.

Span taxonomy (the ``category`` field):

``query``
    One SQL statement, driver lane.  Under the lifecycle manager
    (:mod:`repro.engine.lifecycle`) also the lifecycle instants:
    ``query.admitted``, ``query.queued``, ``query.rejected`` (admission
    control or open circuit), ``query.cancelled``, ``query.deadline``,
    ``query.circuit_open``, and ``query.shuffles_released``.
``job`` / ``stage``
    Scheduler activity, driver lane; stages nest under jobs.
``task``
    One task attempt on a worker lane; duration is the cost model's
    estimate for the task's measured volumes.
``shuffle``
    Instants: ``shuffle.write``, ``shuffle.fetch``,
    ``shuffle.fetch_failed``.
``recovery``
    Instants: ``lineage.recovery`` (lost map outputs recomputed),
    ``task.reexecution``, ``task.retry`` (transient failure, attempt will
    be retried with backoff), ``task.speculative`` (straggler backup copy
    launched); plus ``retry backoff`` spans charging the backoff delay to
    the failed worker's lane.
``cluster``
    Instants: ``worker.kill``, ``worker.restart``, ``worker.added``,
    ``worker.blacklisted`` (repeated failures; probation starts),
    ``worker.probation`` (probation served, schedulable again).
``cache``
    Instants: ``cache.hit``, ``block.evict``.
``pde``
    Instants: one per run-time re-planning decision, carrying the
    observed statistics that justified it.
``sim``
    Slot-occupancy spans emitted by
    :class:`~repro.costmodel.simulator.ClusterSimulator` when handed a
    tracer.

A disabled tracer's emit methods return immediately — the engine's hot
path pays one predicate check and nothing else.  The embedded
:class:`~repro.obs.metrics.MetricsRegistry` is always live (see its
module docstring for why).

Cancellation and cleanup invariants
-----------------------------------

When queries run concurrently under the lifecycle manager, each query
owns a private span stack that the manager swaps in via
:meth:`Tracer.use_stack` at every cooperative handoff — so interleaved
queries' spans nest correctly and never parent across queries.  A query
that reaches a terminal state (done, cancelled, deadline-expired, or
failed) must leave:

* **no open spans** — its query span and any abandoned job/stage spans
  are force-closed with the terminal status (``end_span`` pops through
  children; the manager drains any stragglers on the private stack);
* **no orphaned pinned shuffle blocks** — map outputs it registered are
  released (``ShuffleManager.release_shuffle``) unless the query
  completed normally;
* **no accumulator contributions from cancelled attempts** — attempts
  buffer accumulator updates in their :class:`~repro.engine.task.TaskContext`
  and the scheduler merges only kept attempts, so an attempt killed by
  the cancellation token simply discards its buffer.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from repro.costmodel.constants import (
    DEFAULT_HARDWARE,
    EngineProfile,
    HardwareProfile,
    SHARK_MEM,
)
from repro.costmodel.models import TaskCostVector, estimate_task_seconds
from repro.obs.clock import DRIVER_LANE, VirtualClock
from repro.obs.events import FlightRecorder
from repro.obs.metrics import MetricsRegistry


@dataclass
class Span:
    """A named interval on one lane of the simulated timeline."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    lane: Hashable
    start: float
    end: Optional[float] = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass
class TraceEvent:
    """A zero-duration instant on the simulated timeline."""

    name: str
    category: str
    lane: Hashable
    timestamp: float
    args: dict[str, Any] = field(default_factory=dict)


class QueryTrace:
    """Everything one tracer recorded, with Chrome-trace export."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)

    # ------------------------------------------------------------------
    # Queries (tests and EXPLAIN ANALYZE use these)
    # ------------------------------------------------------------------
    def spans_in_category(self, category: str) -> list[Span]:
        return [span for span in self.spans if span.category == category]

    def spans_named(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def events_named(self, name: str) -> list[TraceEvent]:
        return [event for event in self.events if event.name == name]

    def events_in_category(self, category: str) -> list[TraceEvent]:
        return [
            event for event in self.events if event.category == category
        ]

    def span(self, span_id: int) -> Span:
        for candidate in self.spans:
            if candidate.span_id == span_id:
                return candidate
        raise KeyError(f"no span with id {span_id}")

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    # ------------------------------------------------------------------
    # Chrome trace export
    # ------------------------------------------------------------------
    def to_chrome_trace(
        self,
        metadata: Optional[dict[str, Any]] = None,
        style: str = "complete",
    ) -> dict:
        """The trace as Chrome ``chrome://tracing`` / Perfetto JSON.

        One process ("shark virtual cluster"), one thread per lane —
        the driver first, then each virtual worker — so the timeline
        reads as a per-worker Gantt chart.  Timestamps are simulated
        seconds rendered as microseconds (the format's native unit).

        ``style="complete"`` emits one ``"X"`` event per span;
        ``style="duration"`` emits matched ``"B"``/``"E"`` pairs per
        lane (outer spans open first, nested ends clamped inside their
        parents) for consumers that require duration events.
        """
        if style not in ("complete", "duration"):
            raise ValueError(f"unknown chrome-trace style {style!r}")
        lanes = _ordered_lanes(self)
        tids = {lane: index for index, lane in enumerate(lanes)}
        pid = 1
        trace_events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "shark virtual cluster"},
            }
        ]
        for lane, tid in tids.items():
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": _lane_label(lane)},
                }
            )
            trace_events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        if style == "complete":
            for span in self.spans:
                end = span.end if span.end is not None else span.start
                trace_events.append(
                    {
                        "name": span.name,
                        "cat": span.category,
                        "ph": "X",
                        "ts": span.start * 1e6,
                        "dur": max(end - span.start, 0.0) * 1e6,
                        "pid": pid,
                        "tid": tids[span.lane],
                        "args": dict(span.args),
                    }
                )
        else:
            for lane in lanes:
                trace_events.extend(
                    _duration_events(
                        [s for s in self.spans if s.lane == lane],
                        pid,
                        tids[lane],
                    )
                )
        for event in self.events:
            trace_events.append(
                {
                    "name": event.name,
                    "cat": event.category,
                    "ph": "i",
                    "ts": event.timestamp * 1e6,
                    "pid": pid,
                    "tid": tids[event.lane],
                    "s": "t",
                    "args": dict(event.args),
                }
            )
        document: dict[str, Any] = {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
        }
        if metadata:
            document["metadata"] = dict(metadata)
        return document

    def write_chrome_trace(
        self, path, metadata: Optional[dict[str, Any]] = None
    ) -> None:
        """Write Chrome-trace JSON to ``path`` (open in Perfetto)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(metadata), handle, indent=1)

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()


class Tracer:
    """One engine context's trace collector.

    Created disabled; :meth:`enable` turns span/event collection on.
    The metrics registry at :attr:`metrics` is live either way.
    Driver-side spans (:meth:`begin_span` / :meth:`end_span` or the
    :meth:`span` context manager) maintain a stack for parent linkage;
    :meth:`task_span` charges the cost model's estimate of a task's
    measured volumes to that worker's lane of the virtual clock.
    """

    def __init__(
        self,
        engine: EngineProfile = SHARK_MEM,
        hardware: HardwareProfile = DEFAULT_HARDWARE,
        enabled: bool = False,
    ) -> None:
        self.engine = engine
        self.hardware = hardware
        self.enabled = enabled
        self.clock = VirtualClock()
        self.metrics = MetricsRegistry()
        self.trace = QueryTrace()
        #: Always-on bounded ring of recent events (post-mortem dumps);
        #: fed before the ``enabled`` check in every emit method.
        self.flight = FlightRecorder()
        self._stack: list[Span] = []
        self._next_span_id = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, reset: bool = False) -> "Tracer":
        if reset:
            self.reset()
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop recorded spans/events and rewind the clock.

        Metrics survive a reset: they aggregate engine lifetime
        activity, while the trace buffer is per-inspection-window.
        """
        self.trace.clear()
        self.clock.reset()
        self._stack.clear()

    def use_stack(self, stack: list) -> list:
        """Swap in a different span stack, returning the previous one.

        The lifecycle manager gives each concurrent query a private
        stack so interleaved queries' spans nest under their own query
        span instead of whichever span another query left open.
        """
        previous = self._stack
        self._stack = stack
        return previous

    def drain_stack(self, stack: list, status: str = "ok") -> None:
        """Force-close every span left on ``stack``, regardless of the
        tracer's enabled state.

        ``end_span`` is a no-op while disabled, so a cleanup loop built
        on it hangs (and leaks open spans) when tracing was turned off
        mid-query.  This drain always pops, stamps a close time, and
        records the terminal ``status``; calling it again on the same
        (now empty) stack is a no-op — idempotent by construction.
        """
        while stack:
            span = stack.pop()
            if span is None:
                continue
            if span.end is None:
                span.end = max(self.clock.now(), span.start)
            span.args.setdefault("status", status)

    def flight_dump(
        self, reason: str, query: Optional[str] = None
    ) -> dict:
        """Dump the flight recorder's ring (see
        :meth:`~repro.obs.events.FlightRecorder.dump`) and account for
        it in metrics and, when tracing is on, the trace itself."""
        record = self.flight.dump(reason, query=query)
        self.metrics.inc("flight.dumps")
        self.instant(
            "flight.dump", "query", reason=reason, query=query,
            events=len(record["events"]),
        )
        return record

    # ------------------------------------------------------------------
    # Driver-side spans
    # ------------------------------------------------------------------
    def begin_span(
        self,
        name: str,
        category: str,
        lane: Hashable = DRIVER_LANE,
        **args: Any,
    ) -> Optional[Span]:
        # The flight recorder sees every span begin as a marker even
        # when tracing is off — that is what makes post-mortem dumps of
        # untraced queries show which query/job/stage was in flight.
        self.flight.record(
            {
                "type": "instant",
                "name": name,
                "category": category,
                "lane": lane,
                "ts": self.clock.now(),
                "args": dict(args),
            }
        )
        if not self.enabled:
            return None
        span = Span(
            span_id=self._new_span_id(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            lane=lane,
            start=self.clock.now(),
            args=args,
        )
        self.trace.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Optional[Span], **args: Any) -> None:
        if span is None or not self.enabled:
            return
        span.end = max(self.clock.now(), span.start)
        span.args.update(args)
        # Pop through in case an exception skipped inner end_span calls.
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break
            if popped.end is None:
                popped.end = span.end

    @contextmanager
    def span(
        self,
        name: str,
        category: str,
        lane: Hashable = DRIVER_LANE,
        **args: Any,
    ):
        handle = self.begin_span(name, category, lane, **args)
        try:
            yield handle
        finally:
            self.end_span(handle)

    # ------------------------------------------------------------------
    # Worker-lane task spans
    # ------------------------------------------------------------------
    def task_span(
        self,
        name: str,
        lane: Hashable,
        vector: Optional[TaskCostVector] = None,
        seconds: Optional[float] = None,
        category: str = "task",
        **args: Any,
    ) -> Optional[Span]:
        """Record one task occupying a worker lane.

        Duration is ``seconds`` when given, otherwise the cost model's
        estimate for ``vector``.  The task cannot start before its
        enclosing driver span did (a stage's tasks start after the
        stage).
        """
        if seconds is None:
            seconds = (
                self.estimate_seconds(vector) if vector is not None else 0.0
            )
        not_before = self._stack[-1].start if self._stack else 0.0
        # The lane clock advances even with tracing off, so flight-
        # recorder dumps carry real simulated timestamps.
        start, end = self.clock.advance_lane(lane, seconds, not_before)
        self.flight.record(
            {
                "type": "span",
                "name": name,
                "category": category,
                "lane": lane,
                "start": start,
                "end": end,
                "args": dict(args),
            }
        )
        if not self.enabled:
            return None
        span = Span(
            span_id=self._new_span_id(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            lane=lane,
            start=start,
            end=end,
            args=args,
        )
        self.trace.spans.append(span)
        return span

    def record_span(
        self,
        name: str,
        category: str,
        lane: Hashable,
        start: float,
        end: float,
        **args: Any,
    ) -> Optional[Span]:
        """Record a span with explicit timestamps (the cluster
        simulator computes its own schedule and reports it here)."""
        if not self.enabled:
            return None
        span = Span(
            span_id=self._new_span_id(),
            parent_id=None,
            name=name,
            category=category,
            lane=lane,
            start=start,
            end=end,
            args=args,
        )
        self.trace.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # Instants
    # ------------------------------------------------------------------
    def instant(
        self,
        name: str,
        category: str,
        lane: Hashable = DRIVER_LANE,
        **args: Any,
    ) -> Optional[TraceEvent]:
        timestamp = (
            self.clock.lane_time(lane)
            if lane != DRIVER_LANE
            else self.clock.now()
        )
        self.flight.record(
            {
                "type": "instant",
                "name": name,
                "category": category,
                "lane": lane,
                "ts": timestamp,
                "args": dict(args),
            }
        )
        if not self.enabled:
            return None
        event = TraceEvent(
            name=name,
            category=category,
            lane=lane,
            timestamp=timestamp,
            args=args,
        )
        self.trace.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Cost estimation
    # ------------------------------------------------------------------
    def estimate_seconds(self, vector: TaskCostVector) -> float:
        """Simulated seconds one task takes under this tracer's engine
        and hardware profiles."""
        return estimate_task_seconds(vector, self.engine, self.hardware)

    def _new_span_id(self) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Tracer({state}, spans={len(self.trace.spans)}, "
            f"events={len(self.trace.events)})"
        )


def _ordered_lanes(trace: QueryTrace) -> list[Hashable]:
    """Driver lane first, then worker lanes in id order, then the rest."""
    seen: set[Hashable] = set()
    for span in trace.spans:
        seen.add(span.lane)
    for event in trace.events:
        seen.add(event.lane)
    seen.discard(DRIVER_LANE)
    workers = sorted(
        (lane for lane in seen if isinstance(lane, int))
    )
    others = sorted(
        (lane for lane in seen if not isinstance(lane, int)), key=str
    )
    return [DRIVER_LANE, *workers, *others]


def _duration_events(
    spans: list[Span], pid: int, tid: int
) -> list[dict]:
    """One lane's spans as matched, properly nested B/E pairs.

    Spans on a lane either nest (driver) or run back-to-back (workers);
    sorting by (start, -duration) opens outer spans first, and a child's
    end is clamped into its parent so every "E" matches its "B" and the
    per-lane timestamp sequence is monotonically nondecreasing.
    """
    ordered = sorted(
        spans, key=lambda s: (s.start, -s.duration, s.span_id)
    )
    events: list[dict] = []
    open_stack: list[tuple[Span, float]] = []

    def close(span: Span, end: float) -> None:
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "E",
                "ts": end * 1e6,
                "pid": pid,
                "tid": tid,
            }
        )

    for span in ordered:
        while open_stack and open_stack[-1][1] <= span.start:
            close(*open_stack.pop())
        end = span.end if span.end is not None else span.start
        end = max(end, span.start)
        if open_stack:
            end = min(end, open_stack[-1][1])
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "B",
                "ts": span.start * 1e6,
                "pid": pid,
                "tid": tid,
                "args": dict(span.args),
            }
        )
        open_stack.append((span, end))
    while open_stack:
        close(*open_stack.pop())
    return events


def _lane_label(lane: Hashable) -> str:
    if lane == DRIVER_LANE:
        return "driver"
    if isinstance(lane, int):
        return f"worker {lane}"
    return str(lane)

"""Observability: structured tracing and a metrics registry.

Everything the engine emits while executing — job/stage/task spans,
shuffle writes and fetches, PDE re-planning decisions, worker kills and
lineage recoveries, cache and block-store activity — flows through one
:class:`~repro.obs.tracer.Tracer` per :class:`~repro.engine.context.
EngineContext`.  Timestamps come from a **simulated** discrete-event
clock (:class:`~repro.obs.clock.VirtualClock`) advanced by the cost
model's per-task second estimates; ``src/repro`` never reads the wall
clock, so traces are deterministic and reproducible.

Consumers:

* ``EXPLAIN ANALYZE <query>`` — runs the query and renders the optimized
  plan annotated with per-stage task counts, rows, bytes, attempts, and
  simulated seconds (:mod:`repro.obs.analyze`);
* :meth:`~repro.obs.tracer.QueryTrace.to_chrome_trace` — exports the
  span timeline as Chrome ``chrome://tracing`` / Perfetto JSON keyed by
  virtual worker;
* the shell's ``.profile`` / ``.metrics`` / ``.trace`` dot-commands and
  the benchmark harness's ``--trace-out`` option.

Tracing is **off by default**: every emit method returns immediately
when the tracer is disabled, so the benchmark path pays nothing beyond
a predicate check.  The metrics registry is always on — plain counter
increments — because the shell's ``.metrics`` view must work without
opting into span collection.
"""

from repro.obs.clock import VirtualClock
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import QueryTrace, Span, TraceEvent, Tracer

#: repro.obs.analyze imports the engine (which imports this package), so
#: its symbols load lazily — eager import would be circular when this
#: package is the import entry point (``python -m repro.obs.history``).
_ANALYZE_EXPORTS = ("QueryAnalysis", "StageAnalysis", "analyze_profiles")


def __getattr__(name: str):
    if name in _ANALYZE_EXPORTS:
        from repro.obs import analyze

        return getattr(analyze, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryAnalysis",
    "QueryTrace",
    "Span",
    "StageAnalysis",
    "TraceEvent",
    "Tracer",
    "VirtualClock",
    "analyze_profiles",
]

"""History store: load persisted event logs and answer questions.

``python -m repro.obs.history <file-or-dir>`` loads every event log
(``*.jsonl`` / ``*.jsonl.gz``, including flight-recorder dump files)
under a path and renders a report: per-query status and simulated
seconds, per-worker utilization over the run, shuffle-skew and
cache-churn summaries, and — per query — the reconstructed timeline.
The same loader backs the shell's ``.history`` dot-command and the
perf-regression sentinel's baseline comparisons.

Reconstruction is exact: ``task`` records carry every
:class:`~repro.engine.metrics.TaskMetrics` field, so
:meth:`QueryRecord.rebuild_profiles` returns
:class:`~repro.engine.metrics.QueryProfile` objects whose stage/task/
shuffle aggregates equal the live run's, and the ``header``'s cluster
geometry lets :func:`~repro.obs.analyze.analyze_profiles` recompute the
same simulated seconds the writer recorded.
"""

from __future__ import annotations

import argparse
import glob as globlib
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.events import (
    EventLogSchemaError,
    SCHEMA_VERSION,
    read_event_log,
)
from repro.obs.planquality import (
    DEFAULT_Q_ERROR_THRESHOLD,
    audit,
    format_profile_line,
)


@dataclass
class QueryRecord:
    """Everything one event log said about one query."""

    query_id: str
    source: str = ""
    name: str = ""
    kind: str = "sql"
    text: Optional[str] = None
    status: str = "unknown"
    error: Optional[str] = None
    started: float = 0.0
    ended: float = 0.0
    sim_seconds: float = 0.0
    result_rows: Optional[int] = None
    #: v4 optional serving fields (None on v3/v2 logs).
    tenant: Optional[str] = None
    priority: Optional[str] = None
    shed_reason: Optional[str] = None
    plan_text: Optional[str] = None
    operator_modes: list[tuple[str, str]] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    stage_sim: list[dict] = field(default_factory=list)
    #: Raw ``job`` / ``stage`` / ``task`` records, writer order.
    jobs: list[dict] = field(default_factory=list)
    stages: list[dict] = field(default_factory=list)
    tasks: list[dict] = field(default_factory=list)
    #: Timeline entries: ``span`` and ``instant`` records (also the
    #: events of any flight dump attributed to this query).
    timeline: list[dict] = field(default_factory=list)
    #: ``memory_watermark`` records: per-(worker, pool) peak rows the
    #: accountant snapshotted at query end (schema v2).
    memory: list[dict] = field(default_factory=list)
    #: ``memory_spill`` records: per-owner spill deltas this query
    #: forced through memory arbitration (schema v3).
    spills: list[dict] = field(default_factory=list)
    #: ``cache_lookup`` records: per-layer probes the SQL caching stack
    #: made for this query (schema v5).
    cache_lookups: list[dict] = field(default_factory=list)
    #: ``operator_profile`` records: per-operator estimated vs. actual
    #: row counts with q-error (schema v6).
    operator_profiles: list[dict] = field(default_factory=list)
    #: ``shuffle_skew`` records: per-shuffle partition histograms and
    #: heavy keys (schema v6).  Named ``skew_records`` because
    #: :meth:`shuffle_skew` (the per-stage byte-skew summary) predates
    #: them.
    skew_records: list[dict] = field(default_factory=list)
    #: True when the only evidence is a flight-recorder dump.
    flight_only: bool = False
    header: dict = field(default_factory=dict)

    def rebuild_profiles(self):
        """The live run's QueryProfile list, reconstructed exactly."""
        from repro.engine.metrics import (
            QueryProfile,
            StageProfile,
            TaskMetrics,
        )

        profiles: dict[int, QueryProfile] = {}
        for job in self.jobs:
            profiles[job["job_id"]] = QueryProfile(
                job_id=job["job_id"],
                recovered_tasks=job.get("recovered_tasks", 0),
                retried_tasks=job.get("retried_tasks", 0),
                speculative_tasks=job.get("speculative_tasks", 0),
                blacklisted_workers=job.get("blacklisted_workers", 0),
                evicted_blocks=job.get("evicted_blocks", 0),
                evicted_bytes=job.get("evicted_bytes", 0),
                memory_reserved_bytes=job.get("memory_reserved_bytes", 0),
                memory_peak_bytes=job.get("memory_peak_bytes", 0),
                memory_spill_events=job.get("memory_spill_events", 0),
                memory_spill_bytes=job.get("memory_spill_bytes", 0),
            )
        stage_index: dict[tuple[int, int], Any] = {}
        for stage in self.stages:
            profile = profiles.get(stage["job_id"])
            if profile is None:  # pragma: no cover - defensive
                continue
            rebuilt = StageProfile(
                stage_id=stage["stage_id"],
                name=stage["name"],
                is_shuffle_map=stage["is_shuffle_map"],
                map_side_combined=stage.get("map_side_combined", False),
            )
            profile.stages.append(rebuilt)
            stage_index[(stage["job_id"], stage["stage_id"])] = rebuilt
        for task in self.tasks:
            rebuilt = stage_index.get((task["job_id"], task["stage_id"]))
            if rebuilt is None:  # pragma: no cover - defensive
                continue
            rebuilt.tasks.append(
                TaskMetrics(
                    stage_id=task["stage_id"],
                    partition=task["partition"],
                    worker_id=task["worker_id"],
                    records_in=task["records_in"],
                    bytes_in=task["bytes_in"],
                    records_out=task["records_out"],
                    bytes_out=task["bytes_out"],
                    shuffle_read_bytes=task["shuffle_read_bytes"],
                    shuffle_write_bytes=task["shuffle_write_bytes"],
                    shuffle_write_records=task["shuffle_write_records"],
                    source=task["source"],
                    attempts=task["attempts"],
                    speculative=task["speculative"],
                    batch_rows=task["batch_rows"],
                    # v3 optional fields: .get so v2 logs still load.
                    spill_bytes_written=task.get(
                        "spill_bytes_written", 0
                    ),
                    spill_bytes_read=task.get("spill_bytes_read", 0),
                    # v6 optional field: .get so v2-v5 logs still load.
                    operator_rows=dict(
                        task.get("operator_rows") or {}
                    ),
                )
            )
        return [profiles[job_id] for job_id in sorted(profiles)]

    def analyze(self):
        """Recompute the run's QueryAnalysis from the rebuilt profiles
        on the header's cluster geometry."""
        from repro.obs.analyze import analyze_profiles

        return analyze_profiles(
            self.plan_text or "",
            self.rebuild_profiles(),
            num_workers=self.header.get("workers", 1),
            cores_per_worker=self.header.get("cores_per_worker", 1),
            result_rows=self.result_rows,
            operator_modes=self.operator_modes,
            memory_spills=[
                {
                    "owner": row["owner"],
                    "events": row["events"],
                    "bytes": row["bytes"],
                    "runs": row["runs"],
                }
                for row in self.spills
            ],
            operator_profiles=self.operator_profiles,
            shuffle_skew=self.skew_records,
        )

    def to_query_trace(self):
        """Rebuild a QueryTrace from the timeline (Perfetto export)."""
        from repro.obs.tracer import QueryTrace, Span, TraceEvent

        trace = QueryTrace()
        span_id = 0
        for entry in self.timeline:
            lane = entry.get("lane", "driver")
            args = dict(entry.get("args") or {})
            if entry["type"] == "span":
                trace.spans.append(
                    Span(
                        span_id=span_id,
                        parent_id=None,
                        name=entry["name"],
                        category=entry.get("category", ""),
                        lane=lane,
                        start=entry["start"],
                        end=entry["end"],
                        args=args,
                    )
                )
                span_id += 1
            else:
                trace.events.append(
                    TraceEvent(
                        name=entry["name"],
                        category=entry.get("category", ""),
                        lane=lane,
                        timestamp=entry.get("ts", 0.0),
                        args=args,
                    )
                )
        return trace

    # ------------------------------------------------------------------
    # Per-query summaries
    # ------------------------------------------------------------------
    def worker_busy_seconds(self) -> dict[Any, float]:
        """Per-lane busy simulated seconds from task spans."""
        busy: dict[Any, float] = {}
        for entry in self.timeline:
            if (
                entry["type"] == "span"
                and entry.get("category") == "task"
            ):
                lane = entry.get("lane", "driver")
                busy[lane] = busy.get(lane, 0.0) + (
                    entry["end"] - entry["start"]
                )
        return busy

    def makespan(self) -> float:
        """Simulated span of the query's timeline (0 when empty)."""
        times: list[float] = []
        for entry in self.timeline:
            if entry["type"] == "span":
                times.extend((entry["start"], entry["end"]))
            elif "ts" in entry:
                times.append(entry["ts"])
        if not times:
            return max(self.ended - self.started, 0.0)
        return max(times) - min(times)

    def shuffle_skew(self) -> list[dict]:
        """Per map stage: max/mean shuffle-write bytes across tasks."""
        out: list[dict] = []
        for stage in self.stages:
            if not stage["is_shuffle_map"]:
                continue
            writes = [
                task["shuffle_write_bytes"]
                for task in self.tasks
                if task["job_id"] == stage["job_id"]
                and task["stage_id"] == stage["stage_id"]
            ]
            if not writes or not any(writes):
                continue
            mean = sum(writes) / len(writes)
            out.append(
                {
                    "job_id": stage["job_id"],
                    "stage_id": stage["stage_id"],
                    "name": stage["name"],
                    "max_bytes": max(writes),
                    "mean_bytes": mean,
                    "skew": (max(writes) / mean) if mean else 0.0,
                }
            )
        return out


class HistoryStore:
    """Event logs loaded from disk, grouped per query."""

    def __init__(self) -> None:
        self.queries: list[QueryRecord] = []
        self.headers: list[dict] = []
        #: Standalone flight dumps not attributable to a logged query.
        self.flight_dumps: list[dict] = []
        self.files: list[str] = []

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path) -> "HistoryStore":
        """Load one file, or every ``*.jsonl`` / ``*.jsonl.gz`` under a
        directory (sorted, so reports are deterministic)."""
        store = cls()
        path = str(path)
        if os.path.isdir(path):
            names = sorted(
                globlib.glob(os.path.join(path, "**", "*.jsonl*"),
                             recursive=True)
            )
        else:
            names = [path]
        if not names:
            raise FileNotFoundError(f"no event logs under {path}")
        for name in names:
            store.load_file(name)
        return store

    def load_file(self, path) -> None:
        records = read_event_log(path)
        self.files.append(str(path))
        header: dict = {}
        by_id: dict[str, QueryRecord] = {}
        order: list[QueryRecord] = []

        def query(query_id: str) -> QueryRecord:
            record = by_id.get(query_id)
            if record is None:
                record = QueryRecord(
                    query_id=query_id, source=str(path)
                )
                by_id[query_id] = record
                order.append(record)
            return record

        for record in records:
            kind = record["type"]
            if kind == "header":
                header = record
                if record.get("version", 0) > SCHEMA_VERSION:
                    raise EventLogSchemaError(
                        f"{path}: event-log schema version "
                        f"{record.get('version')} is newer than this "
                        f"reader ({SCHEMA_VERSION})"
                    )
                continue
            if kind == "flight_dump":
                query_id = record.get("query_id")
                if query_id is None:
                    self.flight_dumps.append(record)
                    continue
                target = query(query_id)
                if not target.timeline and target.status == "unknown":
                    target.flight_only = True
                    target.name = query_id
                    target.status = record.get("reason", "unknown")
                target.timeline.extend(record["events"])
                continue
            target = query(record["query_id"])
            if kind == "query_begin":
                target.name = record["name"]
                target.kind = record["kind"]
                target.text = record.get("text")
                target.started = record["ts"]
                # v4 optional serving fields: .get keeps v3/v2 loadable.
                target.tenant = record.get("tenant")
                target.priority = record.get("priority")
                target.flight_only = False
                if target.status in ("unknown",):
                    target.status = "incomplete"
            elif kind == "plan":
                target.plan_text = record["text"]
            elif kind == "operator_modes":
                target.operator_modes = [
                    (operator, mode)
                    for operator, mode in record["modes"]
                ]
            elif kind in ("span", "instant"):
                target.timeline.append(record)
            elif kind == "job":
                target.jobs.append(record)
            elif kind == "stage":
                target.stages.append(record)
            elif kind == "task":
                target.tasks.append(record)
            elif kind == "counters":
                target.counters.update(record["deltas"])
            elif kind == "memory_watermark":
                target.memory.append(record)
            elif kind == "memory_spill":
                target.spills.append(record)
            elif kind == "cache_lookup":
                target.cache_lookups.append(record)
            elif kind == "operator_profile":
                target.operator_profiles.append(record)
            elif kind == "shuffle_skew":
                target.skew_records.append(record)
            elif kind == "query_end":
                target.status = record["status"]
                target.error = record.get("error")
                target.ended = record["ts"]
                target.sim_seconds = record["sim_seconds"]
                target.stage_sim = list(record.get("stage_sim") or [])
                target.result_rows = record.get("result_rows")
                target.shed_reason = record.get("shed_reason")
        for record in order:
            record.header = header
        self.queries.extend(order)
        self.headers.append(header)

    # ------------------------------------------------------------------
    # Lookup and aggregation
    # ------------------------------------------------------------------
    def query(self, key: str) -> QueryRecord:
        """By query_id first, then by name (first match)."""
        for record in self.queries:
            if record.query_id == key:
                return record
        for record in self.queries:
            if record.name == key:
                return record
        raise KeyError(f"no query {key!r} in history")

    def worker_utilization(self) -> list[dict]:
        """Per worker lane, busy seconds vs the whole history's span."""
        busy: dict[Any, float] = {}
        total = 0.0
        for record in self.queries:
            total = max(total, record.makespan())
            for lane, seconds in record.worker_busy_seconds().items():
                busy[lane] = busy.get(lane, 0.0) + seconds
        span = max(
            (record.makespan() for record in self.queries), default=0.0
        )
        span = max(span, total)
        return [
            {
                "lane": lane,
                "busy_seconds": seconds,
                "utilization": (seconds / span) if span else 0.0,
            }
            for lane, seconds in sorted(
                busy.items(), key=lambda item: str(item[0])
            )
        ]

    def cache_churn(self) -> dict[str, float]:
        """Cache/eviction counter totals across all logged queries,
        plus the derived hit/eviction ratio gauges (suffixed
        ``_ratio``) recomputed from those totals."""
        totals: dict[str, float] = {}
        for record in self.queries:
            for name, value in record.counters.items():
                if name.startswith(
                    ("cache.", "blocks.", "memory.", "sqlcache.")
                ):
                    totals[name] = totals.get(name, 0.0) + value
        hits = totals.get("cache.hits", 0.0)
        misses = totals.get("cache.misses", 0.0)
        if hits + misses:
            totals["cache.hit_ratio"] = hits / (hits + misses)
        puts = totals.get("blocks.put", 0.0)
        if puts:
            totals["blocks.eviction_ratio"] = (
                totals.get("blocks.evicted", 0.0) / puts
            )
        return dict(sorted(totals.items()))

    # ------------------------------------------------------------------
    # Memory watermarks (schema v2)
    # ------------------------------------------------------------------
    def memory_timeline(self) -> list[dict]:
        """Chronological per-(worker, pool) pressure timeline rebuilt
        from persisted ``memory_watermark`` records."""
        rows: list[dict] = []
        for record in self.queries:
            for row in record.memory:
                rows.append(
                    {
                        "ts": row.get("ts", record.ended),
                        "query_id": record.query_id,
                        "worker": row["worker"],
                        "pool": row["pool"],
                        "used_bytes": row.get("used_bytes", 0),
                        "peak_bytes": row["peak_bytes"],
                    }
                )
        rows.sort(
            key=lambda row: (
                row["ts"],
                str(row["query_id"]),
                str(row["worker"]),
                row["pool"],
            )
        )
        return rows

    def memory_peaks(self) -> dict[tuple, int]:
        """(worker, pool) -> max peak bytes over the whole history;
        equals the live accountant's ledger peaks exactly."""
        peaks: dict[tuple, int] = {}
        for record in self.queries:
            for row in record.memory:
                key = (row["worker"], row["pool"])
                peaks[key] = max(
                    peaks.get(key, 0), int(row["peak_bytes"])
                )
        return peaks

    def memory_top_consumers(self, limit: int = 10) -> list[tuple]:
        """[(owner, pool, peak bytes)] ranked by the largest watermark
        any single owner reached on any worker."""
        merged: dict[tuple, int] = {}
        for record in self.queries:
            for row in record.memory:
                for owner, peak in (row.get("owners") or {}).items():
                    key = (owner, row["pool"])
                    merged[key] = max(merged.get(key, 0), int(peak))
        ranked = sorted(
            merged.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            (owner, pool, peak)
            for (owner, pool), peak in ranked[:limit]
        ]

    def memory_pressure_events(self) -> int:
        return int(
            sum(
                record.counters.get("memory.pressure.events", 0.0)
                for record in self.queries
            )
        )

    def memory_spills(self) -> list[dict]:
        """Per-owner spill totals merged over every logged query
        (``memory_spill`` records, schema v3)."""
        merged: dict[str, dict[str, int]] = {}
        for record in self.queries:
            for row in record.spills:
                totals = merged.setdefault(
                    row["owner"], {"events": 0, "bytes": 0, "runs": 0}
                )
                totals["events"] += int(row["events"])
                totals["bytes"] += int(row["bytes"])
                totals["runs"] += int(row["runs"])
        return [
            {"owner": owner, **totals}
            for owner, totals in sorted(merged.items())
        ]

    def memory_report(self, markdown: bool = False) -> str:
        """Per-worker pressure timeline + top consumers."""
        h2 = "## " if markdown else "== "
        h2end = "" if markdown else " =="
        timeline = self.memory_timeline()
        lines = [
            f"{'# ' if markdown else ''}memory report: "
            f"{len(timeline)} watermark row(s) from "
            f"{len(self.queries)} quer"
            f"{'y' if len(self.queries) == 1 else 'ies'}"
        ]
        if not timeline:
            lines.append(
                "  (no memory_watermark records — log predates "
                "schema v2 or no query reserved memory)"
            )
            return "\n".join(lines)
        lines.append("")
        lines.append(f"{h2}per-worker pressure timeline{h2end}")
        for row in timeline:
            lines.append(
                f"  {row['ts']:9.3f}s {_lane(row['worker']):<10} "
                f"{row['pool']:<9} used {row['used_bytes']}B, "
                f"peak {row['peak_bytes']}B  [{row['query_id']}]"
            )
        pressure = self.memory_pressure_events()
        if pressure:
            lines.append(f"  pressure events: {pressure}")
        spills = self.memory_spills()
        if spills:
            lines.append("")
            lines.append(f"{h2}spill report (per owner){h2end}")
            for row in spills:
                lines.append(
                    f"  {row['owner']}: {row['events']} event(s), "
                    f"{row['bytes']}B to disk in {row['runs']} run(s)"
                )
        consumers = self.memory_top_consumers()
        if consumers:
            lines.append("")
            lines.append(f"{h2}top consumers (peak bytes){h2end}")
            for owner, pool, peak in consumers:
                lines.append(f"  {owner} [{pool}]: {peak}B")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serving (schema v4)
    # ------------------------------------------------------------------
    def tenant_rows(self) -> list[dict]:
        """Per-tenant utilization from v4 query records: query counts by
        outcome, charged simulated seconds, and end-to-end latency."""
        merged: dict[str, dict[str, float]] = {}
        for record in self.queries:
            if record.tenant is None:
                continue
            row = merged.setdefault(
                record.tenant,
                {
                    "queries": 0,
                    "completed": 0,
                    "shed": 0,
                    "failed": 0,
                    "sim_seconds": 0.0,
                    "latency_seconds": 0.0,
                },
            )
            row["queries"] += 1
            if record.status == "ok":
                row["completed"] += 1
                row["latency_seconds"] += max(
                    record.ended - record.started, 0.0
                )
            elif record.status == "shed":
                row["shed"] += 1
            elif record.status in ("failed", "error"):
                row["failed"] += 1
            row["sim_seconds"] += record.sim_seconds
        return [
            {"tenant": tenant, **row}
            for tenant, row in sorted(merged.items())
        ]

    def tier_latencies(self) -> dict[str, list[float]]:
        """priority tier -> sorted end-to-end latencies (simulated
        seconds, ``ended - started``) of its completed queries."""
        tiers: dict[str, list[float]] = {}
        for record in self.queries:
            if record.priority is None or record.status != "ok":
                continue
            tiers.setdefault(record.priority, []).append(
                max(record.ended - record.started, 0.0)
            )
        for values in tiers.values():
            values.sort()
        return tiers

    def tenant_report(self, markdown: bool = False) -> str:
        """Per-tenant utilization + per-tier latency percentiles."""
        h2 = "## " if markdown else "== "
        h2end = "" if markdown else " =="
        rows = self.tenant_rows()
        lines = [
            f"{'# ' if markdown else ''}tenant report: "
            f"{len(rows)} tenant(s) across "
            f"{len(self.queries)} quer"
            f"{'y' if len(self.queries) == 1 else 'ies'}"
        ]
        if not rows:
            lines.append(
                "  (no tenant-tagged queries — log predates schema v4 "
                "or queries ran outside a SqlServer)"
            )
            return "\n".join(lines)
        lines.append("")
        lines.append(f"{h2}per-tenant utilization{h2end}")
        for row in rows:
            mean = (
                row["latency_seconds"] / row["completed"]
                if row["completed"]
                else 0.0
            )
            lines.append(
                f"  {row['tenant']:<12} {row['queries']:4d} queries "
                f"({row['completed']} ok, {row['shed']} shed, "
                f"{row['failed']} failed), "
                f"{row['sim_seconds']:8.3f} sim-s charged, "
                f"mean latency {mean:.3f}s"
            )
        tiers = self.tier_latencies()
        if tiers:
            lines.append("")
            lines.append(f"{h2}per-tier latency (completed){h2end}")
            for tier, values in sorted(tiers.items()):
                lines.append(
                    f"  {tier:<12} n={len(values):4d}  "
                    f"p50 {percentile(values, 50.0):.3f}s  "
                    f"p95 {percentile(values, 95.0):.3f}s  "
                    f"p99 {percentile(values, 99.0):.3f}s"
                )
        sheds: dict[str, int] = {}
        for record in self.queries:
            if record.shed_reason:
                sheds[record.shed_reason] = (
                    sheds.get(record.shed_reason, 0) + 1
                )
        if sheds:
            lines.append("")
            lines.append(f"{h2}shed reasons{h2end}")
            for reason, count in sorted(sheds.items()):
                lines.append(f"  {reason}: {count}")
        return "\n".join(lines)

    def cache_report(self, markdown: bool = False) -> str:
        """Per-layer SQL cache hit/miss totals from v5 ``cache_lookup``
        records, plus the ``sqlcache.*`` counter deltas."""
        h2 = "## " if markdown else "== "
        h2end = "" if markdown else " =="
        layers: dict[str, dict[str, int]] = {}
        probed_queries = 0
        for record in self.queries:
            if record.cache_lookups:
                probed_queries += 1
            for row in record.cache_lookups:
                layer = layers.setdefault(
                    row["layer"], {"hit": 0, "miss": 0}
                )
                layer[row["outcome"]] = layer.get(row["outcome"], 0) + 1
        lines = [
            f"{'# ' if markdown else ''}sql cache report: "
            f"{probed_queries} probed quer"
            f"{'y' if probed_queries == 1 else 'ies'} of "
            f"{len(self.queries)}"
        ]
        if not layers:
            lines.append(
                "  (no cache_lookup records — log predates schema v5 "
                "or the caching stack was disabled)"
            )
            return "\n".join(lines)
        lines.append("")
        lines.append(f"{h2}per-layer lookups{h2end}")
        for layer in ("plan", "result", "fragment"):
            row = layers.get(layer)
            if row is None:
                continue
            total = row["hit"] + row["miss"]
            ratio = row["hit"] / total if total else 0.0
            lines.append(
                f"  {layer:<9} {total:5d} lookups, {row['hit']:5d} hits "
                f"({100.0 * ratio:.0f}%)"
            )
        totals: dict[str, float] = {}
        for record in self.queries:
            for name, value in record.counters.items():
                if name.startswith("sqlcache."):
                    totals[name] = totals.get(name, 0.0) + value
        if totals:
            lines.append("")
            lines.append(f"{h2}sqlcache counters{h2end}")
            for name, value in sorted(totals.items()):
                lines.append(f"  {name} = {value:g}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Plan quality (schema v6)
    # ------------------------------------------------------------------
    def operator_profiles(self) -> list[dict]:
        """Every ``operator_profile`` record across all logged queries,
        writer order."""
        return [
            row
            for record in self.queries
            for row in record.operator_profiles
        ]

    def cardinality_priors(self) -> list[dict]:
        """Observed output cardinalities aggregated across runs, keyed
        by (operator, detail) — e.g. every run of
        ``filter``/``(L_QUANTITY < 24)`` contributes one observation.

        This is the designed hand-off for PDE v2's learned priors: a
        future optimizer can seed its estimates from ``mean_rows``
        instead of the default selectivity guesses.
        """
        merged: dict[tuple[str, str], dict] = {}
        for row in self.operator_profiles():
            actual = row.get("actual_rows")
            if actual is None:
                continue
            actual = int(actual)
            key = (row["operator"], row.get("detail", ""))
            prior = merged.get(key)
            if prior is None:
                prior = merged[key] = {
                    "operator": key[0],
                    "detail": key[1],
                    "observations": 0,
                    "total_rows": 0,
                    "min_rows": actual,
                    "max_rows": actual,
                }
            prior["observations"] += 1
            prior["total_rows"] += actual
            prior["min_rows"] = min(prior["min_rows"], actual)
            prior["max_rows"] = max(prior["max_rows"], actual)
        out = []
        for key in sorted(merged):
            prior = merged[key]
            prior["mean_rows"] = (
                prior["total_rows"] / prior["observations"]
            )
            out.append(prior)
        return out

    def plan_quality_report(
        self,
        threshold: float = DEFAULT_Q_ERROR_THRESHOLD,
        markdown: bool = False,
    ) -> str:
        """Per-query misestimate audit + shuffle-skew records +
        cross-run cardinality priors (schema v6)."""
        h2 = "## " if markdown else "== "
        h2end = "" if markdown else " =="
        profiled = [
            record for record in self.queries if record.operator_profiles
        ]
        lines = [
            f"{'# ' if markdown else ''}plan quality report: "
            f"{len(profiled)} profiled quer"
            f"{'y' if len(profiled) == 1 else 'ies'} of "
            f"{len(self.queries)}"
        ]
        if not profiled:
            lines.append(
                "  (no operator_profile records — log predates "
                "schema v6)"
            )
            return "\n".join(lines)
        lines.append("")
        lines.append(
            f"{h2}misestimates (q-error > {threshold:g}){h2end}"
        )
        any_flagged = False
        for record in profiled:
            flagged = audit(record.operator_profiles, threshold)
            for row in flagged:
                any_flagged = True
                lines.append(
                    f"  {record.query_id}: "
                    + format_profile_line(row, threshold)
                )
        if not any_flagged:
            lines.append("  (none)")
        skewed = [
            (record, row)
            for record in self.queries
            for row in record.skew_records
        ]
        if skewed:
            lines.append("")
            lines.append(f"{h2}shuffle skew records{h2end}")
            for record, row in skewed:
                heavy = ", ".join(
                    f"{key}={count}"
                    for key, count in (row.get("heavy_keys") or [])[:3]
                )
                lines.append(
                    f"  {record.query_id} shuffle {row['shuffle_id']}: "
                    f"{row['num_reduces']} reduces, "
                    f"rows max/mean x{row.get('row_skew', 0.0):.2f}"
                    + (f", heavy keys: {heavy}" if heavy else "")
                )
        priors = self.cardinality_priors()
        if priors:
            lines.append("")
            lines.append(f"{h2}cardinality priors (for PDE v2){h2end}")
            for prior in priors:
                label = prior["operator"]
                if prior["detail"]:
                    label += f" {prior['detail']}"
                lines.append(
                    f"  {label}: n={prior['observations']} "
                    f"mean {prior['mean_rows']:.1f} rows "
                    f"[{prior['min_rows']}, {prior['max_rows']}]"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def report(
        self, markdown: bool = False, query: Optional[str] = None
    ) -> str:
        if query is not None:
            return self._query_report(self.query(query), markdown)
        lines: list[str] = []
        h1 = "# " if markdown else ""
        h2 = "## " if markdown else "== "
        h2end = "" if markdown else " =="
        lines.append(
            f"{h1}query history: {len(self.queries)} quer"
            f"{'y' if len(self.queries) == 1 else 'ies'} from "
            f"{len(self.files)} log file(s)"
        )
        lines.append("")
        lines.append(f"{h2}queries{h2end}")
        if markdown:
            lines.append("| query | kind | status | sim-s | tasks |")
            lines.append("|---|---|---|---|---|")
        for record in self.queries:
            label = record.name or record.query_id
            if markdown:
                lines.append(
                    f"| {record.query_id}: {_short(label)} "
                    f"| {record.kind} | {record.status} "
                    f"| {record.sim_seconds:.3f} "
                    f"| {len(record.tasks)} |"
                )
            else:
                lines.append(
                    f"  {record.query_id} [{record.kind}] "
                    f"{record.status:<9} {record.sim_seconds:8.3f} sim-s"
                    f"  {len(record.tasks):3d} tasks  {_short(label)}"
                )
            if record.flight_only:
                lines.append(
                    ("  " if not markdown else "")
                    + f"    (flight-recorder dump only: "
                    f"{len(record.timeline)} events)"
                )
        utilization = self.worker_utilization()
        if utilization:
            lines.append("")
            lines.append(f"{h2}worker utilization{h2end}")
            for row in utilization:
                lines.append(
                    f"  {_lane(row['lane']):<10} "
                    f"busy {row['busy_seconds']:.3f}s "
                    f"({row['utilization'] * 100.0:.0f}%)"
                )
        skew = [
            (record, entry)
            for record in self.queries
            for entry in record.shuffle_skew()
        ]
        if skew:
            lines.append("")
            lines.append(f"{h2}shuffle skew (map stages){h2end}")
            for record, entry in skew:
                lines.append(
                    f"  {record.query_id} job {entry['job_id']} "
                    f"stage {entry['stage_id']} "
                    f"({entry['name']}): max {entry['max_bytes']}B / "
                    f"mean {entry['mean_bytes']:.0f}B "
                    f"= x{entry['skew']:.2f}"
                )
        churn = self.cache_churn()
        if churn:
            lines.append("")
            lines.append(f"{h2}cache churn{h2end}")
            for name, value in churn.items():
                lines.append(f"  {name} = {value:g}")
        peaks = self.memory_peaks()
        if peaks:
            lines.append("")
            lines.append(f"{h2}memory peaks{h2end}")
            for (worker, pool), peak in sorted(
                peaks.items(), key=lambda item: (str(item[0][0]), item[0][1])
            ):
                lines.append(
                    f"  {_lane(worker):<10} {pool:<9} peak {peak}B"
                )
            lines.append(
                "  (run `python -m repro.obs.history <path> memory` "
                "for the full pressure timeline)"
            )
        if self.flight_dumps:
            lines.append("")
            lines.append(
                f"{h2}unattributed flight dumps: "
                f"{len(self.flight_dumps)}{h2end}"
            )
        return "\n".join(lines)

    def _query_report(
        self, record: QueryRecord, markdown: bool
    ) -> str:
        h2 = "## " if markdown else "== "
        h2end = "" if markdown else " =="
        lines = [
            f"{'# ' if markdown else ''}query {record.query_id} "
            f"[{record.kind}] {record.status}"
        ]
        if record.name and record.name != record.query_id:
            lines.append(f"  name: {_short(record.name, 120)}")
        if record.error:
            lines.append(f"  error: {record.error}")
        lines.append(
            f"  simulated seconds: {record.sim_seconds:.3f} "
            f"(clock {record.started:.3f} -> {record.ended:.3f})"
        )
        if record.result_rows is not None:
            lines.append(f"  result rows: {record.result_rows}")
        if record.stage_sim:
            lines.append("")
            lines.append(f"{h2}stages{h2end}")
            for stage in record.stage_sim:
                lines.append(
                    f"  stage {stage['stage_id']} ({stage['kind']}, "
                    f"{stage['name']}): {stage['num_tasks']} tasks, "
                    f"rows {stage['records_in']} -> "
                    f"{stage['records_out']}, "
                    f"shuffle write {stage['shuffle_write_bytes']}B, "
                    f"{stage['sim_seconds']:.3f} sim-s"
                )
        if record.operator_modes:
            lines.append("")
            lines.append(f"{h2}operator modes{h2end}")
            for operator, mode in record.operator_modes:
                lines.append(f"  {operator}: {mode}")
        if record.operator_profiles:
            lines.append("")
            lines.append(f"{h2}plan quality (est vs actual){h2end}")
            for row in record.operator_profiles:
                lines.append(
                    "  "
                    + format_profile_line(
                        row, DEFAULT_Q_ERROR_THRESHOLD
                    )
                )
        if record.counters:
            lines.append("")
            lines.append(f"{h2}counter deltas{h2end}")
            for name, value in sorted(record.counters.items()):
                lines.append(f"  {name} = {value:g}")
        if record.timeline:
            lines.append("")
            label = (
                "timeline (flight-recorder partial)"
                if record.flight_only
                else "timeline"
            )
            lines.append(f"{h2}{label}{h2end}")
            for entry in _timeline_sorted(record.timeline)[-60:]:
                if entry["type"] == "span":
                    lines.append(
                        f"  {entry['start']:9.3f}s "
                        f"{_lane(entry.get('lane', '?')):<10} "
                        f"{entry['name']} "
                        f"(+{entry['end'] - entry['start']:.3f}s)"
                    )
                else:
                    lines.append(
                        f"  {entry.get('ts', 0.0):9.3f}s "
                        f"{_lane(entry.get('lane', '?')):<10} "
                        f"* {entry['name']}"
                    )
        return "\n".join(lines)

    def export_perfetto(self, key: str, path) -> None:
        """Write one query's timeline as Chrome-trace JSON."""
        record = self.query(key)
        trace = record.to_query_trace()
        trace.write_chrome_trace(
            path,
            metadata={
                "query_id": record.query_id,
                "name": record.name,
                "status": record.status,
                "source": record.source,
            },
        )


def percentile(sorted_values: list[float], pct: float) -> float:
    """Nearest-rank percentile over an ascending-sorted list (0 when
    empty) — deterministic, no interpolation.

    Thin wrapper over the canonical helper in ``repro.obs.metrics``
    (this module keeps the 0–100 percentile scale its callers use)."""
    from repro.obs.metrics import percentiles_of

    return percentiles_of(list(sorted_values), (pct / 100.0,))[0]


def _timeline_sorted(timeline: list[dict]) -> list[dict]:
    return sorted(
        timeline,
        key=lambda entry: entry.get("start", entry.get("ts", 0.0)),
    )


def _short(text: str, limit: int = 60) -> str:
    flat = " ".join(str(text).split())
    return flat if len(flat) <= limit else flat[: limit - 3] + "..."


def _lane(lane) -> str:
    if isinstance(lane, int):
        return f"worker {lane}"
    return str(lane)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.history",
        description=(
            "Load persisted query event logs and render a report."
        ),
    )
    parser.add_argument(
        "path", help="event-log file or directory of *.jsonl(.gz)"
    )
    parser.add_argument(
        "section",
        nargs="?",
        choices=["memory", "tenants", "cache", "quality"],
        help=(
            "optional focused report: 'memory' renders the per-worker "
            "pressure timeline and top consumers from memory_watermark "
            "records; 'tenants' renders per-tenant utilization and "
            "per-tier latency percentiles from v4 serving fields; "
            "'cache' renders per-layer SQL cache hit ratios from v5 "
            "cache_lookup records; 'quality' renders the plan-quality "
            "audit, shuffle-skew records, and cross-run cardinality "
            "priors from v6 records"
        ),
    )
    parser.add_argument(
        "--query",
        help="report a single query (by query_id or name)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="Markdown output"
    )
    parser.add_argument(
        "--perfetto-out",
        help=(
            "directory to write per-query Chrome-trace JSON exports "
            "(or, with --query, used for that query only)"
        ),
    )
    args = parser.parse_args(argv)
    try:
        store = HistoryStore.load(args.path)
    except (FileNotFoundError, EventLogSchemaError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        if args.section == "memory":
            print(store.memory_report(markdown=args.markdown))
        elif args.section == "tenants":
            print(store.tenant_report(markdown=args.markdown))
        elif args.section == "cache":
            print(store.cache_report(markdown=args.markdown))
        elif args.section == "quality":
            print(store.plan_quality_report(markdown=args.markdown))
        else:
            print(store.report(markdown=args.markdown, query=args.query))
    except BrokenPipeError:  # `| head` closed stdout; not an error
        return 0
    if args.perfetto_out:
        os.makedirs(args.perfetto_out, exist_ok=True)
        targets = (
            [store.query(args.query)]
            if args.query
            else [q for q in store.queries if q.timeline]
        )
        for record in targets:
            out = os.path.join(
                args.perfetto_out, f"{record.query_id}.trace.json"
            )
            store.export_perfetto(record.query_id, out)
            print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())

"""Perf-regression sentinel: compare a fresh run against a baseline.

``python -m repro.obs.sentinel --baseline BENCH_baseline.json`` runs a
small fixed suite — the Figure 7 aggregation micro-benchmarks plus
TPC-H Q1/Q3/Q6 — on a fresh virtual cluster, measures each query's
simulated seconds and key counters, and compares them against the
committed baseline.  Any query whose simulated seconds regress beyond
``--threshold`` (default 25%) fails the run (nonzero exit) with a
per-stage attribution line, e.g.::

    REGRESSION Q1 +96% sim-seconds (0.034 -> 0.067):
      stage 1 (partial_aggregate) +0.031 sim-s, rows/task x1.0,
      shuffle write bytes x1.0

When any query regresses, the sentinel also re-runs the suite under the
default configuration into a scratch event log and hands both logs to
the query doctor (:mod:`repro.obs.doctor`), so the failure report ends
with ranked root causes — e.g. a ``--vectorize off`` run is attributed
to ``mode-flip`` rather than just "a stage got slower".

Everything is measured on the simulated clock, so the baseline is exact
and machine-independent: an unchanged engine reproduces it bit-for-bit,
and CI can gate on it without noise margins.  ``--write-baseline``
(re)seeds the baseline after an intentional performance change;
``--vectorize off`` demonstrates a deliberate regression against a
vectorize-on baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

BASELINE_VERSION = 1

#: Suite geometry: small enough for CI, large enough that per-record
#: CPU cost dominates the fixed per-task launch overhead — otherwise a
#: CPU-side regression (like losing vectorization) hides inside the
#: overhead and the sentinel can't see it.  Two fat partitions per big
#: table give ~50K rows per task: the CPU term is ~2x the 5 ms launch
#: overhead, so a 10x per-record slowdown moves total sim-seconds well
#: past the 25% gate.
WORKERS = 4
CORES_PER_WORKER = 2
LINEITEM_ROWS = 100_000
ORDERS_ROWS = 25_000
CUSTOMER_ROWS = 2_500
LOAD_PARTITIONS = 2

#: Counters recorded per query (deltas across its execution).
TRACKED_COUNTERS = (
    "tasks.launched",
    "stages.run",
    "shuffle.write.bytes",
    "shuffle.read.bytes",
    "batch.rows",
)


def suite_queries() -> dict[str, str]:
    """Query name -> SQL text, in fixed report order."""
    from repro.workloads import tpch

    queries = {
        f"agg_{key}": text
        for key, text in tpch.AGGREGATION_QUERIES.items()
    }
    queries.update(tpch.TPCH_QUERIES)
    return queries


def build_warehouse(
    vectorize: bool = True,
    memory_per_worker_bytes: Optional[int] = None,
):
    """A fresh SharkContext with the suite's cached TPC-H tables."""
    from repro.core.context import SharkContext
    from repro.sql.planner import PlannerConfig
    from repro.workloads import tpch

    shark = SharkContext(
        num_workers=WORKERS,
        cores_per_worker=CORES_PER_WORKER,
        config=PlannerConfig(vectorize=vectorize),
        memory_per_worker_bytes=memory_per_worker_bytes,
    )
    for name, data, partitions in (
        ("lineitem", tpch.generate_lineitem(LINEITEM_ROWS), LOAD_PARTITIONS),
        ("orders", tpch.generate_orders(ORDERS_ROWS), LOAD_PARTITIONS),
        ("customer", tpch.generate_customer(CUSTOMER_ROWS), 1),
    ):
        shark.create_table(name, data.schema, cached=True)
        shark.load_rows(name, data.rows, num_partitions=partitions)
    return shark


def run_suite(shark) -> dict[str, dict]:
    """Execute every suite query; returns per-query measurements."""
    from repro.obs.analyze import analyze_profiles

    engine = shark.engine
    metrics = engine.tracer.metrics
    results: dict[str, dict] = {}
    for name, text in suite_queries().items():
        before = {
            key: metrics.value(key) for key in TRACKED_COUNTERS
        }
        engine.reset_profiles()
        result = shark.sql(text)
        analysis = analyze_profiles(
            "",
            engine.profiles,
            num_workers=WORKERS,
            cores_per_worker=CORES_PER_WORKER,
        )
        results[name] = {
            "sim_seconds": analysis.total_sim_seconds,
            "result_rows": len(result.rows),
            "counters": {
                key: metrics.value(key) - before[key]
                for key in TRACKED_COUNTERS
            },
            "stages": [
                {
                    "stage_id": stage.stage_id,
                    "name": stage.name,
                    "kind": stage.kind,
                    "num_tasks": stage.num_tasks,
                    "sim_seconds": stage.sim_seconds,
                    "records_in": stage.records_in,
                    "records_out": stage.records_out,
                    "shuffle_read_bytes": stage.shuffle_read_bytes,
                    "shuffle_write_bytes": stage.shuffle_write_bytes,
                }
                for stage in analysis.stages
            ],
        }
    return results


def baseline_document(queries: dict[str, dict]) -> dict:
    return {
        "version": BASELINE_VERSION,
        "config": {
            "workers": WORKERS,
            "cores_per_worker": CORES_PER_WORKER,
            "lineitem_rows": LINEITEM_ROWS,
            "orders_rows": ORDERS_ROWS,
            "customer_rows": CUSTOMER_ROWS,
        },
        "queries": queries,
    }


def _ratio(current: float, base: float) -> float:
    if base <= 0:
        return 1.0 if current <= 0 else float("inf")
    return current / base


def _attribution(base_entry: dict, entry: dict) -> str:
    """The stage that gained the most simulated time, with the volume
    ratios that explain it (stages matched by position)."""
    pairs = list(zip(base_entry.get("stages", []), entry["stages"]))
    if not pairs:
        return "no stage data to attribute"
    worst = max(
        pairs,
        key=lambda pair: pair[1]["sim_seconds"] - pair[0]["sim_seconds"],
    )
    base_stage, stage = worst
    details = [
        f"stage {stage['stage_id']} ({stage['name']}) "
        f"+{stage['sim_seconds'] - base_stage['sim_seconds']:.3f} sim-s"
    ]
    for label, key in (
        ("rows in", "records_in"),
        ("shuffle write bytes", "shuffle_write_bytes"),
        ("shuffle read bytes", "shuffle_read_bytes"),
        ("tasks", "num_tasks"),
    ):
        base_value = base_stage.get(key, 0)
        value = stage.get(key, 0)
        if base_value or value:
            details.append(
                f"{label} x{_ratio(value, base_value):.1f}"
            )
    return ", ".join(details)


def doctor_attribution(args, shark) -> list[str]:
    """Diff a default-config reference run against the current run with
    the query doctor; returns the report lines to append.

    The reference suite is re-run into a scratch event log (cheap: the
    suite is small and the clock is simulated); the current run's log is
    either ``--event-log-out`` or a second scratch re-run under the
    current flags.  Deterministic by construction — both logs are pure
    functions of engine config.
    """
    import os
    import tempfile

    from repro.obs import doctor

    with tempfile.TemporaryDirectory() as scratch:
        current_log = args.event_log_out
        if current_log is None:
            current_log = os.path.join(scratch, "current.jsonl")
            rerun = build_warehouse(
                vectorize=args.vectorize == "on",
                memory_per_worker_bytes=args.memory_cap,
            )
            rerun.enable_event_log(
                current_log, source="sentinel", vectorize=args.vectorize
            )
            try:
                run_suite(rerun)
            finally:
                rerun.close_event_log()
        reference_log = os.path.join(scratch, "reference.jsonl")
        reference = build_warehouse()
        reference.enable_event_log(
            reference_log, source="sentinel", vectorize="on"
        )
        try:
            run_suite(reference)
        finally:
            reference.close_event_log()
        metrics = shark.engine.tracer.metrics
        report = doctor.diagnose_logs(
            reference_log,
            current_log,
            regression_threshold=args.threshold,
            metrics=metrics,
        )
    lines = ["== query doctor (default-config reference vs this run) =="]
    for diagnosis in report.regressed():
        lines.append(
            f"{doctor._display_name(diagnosis.name)}: "
            f"{diagnosis.baseline_seconds:.3f} -> "
            f"{diagnosis.current_seconds:.3f} sim-s "
            f"({diagnosis.slowdown:+.0%})"
        )
        for rank, finding in enumerate(diagnosis.findings[:3], start=1):
            lines.append(
                f"  {rank}. [{finding.category}] {finding.summary}"
            )
    top = report.top_cause()
    if top is not None:
        lines.append(
            f"top root cause across corpus: {top[0]} "
            f"({top[1]} quer{'y' if top[1] == 1 else 'ies'})"
        )
    return lines


def compare(
    baseline: dict, current: dict[str, dict], threshold: float
) -> tuple[list[str], list[str]]:
    """Returns (regression lines, info lines)."""
    regressions: list[str] = []
    info: list[str] = []
    base_queries = baseline.get("queries", {})
    for name, base_entry in base_queries.items():
        entry = current.get(name)
        if entry is None:
            regressions.append(
                f"MISSING {name}: query in baseline but not in this run"
            )
            continue
        base_s = base_entry["sim_seconds"]
        cur_s = entry["sim_seconds"]
        ratio = _ratio(cur_s, base_s)
        delta_pct = (ratio - 1.0) * 100.0
        line = (
            f"{name}: {base_s:.3f} -> {cur_s:.3f} sim-s "
            f"({delta_pct:+.0f}%)"
        )
        if ratio > 1.0 + threshold:
            regressions.append(
                f"REGRESSION {name} {delta_pct:+.0f}% sim-seconds "
                f"({base_s:.3f} -> {cur_s:.3f}): "
                + _attribution(base_entry, entry)
            )
        elif ratio < 1.0 - threshold:
            info.append(f"IMPROVED {line}")
        else:
            info.append(f"ok {line}")
    for name in current:
        if name not in base_queries:
            info.append(f"new {name}: not in baseline (no gate)")
    return regressions, info


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.sentinel",
        description=(
            "Run the benchmark suite and fail on simulated-seconds "
            "regressions against a committed baseline."
        ),
    )
    parser.add_argument(
        "--baseline",
        default="BENCH_baseline.json",
        help="baseline JSON path (default: BENCH_baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative sim-seconds regression that fails (default 0.25)",
    )
    parser.add_argument(
        "--vectorize",
        choices=("on", "off"),
        default="on",
        help="planner vectorization (off = deliberate regression demo)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the measured suite as the new baseline and exit 0",
    )
    parser.add_argument(
        "--memory-cap",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "cap memory_per_worker_bytes so the suite runs through the "
            "spill path; the run must still pass the sim-seconds gate "
            "AND must actually spill (a vacuous cap fails)"
        ),
    )
    parser.add_argument(
        "--event-log-out",
        help="also stream every suite query to this event-log path",
    )
    parser.add_argument(
        "--report", help="also write the comparison report to this file"
    )
    parser.add_argument(
        "--sql-cache",
        choices=("on", "off"),
        default="off",
        help=(
            "enable the query caching stack: the cold pass must still "
            "meet the baseline (cache probes are free on the simulated "
            "clock) and a warm repeat of the suite must show a "
            "measurable sim-seconds drop vs the cold pass"
        ),
    )
    args = parser.parse_args(argv)

    shark = build_warehouse(
        vectorize=args.vectorize == "on",
        memory_per_worker_bytes=args.memory_cap,
    )
    if args.sql_cache == "on":
        shark.enable_sql_cache()
    if args.event_log_out:
        shark.enable_event_log(
            args.event_log_out, source="sentinel",
            vectorize=args.vectorize,
        )
    warm = None
    try:
        current = run_suite(shark)
        if args.sql_cache == "on":
            # Second pass over an unchanged catalog: the result cache
            # should short-circuit every suite query.
            warm = run_suite(shark)
    finally:
        if args.event_log_out:
            shark.close_event_log()

    warm_lines: list[str] = []
    if warm is not None:
        cold_total = sum(e["sim_seconds"] for e in current.values())
        warm_total = sum(e["sim_seconds"] for e in warm.values())
        divergent = [
            name
            for name, entry in warm.items()
            if entry["result_rows"] != current[name]["result_rows"]
        ]
        warm_lines.append(
            f"sql cache warm repeat: {cold_total:.3f} -> "
            f"{warm_total:.3f} sim-s "
            f"(cold-cache vs warm-cache, {len(warm)} queries)"
        )
        if divergent:
            warm_lines.append(
                f"warm-cache FAILED: row-count divergence in {divergent}"
            )
        elif warm_total >= 0.5 * cold_total:
            warm_lines.append(
                "warm-cache FAILED: repeat saved less than half the "
                "cold-cache sim-seconds"
            )
        else:
            warm_lines.append(
                f"warm-cache win: {cold_total - warm_total:.3f} sim-s "
                f"saved ({100.0 * (1.0 - warm_total / cold_total):.0f}%)"
            )
        for line in warm_lines:
            print(line)
        if any("FAILED" in line for line in warm_lines):
            if args.report:
                with open(args.report, "w", encoding="utf-8") as handle:
                    handle.write("\n".join(warm_lines) + "\n")
            return 2

    if args.memory_cap is not None:
        accountant = shark.engine.memory
        print(
            f"memory cap {args.memory_cap} B/worker: "
            f"{accountant.spill_events} spill event(s), "
            f"{accountant.spill_bytes} B written in "
            f"{accountant.spill_runs} run(s)"
        )
        if accountant.spill_events == 0:
            print(
                "error: --memory-cap forced no spills — the capped gate "
                "is vacuous; lower the cap",
                file=sys.stderr,
            )
            return 2

    if args.write_baseline:
        document = baseline_document(current)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"wrote baseline for {len(current)} queries to "
            f"{args.baseline}"
        )
        return 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(
            f"error: no baseline at {args.baseline} "
            "(seed one with --write-baseline)",
            file=sys.stderr,
        )
        return 2
    if baseline.get("version") != BASELINE_VERSION:
        print(
            f"error: baseline version {baseline.get('version')!r} != "
            f"{BASELINE_VERSION}",
            file=sys.stderr,
        )
        return 2

    regressions, info = compare(baseline, current, args.threshold)
    lines = [
        f"sentinel: {len(current)} queries vs {args.baseline} "
        f"(threshold {args.threshold * 100.0:.0f}%, "
        f"vectorize {args.vectorize})"
    ]
    lines.extend(f"  {line}" for line in info)
    lines.extend(f"  {line}" for line in regressions)
    lines.extend(f"  {line}" for line in warm_lines)
    if regressions:
        lines.extend(
            f"  {line}" for line in doctor_attribution(args, shark)
        )
    lines.append(
        f"sentinel: "
        + (
            f"{len(regressions)} regression(s) FAILED"
            if regressions
            else "all queries within threshold"
        )
    )
    report = "\n".join(lines)
    print(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 1 if regressions else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())

"""repro: a reproduction of "Shark: SQL and Rich Analytics at Scale".

Layered like the paper's system:

* :mod:`repro.engine` — Spark-like RDD engine (lineage, DAG scheduling,
  memory shuffle) over a :mod:`repro.cluster` of virtual workers.
* :mod:`repro.columnar` — the columnar memory store with compression and
  partition statistics.
* :mod:`repro.storage` — an HDFS-like replicated block store.
* :mod:`repro.sql` — the HiveQL-subset front end, optimizer, and physical
  planner over RDDs, with Partial DAG Execution (:mod:`repro.pde`).
* :mod:`repro.ml` — logistic regression, linear regression, k-means on RDDs.
* :mod:`repro.core` — the Shark public API (:class:`~repro.core.SharkContext`).
* :mod:`repro.baselines` — Hive/Hadoop and MPP comparators.
* :mod:`repro.costmodel` + :mod:`repro.workloads` — the benchmark harness's
  cluster-scale cost model and dataset generators.

Quickstart::

    from repro import SharkContext

    shark = SharkContext(num_workers=4)
    shark.sql("CREATE TABLE logs (url STRING, hits INT)")
    shark.load_rows("logs", [("a", 1), ("b", 2), ("a", 3)])
    rows = shark.sql("SELECT url, SUM(hits) FROM logs GROUP BY url")
"""

from importlib import import_module

from repro._version import __version__

#: Public name -> defining module; resolved lazily so subpackages stay
#: independently importable and import cycles are impossible.
_EXPORTS = {
    "SharkContext": "repro.core",
    "TableRDD": "repro.core",
    "Row": "repro.core",
    "EngineContext": "repro.engine",
    "RDD": "repro.engine",
    "LifecycleConfig": "repro.engine",
    "QueryHandle": "repro.engine",
    "QueryLifecycleManager": "repro.engine",
    "SqlServer": "repro.serving",
    "ServerConfig": "repro.serving",
    "TenantQuota": "repro.serving",
    "ZipfianWorkload": "repro.serving",
}

__all__ = ["__version__", *_EXPORTS]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    return getattr(import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)

"""An HDFS-like block store and RDDs that scan it.

Shark queries data "in any system that supports the Hadoop storage API"
(Section 2); here that substrate is :class:`DistributedFileStore`, an
in-process block store with replication accounting and read/write counters.
:class:`~repro.storage.scan.HdfsRDD` scans a stored file one block per
partition, recording disk-source metrics so the cost model charges HDFS
reads at disk + deserialization rates.
"""

from repro.storage.hdfs import DistributedFileStore, StoredFile
from repro.storage.scan import HdfsRDD

__all__ = ["DistributedFileStore", "StoredFile", "HdfsRDD"]

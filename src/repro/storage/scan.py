"""HdfsRDD: scan a stored file, one block per partition."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.columnar.serde import BinarySerde, TextSerde
from repro.costmodel.models import SOURCE_DISK
from repro.datatypes import Schema
from repro.engine.rdd import RDD
from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import EngineContext
    from repro.engine.task import TaskContext
    from repro.storage.hdfs import DistributedFileStore


def serde_for(schema: Schema, format: str):
    """Construct the serde matching a stored file's format tag."""
    if format == "text":
        return TextSerde(schema)
    if format == "binary":
        return BinarySerde(schema)
    raise StorageError(f"unknown storage format {format!r}")


class HdfsRDD(RDD):
    """Source RDD over a file in the distributed store.

    Each partition reads and decodes one block; task metrics record a
    disk source so the cost model charges disk read plus per-row
    deserialization (the 200 MB/s/core bottleneck of Section 3.2).
    """

    def __init__(
        self,
        ctx: "EngineContext",
        store: "DistributedFileStore",
        path: str,
        schema: Schema,
    ):
        stored = store.file(path)
        super().__init__(
            ctx,
            max(stored.num_blocks, 1),
            [],
            name=f"hdfs:{path}",
        )
        self._store = store
        self._path = path
        self.schema = schema
        self._serde = serde_for(schema, stored.format)
        self._empty = stored.num_blocks == 0

    def compute(self, split: int, task_ctx: "TaskContext") -> list:
        if self._empty:
            return []
        payload = self._store.read_block(self._path, split)
        rows = self._serde.decode(payload)
        task_ctx.metrics.source = SOURCE_DISK
        task_ctx.metrics.bytes_in += len(payload)
        task_ctx.metrics.records_in += len(rows)
        return rows

"""The distributed file store: replicated blocks of encoded rows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import FileNotFoundInStoreError, StorageError


@dataclass
class StoredFile:
    """One file: an ordered list of blocks plus format metadata."""

    path: str
    blocks: list[bytes]
    #: Serde format name ("text" or "binary"), so readers know how to decode.
    format: str = "text"
    replication: int = 3

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def size_bytes(self) -> int:
        return sum(len(block) for block in self.blocks)


@dataclass
class IoCounters:
    """Cumulative I/O accounting, read by loading benchmarks."""

    bytes_written: int = 0
    bytes_replicated: int = 0
    bytes_read: int = 0
    blocks_written: int = 0
    blocks_read: int = 0


class DistributedFileStore:
    """An in-process stand-in for HDFS.

    Files are write-once lists of blocks.  Writes account for replication
    traffic (``replication - 1`` remote copies), which is what makes HDFS
    ingest slower than memstore ingest in the loading experiment
    (Section 6.2.4).
    """

    def __init__(self, default_replication: int = 3):
        self._files: dict[str, StoredFile] = {}
        self.default_replication = default_replication
        self.counters = IoCounters()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write_file(
        self,
        path: str,
        blocks: list[bytes],
        format: str = "text",
        replication: Optional[int] = None,
        overwrite: bool = False,
    ) -> StoredFile:
        if path in self._files and not overwrite:
            raise StorageError(f"file already exists: {path}")
        replication = replication or self.default_replication
        stored = StoredFile(
            path=path, blocks=list(blocks), format=format,
            replication=replication,
        )
        self._files[path] = stored
        self.counters.bytes_written += stored.size_bytes
        self.counters.bytes_replicated += stored.size_bytes * max(
            replication - 1, 0
        )
        self.counters.blocks_written += stored.num_blocks
        return stored

    def append_block(self, path: str, block: bytes) -> None:
        stored = self._require(path)
        stored.blocks.append(block)
        self.counters.bytes_written += len(block)
        self.counters.bytes_replicated += len(block) * max(
            stored.replication - 1, 0
        )
        self.counters.blocks_written += 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_block(self, path: str, index: int) -> bytes:
        stored = self._require(path)
        if not 0 <= index < stored.num_blocks:
            raise StorageError(
                f"block {index} out of range for {path} "
                f"({stored.num_blocks} blocks)"
            )
        block = stored.blocks[index]
        self.counters.bytes_read += len(block)
        self.counters.blocks_read += 1
        return block

    def file(self, path: str) -> StoredFile:
        return self._require(path)

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def list_files(self) -> list[str]:
        return sorted(self._files)

    @property
    def total_bytes(self) -> int:
        return sum(stored.size_bytes for stored in self._files.values())

    def _require(self, path: str) -> StoredFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInStoreError(path) from None

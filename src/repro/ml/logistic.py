"""Distributed logistic regression via gradient descent (paper Listing 1).

Each iteration is one ``map`` (per-point gradient) plus one ``reduce``
(vector sum) over the cached feature RDD — exactly the paper's
``logRegress``.  Labels are +-1; the per-point gradient is

    (1 / (1 + exp(-y * w.x)) - 1) * y * x
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.engine.rdd import RDD
from repro.errors import MLError
from repro.ml.features import LabeledPoint


def gradient_factor(label: float, dot: float) -> float:
    """The paper's per-point gradient scale, computed stably.

    ``(1 / (1 + exp(-y * w.x)) - 1) * y`` equals ``-sigmoid(-y * w.x) * y``;
    evaluating via the sign-split sigmoid avoids exp overflow for large
    margins.
    """
    margin = label * dot
    if margin >= 0:
        return (1.0 / (1.0 + np.exp(-margin)) - 1.0) * label
    exp_margin = np.exp(margin)
    return (exp_margin / (1.0 + exp_margin) - 1.0) * label


@dataclass
class LogisticRegressionModel:
    """A fitted separating hyperplane."""

    weights: np.ndarray
    iterations_run: int
    #: Training-loss trace, one entry per iteration (for convergence tests).
    loss_history: list[float] = field(default_factory=list)

    def margin(self, features: np.ndarray) -> float:
        return float(np.dot(self.weights, features))

    def predict_probability(self, features: np.ndarray) -> float:
        return 1.0 / (1.0 + np.exp(-self.margin(features)))

    def predict(self, features: np.ndarray) -> int:
        """Predicted label in {-1, +1}."""
        return 1 if self.margin(features) >= 0.0 else -1

    def accuracy(self, points: list[LabeledPoint]) -> float:
        if not points:
            raise MLError("accuracy needs at least one point")
        correct = sum(
            1 for p in points if self.predict(p.features) == int(p.label)
        )
        return correct / len(points)


class LogisticRegression:
    """Gradient-descent trainer; ``fit`` runs ITERATIONS map+reduce jobs."""

    def __init__(
        self,
        iterations: int = 10,
        learning_rate: float = 1.0,
        seed: int = 42,
        track_loss: bool = False,
    ):
        if iterations <= 0:
            raise MLError("iterations must be positive")
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.seed = seed
        self.track_loss = track_loss

    def fit(
        self, points: RDD, dimensions: Optional[int] = None
    ) -> LogisticRegressionModel:
        """Train on an RDD of :class:`LabeledPoint` with labels in {-1, +1}.

        The RDD is typically cached: every iteration re-reads it, which is
        the access pattern that makes in-memory storage 100x faster than
        rereading HDFS (Figure 11).
        """
        if dimensions is None:
            first = points.take(1)
            if not first:
                raise MLError("cannot fit on an empty RDD")
            dimensions = len(first[0].features)

        rng = np.random.default_rng(self.seed)
        # Paper: "starting with a randomized w vector" in [-1, 1).
        weights = 2.0 * rng.random(dimensions) - 1.0
        loss_history: list[float] = []

        for _ in range(self.iterations):
            gradient = self._gradient(points, weights)
            weights = weights - self.learning_rate * gradient
            if self.track_loss:
                loss_history.append(self._loss(points, weights))

        return LogisticRegressionModel(
            weights=weights,
            iterations_run=self.iterations,
            loss_history=loss_history,
        )

    @staticmethod
    def _gradient(points: RDD, weights: np.ndarray) -> np.ndarray:
        def point_gradient(point: LabeledPoint) -> np.ndarray:
            factor = gradient_factor(
                point.label, float(np.dot(weights, point.features))
            )
            return factor * point.features

        return points.map(point_gradient).reduce(lambda a, b: a + b)

    @staticmethod
    def _loss(points: RDD, weights: np.ndarray) -> float:
        def point_loss(point: LabeledPoint) -> float:
            margin = point.label * np.dot(weights, point.features)
            # log(1 + exp(-m)) computed stably.
            return float(np.logaddexp(0.0, -margin))

        total, count = points.map(point_loss).aggregate(
            (0.0, 0),
            lambda acc, loss: (acc[0] + loss, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        return total / max(count, 1)

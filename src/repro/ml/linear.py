"""Distributed linear regression via least-squares gradient descent.

One of the "number of basic machine learning algorithms" Shark ships
(Section 4.1).  Same map+reduce-per-iteration shape as logistic
regression; minimizes mean squared error with an optional intercept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.engine.rdd import RDD
from repro.errors import MLError
from repro.ml.features import LabeledPoint


@dataclass
class LinearRegressionModel:
    weights: np.ndarray
    intercept: float
    iterations_run: int
    loss_history: list[float] = field(default_factory=list)

    def predict(self, features: np.ndarray) -> float:
        return float(np.dot(self.weights, features) + self.intercept)

    def mean_squared_error(self, points: list[LabeledPoint]) -> float:
        if not points:
            raise MLError("mean_squared_error needs at least one point")
        total = sum(
            (self.predict(p.features) - p.label) ** 2 for p in points
        )
        return total / len(points)


class LinearRegression:
    """Batch gradient descent on 0.5 * mean((w.x + b - y)^2)."""

    def __init__(
        self,
        iterations: int = 50,
        learning_rate: float = 0.1,
        fit_intercept: bool = True,
        seed: int = 42,
        track_loss: bool = False,
    ):
        if iterations <= 0:
            raise MLError("iterations must be positive")
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.fit_intercept = fit_intercept
        self.seed = seed
        self.track_loss = track_loss

    def fit(
        self, points: RDD, dimensions: Optional[int] = None
    ) -> LinearRegressionModel:
        if dimensions is None:
            first = points.take(1)
            if not first:
                raise MLError("cannot fit on an empty RDD")
            dimensions = len(first[0].features)

        count = points.count()
        if count == 0:
            raise MLError("cannot fit on an empty RDD")

        rng = np.random.default_rng(self.seed)
        weights = 0.01 * (2.0 * rng.random(dimensions) - 1.0)
        intercept = 0.0
        loss_history: list[float] = []

        for _ in range(self.iterations):
            grad_w, grad_b = self._gradient(points, weights, intercept)
            weights = weights - self.learning_rate * grad_w / count
            if self.fit_intercept:
                intercept = intercept - self.learning_rate * grad_b / count
            if self.track_loss:
                loss_history.append(
                    self._loss(points, weights, intercept, count)
                )

        return LinearRegressionModel(
            weights=weights,
            intercept=intercept,
            iterations_run=self.iterations,
            loss_history=loss_history,
        )

    @staticmethod
    def _gradient(
        points: RDD, weights: np.ndarray, intercept: float
    ) -> tuple[np.ndarray, float]:
        def point_gradient(point: LabeledPoint):
            error = (
                float(np.dot(weights, point.features)) + intercept
                - point.label
            )
            return (error * point.features, error)

        return points.map(point_gradient).reduce(
            lambda a, b: (a[0] + b[0], a[1] + b[1])
        )

    @staticmethod
    def _loss(
        points: RDD, weights: np.ndarray, intercept: float, count: int
    ) -> float:
        def point_loss(point: LabeledPoint) -> float:
            error = (
                float(np.dot(weights, point.features)) + intercept
                - point.label
            )
            return 0.5 * error * error

        return points.map(point_loss).sum() / count

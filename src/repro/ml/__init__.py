"""Machine learning as a first-class citizen (paper Section 4).

All three algorithms the paper ships — logistic regression, linear
regression, k-means — are expressed as RDD ``map``/``reduce`` operations,
so they parallelize across the same workers as SQL, read the same cached
tables without data movement, and inherit lineage-based fault tolerance
end-to-end: killing a worker mid-iteration recomputes only the lost
partitions and the fit continues.
"""

from repro.ml.features import LabeledPoint, label_feature_extractor, vectorize_rows
from repro.ml.logistic import LogisticRegression, LogisticRegressionModel
from repro.ml.linear import LinearRegression, LinearRegressionModel
from repro.ml.kmeans import KMeans, KMeansModel

__all__ = [
    "LabeledPoint",
    "label_feature_extractor",
    "vectorize_rows",
    "LogisticRegression",
    "LogisticRegressionModel",
    "LinearRegression",
    "LinearRegressionModel",
    "KMeans",
    "KMeansModel",
]

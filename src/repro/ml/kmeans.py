"""Distributed k-means clustering (Lloyd's algorithm on RDDs).

The second iterative workload in the paper's ML evaluation (Figure 12).
Each iteration maps every point to its closest center and reduces
per-center (sum, count) pairs; the driver recomputes centers — the same
map+reduceByKey pattern Shark's SQL aggregations use.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.engine.rdd import RDD
from repro.errors import MLError


@dataclass
class KMeansModel:
    centers: np.ndarray  # shape (k, dimensions)
    iterations_run: int
    #: Sum of squared distances to assigned centers at the final step.
    inertia: float

    @property
    def k(self) -> int:
        return len(self.centers)

    def predict(self, features: np.ndarray) -> int:
        distances = np.sum((self.centers - features) ** 2, axis=1)
        return int(np.argmin(distances))


def _closest(centers: np.ndarray, point: np.ndarray) -> tuple[int, float]:
    distances = np.sum((centers - point) ** 2, axis=1)
    index = int(np.argmin(distances))
    return index, float(distances[index])


class KMeans:
    """Lloyd's algorithm; initial centers are sampled deterministically."""

    def __init__(self, k: int, iterations: int = 10, seed: int = 42):
        if k <= 0:
            raise MLError("k must be positive")
        if iterations <= 0:
            raise MLError("iterations must be positive")
        self.k = k
        self.iterations = iterations
        self.seed = seed

    def fit(self, points: RDD) -> KMeansModel:
        """Cluster an RDD of 1-D numpy vectors."""
        sample = points.take(max(self.k * 20, 100))
        if len(sample) < self.k:
            raise MLError(
                f"need at least k={self.k} points, found {len(sample)}"
            )
        rng = np.random.default_rng(self.seed)
        chosen = rng.choice(len(sample), size=self.k, replace=False)
        centers = np.array([sample[i] for i in chosen], dtype=np.float64)

        inertia = float("inf")
        for _ in range(self.iterations):
            def assign(point: np.ndarray, c: np.ndarray = centers):
                index, distance = _closest(c, point)
                return (index, (point, 1, distance))

            assigned = points.map(assign)
            totals = assigned.reduce_by_key(
                lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2])
            ).collect_as_map()
            inertia = sum(entry[2] for entry in totals.values())
            new_centers = centers.copy()
            for index, (vector_sum, count, __) in totals.items():
                if count > 0:
                    new_centers[index] = vector_sum / count
            centers = new_centers

        return KMeansModel(
            centers=centers,
            iterations_run=self.iterations,
            inertia=float(inertia),
        )

"""Feature extraction: SQL rows -> labeled vectors.

The paper's workflow is (1) select data with SQL, (2) extract features
with ``mapRows``, (3) iterate (Listing 1).  These helpers cover step 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.row import Row
from repro.core.table_rdd import TableRDD
from repro.engine.rdd import RDD
from repro.errors import MLError


@dataclass(frozen=True)
class LabeledPoint:
    """One training example: a label and a dense feature vector."""

    label: float
    features: np.ndarray

    def __post_init__(self) -> None:
        if self.features.ndim != 1:
            raise MLError(
                f"features must be a 1-D vector, got shape "
                f"{self.features.shape}"
            )


def label_feature_extractor(
    label_column: str, feature_columns: Sequence[str]
) -> Callable[[Row], LabeledPoint]:
    """Build a ``mapRows`` function selecting a label and feature columns."""
    feature_columns = list(feature_columns)

    def extract(row: Row) -> LabeledPoint:
        label = float(row.get(label_column))
        features = np.array(
            [float(row.get(name)) for name in feature_columns],
            dtype=np.float64,
        )
        return LabeledPoint(label, features)

    return extract


def vectorize_rows(
    table: TableRDD, feature_columns: Sequence[str]
) -> RDD:
    """TableRDD -> RDD of dense numpy vectors (for k-means)."""
    indices = [table.schema.index_of(name) for name in feature_columns]

    def extract(values: tuple) -> np.ndarray:
        return np.array(
            [float(values[i]) for i in indices], dtype=np.float64
        )

    return table.rdd.map(extract)

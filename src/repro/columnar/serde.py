"""Row serdes: text and binary wire formats.

These back the HDFS-like store and the Hadoop ML baselines: the paper's
Figures 11-12 compare Hadoop reading "text" records against a compact
"binary" format, which differ in size and in per-record decode cost.
"""

from __future__ import annotations

import pickle
import struct
from datetime import date, datetime
from typing import Any

from repro.datatypes import (
    ArrayType,
    BooleanType,
    DataType,
    DateType,
    DoubleType,
    IntegerType,
    LongType,
    MapType,
    Schema,
    StringType,
    StructType,
    TimestampType,
)
from repro.errors import StorageError

_NULL_TOKEN = "\\N"


class TextSerde:
    """Delimited text rows (Hive's default storage format)."""

    def __init__(self, schema: Schema, delimiter: str = "\x01"):
        self.schema = schema
        self.delimiter = delimiter

    def _format_value(self, value: Any) -> str:
        if value is None:
            return _NULL_TOKEN
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (date, datetime)):
            return value.isoformat()
        if isinstance(value, (list, tuple)):
            return "[" + ",".join(self._format_value(v) for v in value) + "]"
        if isinstance(value, dict):
            inner = ",".join(
                f"{self._format_value(k)}:{self._format_value(v)}"
                for k, v in value.items()
            )
            return "{" + inner + "}"
        return str(value)

    def _parse_value(self, text: str, data_type: DataType) -> Any:
        if text == _NULL_TOKEN:
            return None
        if isinstance(data_type, (IntegerType, LongType)):
            return int(text)
        if isinstance(data_type, DoubleType):
            return float(text)
        if isinstance(data_type, BooleanType):
            return text == "true"
        if isinstance(data_type, DateType):
            return date.fromisoformat(text)
        if isinstance(data_type, TimestampType):
            return datetime.fromisoformat(text)
        if isinstance(data_type, StringType):
            return text
        if isinstance(data_type, ArrayType):
            body = text[1:-1]
            if not body:
                return []
            return [
                self._parse_value(item, data_type.element_type)
                for item in body.split(",")
            ]
        if isinstance(data_type, MapType):
            body = text[1:-1]
            if not body:
                return {}
            out = {}
            for entry in body.split(","):
                key_text, __, value_text = entry.partition(":")
                out[self._parse_value(key_text, data_type.key_type)] = (
                    self._parse_value(value_text, data_type.value_type)
                )
            return out
        raise StorageError(f"text serde cannot parse type {data_type}")

    def encode(self, rows: list[tuple]) -> bytes:
        lines = []
        for row in rows:
            lines.append(
                self.delimiter.join(self._format_value(value) for value in row)
            )
        return ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")

    def decode(self, payload: bytes) -> list[tuple]:
        rows = []
        text = payload.decode("utf-8")
        if text.endswith("\n"):
            text = text[:-1]
        # Split on the record delimiter only; field values may contain
        # characters like \r that str.splitlines would treat as breaks.
        lines = text.split("\n") if text else []
        for line in lines:
            parts = line.split(self.delimiter)
            if len(parts) != len(self.schema):
                raise StorageError(
                    f"text row has {len(parts)} fields, schema has "
                    f"{len(self.schema)}"
                )
            rows.append(
                tuple(
                    self._parse_value(text, field_.data_type)
                    for text, field_ in zip(parts, self.schema.fields)
                )
            )
        return rows


class BinarySerde:
    """Compact binary rows: fixed-width primitives, length-prefixed strings,
    pickled complex values."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def _encode_value(self, value: Any, data_type: DataType, out: bytearray) -> None:
        if value is None:
            out.append(0)
            return
        out.append(1)
        if isinstance(data_type, IntegerType):
            out.extend(struct.pack("<i", value))
        elif isinstance(data_type, LongType):
            out.extend(struct.pack("<q", value))
        elif isinstance(data_type, DoubleType):
            out.extend(struct.pack("<d", value))
        elif isinstance(data_type, BooleanType):
            out.append(1 if value else 0)
        elif isinstance(data_type, DateType):
            out.extend(struct.pack("<i", value.toordinal()))
        elif isinstance(data_type, TimestampType):
            out.extend(struct.pack("<d", value.timestamp()))
        elif isinstance(data_type, StringType):
            blob = value.encode("utf-8")
            out.extend(struct.pack("<I", len(blob)))
            out.extend(blob)
        else:
            blob = pickle.dumps(value, protocol=4)
            out.extend(struct.pack("<I", len(blob)))
            out.extend(blob)

    def _decode_value(
        self, payload: bytes, offset: int, data_type: DataType
    ) -> tuple[Any, int]:
        present = payload[offset]
        offset += 1
        if not present:
            return None, offset
        if isinstance(data_type, IntegerType):
            return struct.unpack_from("<i", payload, offset)[0], offset + 4
        if isinstance(data_type, LongType):
            return struct.unpack_from("<q", payload, offset)[0], offset + 8
        if isinstance(data_type, DoubleType):
            return struct.unpack_from("<d", payload, offset)[0], offset + 8
        if isinstance(data_type, BooleanType):
            return bool(payload[offset]), offset + 1
        if isinstance(data_type, DateType):
            ordinal = struct.unpack_from("<i", payload, offset)[0]
            return date.fromordinal(ordinal), offset + 4
        if isinstance(data_type, TimestampType):
            stamp = struct.unpack_from("<d", payload, offset)[0]
            return datetime.fromtimestamp(stamp), offset + 8
        if isinstance(data_type, StringType):
            length = struct.unpack_from("<I", payload, offset)[0]
            offset += 4
            text = payload[offset : offset + length].decode("utf-8")
            return text, offset + length
        length = struct.unpack_from("<I", payload, offset)[0]
        offset += 4
        value = pickle.loads(payload[offset : offset + length])
        return value, offset + length

    def encode(self, rows: list[tuple]) -> bytes:
        out = bytearray()
        out.extend(struct.pack("<I", len(rows)))
        for row in rows:
            for value, field_ in zip(row, self.schema.fields):
                self._encode_value(value, field_.data_type, out)
        return bytes(out)

    def decode(self, payload: bytes) -> list[tuple]:
        (num_rows,) = struct.unpack_from("<I", payload, 0)
        offset = 4
        rows = []
        for __ in range(num_rows):
            values = []
            for field_ in self.schema.fields:
                value, offset = self._decode_value(
                    payload, offset, field_.data_type
                )
                values.append(value)
            rows.append(tuple(values))
        return rows


class SpillSerde:
    """Schema-less length-framed records: the spilled-run wire format.

    Spilled execution state — hash-aggregate ``(key, accumulators)``
    items, sort-run ``(key, row)`` pairs — has no table schema (the
    accumulators are arbitrary Python values), so unlike
    :class:`TextSerde`/:class:`BinarySerde` this serde frames a pickled
    record list with its byte length.  The frame length is what the
    spill path charges as simulated-disk write/read volume, so the cost
    model sees real serialized bytes, not heap estimates.
    """

    def encode(self, records: list) -> bytes:
        blob = pickle.dumps(list(records), protocol=4)
        return struct.pack("<I", len(blob)) + blob

    def decode(self, payload: bytes) -> list:
        (length,) = struct.unpack_from("<I", payload, 0)
        if len(payload) < 4 + length:
            raise StorageError(
                f"truncated spill run: framed {length} bytes, "
                f"payload has {len(payload) - 4}"
            )
        return pickle.loads(payload[4 : 4 + length])


#: StructType rows serialize via pickle in BinarySerde; exported for benches.
__all__ = ["TextSerde", "BinarySerde", "SpillSerde"]

"""Columnar partitions: the unit Shark's memstore caches (Section 3.2).

A :class:`ColumnarPartition` is what one loading task produces from a split
of rows: per-column encoded arrays, per-column statistics, and a compact
footprint.  From Spark's point of view it is a single record (one object),
which is exactly the trick the paper describes in Section 7.1 — Shark gets
columnar storage "without modifying the Spark runtime by simply
representing a block of tuples as a single Spark record".
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.columnar.compression import (
    EncodedColumn,
    choose_scheme,
)
from repro.columnar.stats import ColumnStats, PartitionStats
from repro.datatypes import Schema


class ColumnarPartition:
    """One cached table partition in columnar, compressed form."""

    def __init__(
        self,
        schema: Schema,
        encoded_columns: list[EncodedColumn],
        stats: PartitionStats,
        num_rows: int,
    ):
        self.schema = schema
        self._encoded = encoded_columns
        self.stats = stats
        self.num_rows = num_rows
        self._decoded_cache: dict[int, Sequence[Any]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: list[tuple],
        compress: bool = True,
        dictionary_threshold: int = None,
    ) -> "ColumnarPartition":
        """Marshal a split of rows into columns, choosing compression and
        collecting statistics per column (the loading task of Section 3.3)."""
        num_columns = len(schema)
        columns: list[list] = [[] for _ in range(num_columns)]
        for row in rows:
            for index in range(num_columns):
                columns[index].append(row[index])

        encoded: list[EncodedColumn] = []
        column_stats: dict[str, ColumnStats] = {}
        for field_, values in zip(schema.fields, columns):
            if compress:
                if dictionary_threshold is None:
                    scheme = choose_scheme(values, field_.data_type)
                else:
                    scheme = choose_scheme(
                        values, field_.data_type, dictionary_threshold
                    )
            else:
                from repro.columnar.compression import PLAIN

                scheme = PLAIN
            encoded.append(scheme.encode(values, field_.data_type))
            column_stats[field_.name] = ColumnStats.from_values(values)

        return cls(
            schema=schema,
            encoded_columns=encoded,
            stats=PartitionStats(column_stats),
            num_rows=len(rows),
        )

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def column(self, index: int) -> Sequence[Any]:
        """Decoded values of one column (numpy array for primitives)."""
        cached = self._decoded_cache.get(index)
        if cached is None:
            cached = self._encoded[index].decode()
            self._decoded_cache[index] = cached
        return cached

    def column_by_name(self, name: str) -> Sequence[Any]:
        return self.column(self.schema.index_of(name))

    def encoded_column(self, index: int) -> EncodedColumn:
        return self._encoded[index]

    def compression_schemes(self) -> list[str]:
        return [column.scheme_name for column in self._encoded]

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def iter_rows(self) -> Iterator[tuple]:
        columns = [self.column(i) for i in range(len(self.schema))]
        for row_index in range(self.num_rows):
            yield tuple(
                self._to_python(column[row_index]) for column in columns
            )

    def to_rows(self) -> list[tuple]:
        return list(self.iter_rows())

    @staticmethod
    def _to_python(value: Any) -> Any:
        """Unbox numpy scalars so row consumers see plain Python values."""
        if isinstance(value, np.generic):
            return value.item()
        return value

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_footprint_bytes(self) -> int:
        """Compressed size plus fixed per-column metadata."""
        return sum(column.compressed_bytes for column in self._encoded) + (
            64 * len(self._encoded)
        )

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        schemes = ",".join(self.compression_schemes())
        return (
            f"ColumnarPartition({self.num_rows} rows, "
            f"{len(self.schema)} cols [{schemes}], "
            f"{self.memory_footprint_bytes()} bytes)"
        )

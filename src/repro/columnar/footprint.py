"""Alternative storage-format footprint models (paper Section 3.2).

The paper motivates the columnar store with a concrete comparison: 270 MB
of TPC-H lineitem stored as JVM objects occupies ~971 MB, while a
serialized row representation needs only 289 MB (~3x less), and columnar
compression shrinks it further.  These functions model the two rejected
formats so the memstore benchmark can reproduce that comparison.
"""

from __future__ import annotations

from datetime import date, datetime

from repro.datatypes import (
    ArrayType,
    BooleanType,
    DataType,
    DateType,
    DoubleType,
    IntegerType,
    LongType,
    MapType,
    Schema,
    StringType,
    StructType,
    TimestampType,
)

#: JVM object header + alignment padding (the paper cites 12-16 bytes).
JVM_OBJECT_HEADER = 16
#: Reference size on a 64-bit JVM with compressed oops disabled.
JVM_REFERENCE = 8


def _jvm_value_bytes(value, data_type: DataType) -> int:
    """Heap bytes of one boxed field value as a JVM object."""
    if value is None:
        return 0  # a null reference costs only its slot, counted by caller
    if isinstance(data_type, (IntegerType, BooleanType)):
        return JVM_OBJECT_HEADER + 4
    if isinstance(data_type, (LongType, DoubleType)):
        return JVM_OBJECT_HEADER + 8
    if isinstance(data_type, (DateType, TimestampType)):
        return JVM_OBJECT_HEADER + 8
    if isinstance(data_type, StringType):
        # java.lang.String: object header + fields + backing char[] header
        # + 2 bytes per UTF-16 code unit.
        return 2 * JVM_OBJECT_HEADER + 16 + 2 * len(value)
    if isinstance(data_type, ArrayType):
        inner = sum(
            _jvm_value_bytes(item, data_type.element_type) for item in value
        )
        return JVM_OBJECT_HEADER + JVM_REFERENCE * len(value) + inner
    if isinstance(data_type, MapType):
        inner = sum(
            _jvm_value_bytes(k, data_type.key_type)
            + _jvm_value_bytes(v, data_type.value_type)
            + 2 * JVM_REFERENCE
            + JVM_OBJECT_HEADER  # HashMap.Entry
            for k, v in value.items()
        )
        return JVM_OBJECT_HEADER + 48 + inner
    if isinstance(data_type, StructType):
        inner = sum(
            _jvm_value_bytes(item, item_type)
            for item, item_type in zip(value, data_type.field_types)
        )
        return JVM_OBJECT_HEADER + JVM_REFERENCE * len(value) + inner
    return JVM_OBJECT_HEADER + 16


def jvm_object_footprint(schema: Schema, rows: list[tuple]) -> int:
    """Heap bytes if each row were a JVM object graph (Spark's default
    memory store, the representation the paper rejects)."""
    total = 0
    for row in rows:
        # Row object: header + one reference slot per field.
        total += JVM_OBJECT_HEADER + JVM_REFERENCE * len(schema)
        for value, field_ in zip(row, schema.fields):
            total += _jvm_value_bytes(value, field_.data_type)
    return total


def _serialized_value_bytes(value, data_type: DataType) -> int:
    if value is None:
        return 1
    if isinstance(data_type, (IntegerType, BooleanType)):
        return 4 if isinstance(data_type, IntegerType) else 1
    if isinstance(data_type, (LongType, DoubleType, DateType, TimestampType)):
        return 8
    if isinstance(data_type, StringType):
        return 2 + len(value.encode("utf-8"))
    if isinstance(data_type, ArrayType):
        return 4 + sum(
            _serialized_value_bytes(item, data_type.element_type)
            for item in value
        )
    if isinstance(data_type, MapType):
        return 4 + sum(
            _serialized_value_bytes(k, data_type.key_type)
            + _serialized_value_bytes(v, data_type.value_type)
            for k, v in value.items()
        )
    if isinstance(data_type, StructType):
        return sum(
            _serialized_value_bytes(item, item_type)
            for item, item_type in zip(value, data_type.field_types)
        )
    return 8


def serialized_footprint(schema: Schema, rows: list[tuple]) -> int:
    """Bytes of a compact row-serialized representation (needs on-demand
    deserialization at ~200 MB/s/core, the other rejected option)."""
    total = 0
    for row in rows:
        total += 2  # row framing
        for value, field_ in zip(row, schema.fields):
            total += _serialized_value_bytes(value, field_.data_type)
    return total

"""Per-partition column statistics for map pruning (paper Section 3.5).

While a loading task marshals rows into columns, it also records each
column's range and, for low-cardinality ("enum") columns, the exact set of
distinct values.  The statistics are shipped to the master and consulted at
query time: a partition whose statistics cannot satisfy the query's
predicates is pruned — no task is launched to scan it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime
from typing import Any, Optional

#: Keep exact distinct sets only up to this many values.
DISTINCT_LIMIT = 64

#: Types whose values can be range-compared for pruning.
_COMPARABLE = (int, float, str, date, datetime)


def _comparable(value: Any) -> bool:
    return isinstance(value, _COMPARABLE) and not isinstance(value, bool)


@dataclass
class ColumnStats:
    """Range + small distinct set + null count for one column partition."""

    minimum: Optional[Any] = None
    maximum: Optional[Any] = None
    null_count: int = 0
    #: Exact distinct values while small; None once the limit is exceeded.
    distinct_values: Optional[set] = field(default_factory=set)
    row_count: int = 0

    def observe(self, value: Any) -> None:
        self.row_count += 1
        if value is None:
            self.null_count += 1
            return
        if _comparable(value):
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        if self.distinct_values is not None:
            try:
                self.distinct_values.add(value)
            except TypeError:
                # Unhashable (complex types): no distinct tracking.
                self.distinct_values = None
                return
            if len(self.distinct_values) > DISTINCT_LIMIT:
                self.distinct_values = None

    @classmethod
    def from_values(cls, values: list) -> "ColumnStats":
        stats = cls()
        for value in values:
            stats.observe(value)
        return stats

    # -- pruning predicates -------------------------------------------------
    def may_contain(self, value: Any) -> bool:
        """Could ``column = value`` hold for any row in this partition?"""
        if self.row_count == 0:
            # Never-observed stats (a placeholder published before the
            # load, or reset since): cannot prune, same as may_overlap.
            return True
        if self.distinct_values is not None:
            return value in self.distinct_values
        if self.minimum is None or not _comparable(value):
            return True
        try:
            return self.minimum <= value <= self.maximum
        except TypeError:
            return True

    def may_overlap(
        self, low: Optional[Any] = None, high: Optional[Any] = None,
        low_inclusive: bool = True, high_inclusive: bool = True,
    ) -> bool:
        """Could any row fall in [low, high] (open-ended when None)?"""
        if self.minimum is None:
            # No comparable values observed; cannot prune.
            return self.row_count > self.null_count or self.row_count == 0
        try:
            if low is not None:
                if low_inclusive and self.maximum < low:
                    return False
                if not low_inclusive and self.maximum <= low:
                    return False
            if high is not None:
                if high_inclusive and self.minimum > high:
                    return False
                if not high_inclusive and self.minimum >= high:
                    return False
        except TypeError:
            return True
        return True

    def merge(self, other: "ColumnStats") -> "ColumnStats":
        merged = ColumnStats(
            null_count=self.null_count + other.null_count,
            row_count=self.row_count + other.row_count,
        )
        candidates = [
            value for value in (self.minimum, other.minimum) if value is not None
        ]
        merged.minimum = min(candidates) if candidates else None
        candidates = [
            value for value in (self.maximum, other.maximum) if value is not None
        ]
        merged.maximum = max(candidates) if candidates else None
        if self.distinct_values is not None and other.distinct_values is not None:
            union = self.distinct_values | other.distinct_values
            merged.distinct_values = union if len(union) <= DISTINCT_LIMIT else None
        else:
            merged.distinct_values = None
        return merged


class PartitionStats:
    """All column statistics for one stored partition."""

    def __init__(self, columns: dict[str, ColumnStats]):
        self._columns = {name.lower(): stats for name, stats in columns.items()}

    @classmethod
    def from_columns(
        cls, names: list[str], columns: list[list]
    ) -> "PartitionStats":
        return cls(
            {
                name: ColumnStats.from_values(list(values))
                for name, values in zip(names, columns)
            }
        )

    def column(self, name: str) -> Optional[ColumnStats]:
        return self._columns.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._columns

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def merge(self, other: "PartitionStats") -> "PartitionStats":
        merged: dict[str, ColumnStats] = {}
        for name, stats in self._columns.items():
            other_stats = other.column(name)
            merged[name] = stats.merge(other_stats) if other_stats else stats
        for name, stats in other._columns.items():
            if name not in merged:
                merged[name] = stats
        return PartitionStats(merged)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = []
        for name, stats in self._columns.items():
            parts.append(f"{name}: [{stats.minimum}, {stats.maximum}]")
        return f"PartitionStats({'; '.join(parts)})"

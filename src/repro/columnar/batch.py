"""Batch-at-a-time column carriers for the vectorized operator pipeline.

A :class:`ColumnBatch` is the unit of work flowing between fused kernels:
a fixed set of column *entries* plus a logical row count.  Entries are
lazy — a :class:`LazyColumn` keeps a reference to the encoded block column
and the scan's selection vector, and only decodes (and gathers) when a
kernel actually touches the values.  That is the late-materialization
invariant: rows are only rebuilt as Python tuples at pipeline exits
(shuffle, join, sort, or result collection), and a column that is merely
*carried* through filters and projections is never decoded at all.

Values inside a batch follow the same conventions as decoded block
columns: primitives are numpy arrays (with an optional validity mask for
NULLs), everything else is a plain Python list with inline ``None``.
"""

from __future__ import annotations

import sys

from typing import Any, Optional, Sequence

import numpy as np

from repro.columnar.table import ColumnarPartition

__all__ = ["Vector", "LazyColumn", "ColumnBatch"]


class Vector:
    """One dense column of batch values.

    ``data`` is either a numpy array (primitives; positions where
    ``valid`` is False are NULL and hold unspecified garbage) or a Python
    list with inline ``None``.  ``valid`` is only ever paired with array
    data; ``valid is None`` over an array means no NULLs.
    """

    __slots__ = ("data", "valid")

    def __init__(self, data, valid: Optional[np.ndarray] = None):
        self.data = data
        self.valid = valid

    def __len__(self) -> int:
        return len(self.data)

    @property
    def is_array(self) -> bool:
        return isinstance(self.data, np.ndarray)

    def gather(self, indices: np.ndarray) -> "Vector":
        if isinstance(self.data, np.ndarray):
            valid = self.valid[indices] if self.valid is not None else None
            return Vector(self.data[indices], valid)
        data = self.data
        return Vector([data[i] for i in indices])

    def to_python_list(self) -> list:
        """Values as Python objects with inline None (row-path parity).

        ``ndarray.tolist()`` unboxes numpy scalars to exact Python
        ints/floats/bools, matching ``ColumnarPartition._to_python``.
        """
        if not isinstance(self.data, np.ndarray):
            return list(self.data)
        values = self.data.tolist()
        if self.valid is not None:
            valid = self.valid
            return [
                values[i] if valid[i] else None for i in range(len(values))
            ]
        return values

    def memory_footprint_bytes(self) -> int:
        """Exact heap bytes: array buffers (``nbytes``) plus the validity
        mask, or the list shell plus per-object sizes for object columns."""
        if isinstance(self.data, np.ndarray):
            total = self.data.nbytes
            if self.valid is not None:
                total += self.valid.nbytes
            return total
        return sys.getsizeof(self.data) + sum(
            sys.getsizeof(value) for value in self.data if value is not None
        )


def _as_vector(values: Sequence[Any]) -> Vector:
    """Wrap a decoded block column (ndarray or list) as a Vector."""
    if isinstance(values, np.ndarray):
        return Vector(values)
    return Vector(values if isinstance(values, list) else list(values))


class LazyColumn:
    """A batch entry that defers decoding an encoded block column.

    Holds (block, column index, selection).  ``vector()`` decodes through
    the block's column cache and gathers the selection; ``codes()``
    exposes the underlying dictionary codes (selection applied) without
    decoding, when the column is dictionary-encoded.
    """

    __slots__ = ("block", "index", "selection", "_vector")

    def __init__(
        self,
        block: ColumnarPartition,
        index: int,
        selection: Optional[np.ndarray],
    ):
        self.block = block
        self.index = index
        self.selection = selection
        self._vector: Optional[Vector] = None

    def __len__(self) -> int:
        if self.selection is not None:
            return len(self.selection)
        return self.block.num_rows

    def vector(self) -> Vector:
        if self._vector is None:
            full = _as_vector(self.block.column(self.index))
            if self.selection is not None:
                full = full.gather(self.selection)
            self._vector = full
        return self._vector

    def codes(self) -> Optional[tuple[np.ndarray, list]]:
        view = self.block.encoded_column(self.index).dictionary_view()
        if view is None:
            return None
        codes, dictionary = view
        if self.selection is not None:
            codes = codes[self.selection]
        return codes, dictionary

    def memory_footprint_bytes(self) -> int:
        """Exact heap bytes this entry pins right now: the decoded
        vector if it exists, otherwise the encoded column it references
        (plus the dictionary), plus the selection index array."""
        if self._vector is not None:
            total = self._vector.memory_footprint_bytes()
        else:
            encoded = self.block.encoded_column(self.index)
            total = encoded.compressed_bytes
            view = encoded.dictionary_view()
            if view is not None:
                __, dictionary = view
                total += sys.getsizeof(dictionary) + sum(
                    sys.getsizeof(value)
                    for value in dictionary
                    if value is not None
                )
        if self.selection is not None:
            total += self.selection.nbytes
        return total


class ColumnBatch:
    """A selection-resolved batch: N columns x num_rows logical rows.

    Entries are :class:`LazyColumn` or :class:`Vector`; all share the same
    length (``num_rows``).  A filter kernel produces a new batch by
    gathering every entry through the kept indices — lazy entries stay
    lazy (the gather composes selections), so a fused
    filter->project->aggregate chain decodes only what it touches.
    """

    __slots__ = ("entries", "num_rows")

    def __init__(self, entries: list, num_rows: int):
        self.entries = entries
        self.num_rows = num_rows

    @classmethod
    def from_block(
        cls,
        block: ColumnarPartition,
        column_indices: Sequence[int],
        selection: Optional[np.ndarray] = None,
    ) -> "ColumnBatch":
        num_rows = block.num_rows if selection is None else len(selection)
        entries = [
            LazyColumn(block, index, selection) for index in column_indices
        ]
        return cls(entries, num_rows)

    def vector(self, ordinal: int) -> Vector:
        entry = self.entries[ordinal]
        if isinstance(entry, LazyColumn):
            return entry.vector()
        return entry

    def codes(self, ordinal: int) -> Optional[tuple[np.ndarray, list]]:
        entry = self.entries[ordinal]
        if isinstance(entry, LazyColumn):
            return entry.codes()
        return None

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """Keep only the given row positions (a filter kernel's output)."""
        gathered = []
        for entry in self.entries:
            if isinstance(entry, LazyColumn):
                if entry.selection is not None:
                    composed = entry.selection[indices]
                else:
                    composed = indices
                gathered.append(
                    LazyColumn(entry.block, entry.index, composed)
                )
            else:
                gathered.append(entry.gather(indices))
        return ColumnBatch(gathered, len(indices))

    def memory_footprint_bytes(self) -> int:
        """Exact heap bytes held across all entries (lazy entries count
        what they currently pin, not what decoding would cost)."""
        return sum(
            entry.memory_footprint_bytes() for entry in self.entries
        )

    def materialize_rows(self) -> list[tuple]:
        """Late materialization: rebuild Python row tuples at a pipeline
        exit, matching the row path's value conventions exactly."""
        if not self.entries:
            return [()] * self.num_rows
        columns = [self.vector(i).to_python_list() for i in
                   range(len(self.entries))]
        return [tuple(col[r] for col in columns)
                for r in range(self.num_rows)]

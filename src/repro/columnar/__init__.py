"""Shark's columnar memory store (paper Sections 3.2, 3.3, 3.5).

Tables cached in memory are stored column-oriented: each column of
primitives becomes one typed array (the Python analogue of "one JVM object
per column"), complex values are serialized into a byte blob, and cheap
CPU-efficient compression — dictionary encoding, run-length encoding, bit
packing, boolean bitsets — is chosen *per column per partition* during
loading, based on metadata each load task tracks locally (Section 3.3).

Loading also piggybacks per-partition statistics collection: each column's
range, and its distinct values when few.  Those statistics drive map
pruning (Section 3.5): partitions whose ranges cannot satisfy a query's
predicates are never scanned.
"""

from repro.columnar.compression import (
    CompressionScheme,
    EncodedColumn,
    PlainEncoding,
    RunLengthEncoding,
    DictionaryEncoding,
    BitPacking,
    BooleanBitset,
    SerializedBlob,
    choose_scheme,
)
from repro.columnar.stats import ColumnStats, PartitionStats
from repro.columnar.table import ColumnarPartition
from repro.columnar.footprint import (
    jvm_object_footprint,
    serialized_footprint,
)
from repro.columnar.serde import TextSerde, BinarySerde

__all__ = [
    "CompressionScheme",
    "EncodedColumn",
    "PlainEncoding",
    "RunLengthEncoding",
    "DictionaryEncoding",
    "BitPacking",
    "BooleanBitset",
    "SerializedBlob",
    "choose_scheme",
    "ColumnStats",
    "PartitionStats",
    "ColumnarPartition",
    "jvm_object_footprint",
    "serialized_footprint",
    "TextSerde",
    "BinarySerde",
]

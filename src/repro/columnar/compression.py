"""CPU-efficient column compression schemes (paper Section 3.2).

Each scheme encodes a list of column values into a compact representation
with an accurately accounted byte footprint, and decodes back losslessly.
:func:`choose_scheme` implements the per-partition auto-selection of
Section 3.3: each loading task inspects its own data (distinct counts, run
lengths, value ranges) and picks the best scheme locally, with no global
coordination.
"""

from __future__ import annotations

import pickle
from typing import Any, Optional, Sequence

import numpy as np

from repro.datatypes import (
    BOOLEAN,
    DataType,
    DateType,
    DoubleType,
    IntegerType,
    LongType,
    StringType,
    TimestampType,
)
from repro.errors import CompressionError

#: Dictionary encoding applies when distinct/total falls below this ratio
#: and the dictionary itself is small.
DICTIONARY_RATIO = 0.5
#: Upper bound on dictionary cardinality (keeps codes at <= 2 bytes and
#: per-partition metadata small, Section 3.3).
DEFAULT_DICTIONARY_THRESHOLD = 65536
#: RLE applies when the average run length is at least this long.
MIN_AVG_RUN_LENGTH = 4.0
#: Bit packing applies to integer columns whose range fits in this many bits.
MAX_PACK_BITS = 16


def _numpy_dtype_for(data_type: DataType) -> Optional[np.dtype]:
    if isinstance(data_type, IntegerType):
        return np.dtype(np.int32)
    if isinstance(data_type, LongType):
        return np.dtype(np.int64)
    if isinstance(data_type, DoubleType):
        return np.dtype(np.float64)
    return None


class EncodedColumn:
    """A column encoded under one scheme.

    ``compressed_bytes`` is the store's accounting unit; ``decode`` returns
    the original values (as a numpy array for primitives, a list
    otherwise).
    """

    scheme_name = "base"

    def decode(self) -> Sequence[Any]:
        raise NotImplementedError

    @property
    def compressed_bytes(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def memory_footprint_bytes(self) -> int:
        return self.compressed_bytes

    def dictionary_view(self) -> Optional[tuple[np.ndarray, list]]:
        """(codes, dictionary) when the encoding is code-addressable.

        Late materialization hook: a batch consumer that only needs group
        identity (e.g. a hash aggregate keyed on this column) can operate
        on the integer codes directly and look values up once per distinct
        code, instead of decoding every row.  None for encodings that do
        not keep an explicit dictionary.
        """
        return None


class CompressionScheme:
    """Interface: decide applicability and encode."""

    name = "scheme"

    def encode(self, values: list, data_type: DataType) -> EncodedColumn:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Plain
# ---------------------------------------------------------------------------


class _PlainColumn(EncodedColumn):
    scheme_name = "plain"

    def __init__(self, values: list, data_type: DataType):
        dtype = _numpy_dtype_for(data_type)
        self._is_array = dtype is not None and all(
            value is not None for value in values
        )
        if self._is_array:
            self._data = np.asarray(values, dtype=dtype)
            self._bytes = int(self._data.nbytes)
        else:
            self._data = list(values)
            if isinstance(data_type, StringType):
                # Offsets (4B each) plus UTF-8 payload, like a string arena.
                payload = sum(
                    len(value.encode("utf-8")) if value is not None else 0
                    for value in values
                )
                self._bytes = payload + 4 * len(values)
            else:
                self._bytes = len(pickle.dumps(self._data, protocol=4))

    def decode(self) -> Sequence[Any]:
        return self._data

    @property
    def compressed_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._data)


class PlainEncoding(CompressionScheme):
    """No compression: one primitive array (or string arena) per column."""

    name = "plain"

    def encode(self, values: list, data_type: DataType) -> EncodedColumn:
        return _PlainColumn(values, data_type)


# ---------------------------------------------------------------------------
# Run-length encoding
# ---------------------------------------------------------------------------


class _RleColumn(EncodedColumn):
    scheme_name = "rle"

    def __init__(self, values: list, data_type: DataType):
        runs: list[tuple[Any, int]] = []
        for value in values:
            if runs and runs[-1][0] == value:
                runs[-1] = (value, runs[-1][1] + 1)
            else:
                runs.append((value, 1))
        self._run_values = [value for value, __ in runs]
        self._run_lengths = np.asarray(
            [length for __, length in runs], dtype=np.int32
        )
        self._data_type = data_type
        self._length = len(values)
        encoded_values = _PlainColumn(self._run_values, data_type)
        self._bytes = encoded_values.compressed_bytes + int(
            self._run_lengths.nbytes
        )

    def decode(self) -> Sequence[Any]:
        dtype = _numpy_dtype_for(self._data_type)
        if dtype is not None and all(v is not None for v in self._run_values):
            return np.repeat(
                np.asarray(self._run_values, dtype=dtype), self._run_lengths
            )
        out: list = []
        for value, length in zip(self._run_values, self._run_lengths):
            out.extend([value] * int(length))
        return out

    @property
    def compressed_bytes(self) -> int:
        return self._bytes

    @property
    def num_runs(self) -> int:
        return len(self._run_values)

    def __len__(self) -> int:
        return self._length


class RunLengthEncoding(CompressionScheme):
    """(value, run_length) pairs; wins on sorted/clustered columns."""

    name = "rle"

    def encode(self, values: list, data_type: DataType) -> EncodedColumn:
        return _RleColumn(values, data_type)


# ---------------------------------------------------------------------------
# Dictionary encoding
# ---------------------------------------------------------------------------


def _code_dtype(cardinality: int) -> np.dtype:
    if cardinality <= 2**8:
        return np.dtype(np.uint8)
    if cardinality <= 2**16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


class _DictionaryColumn(EncodedColumn):
    scheme_name = "dictionary"

    def __init__(self, values: list, data_type: DataType):
        dictionary: dict[Any, int] = {}
        codes = np.empty(len(values), dtype=np.uint32)
        for index, value in enumerate(values):
            code = dictionary.setdefault(value, len(dictionary))
            codes[index] = code
        self._dictionary = list(dictionary)
        self._codes = codes.astype(_code_dtype(len(dictionary)))
        self._data_type = data_type
        dict_bytes = _PlainColumn(self._dictionary, data_type).compressed_bytes
        self._bytes = dict_bytes + int(self._codes.nbytes)

    def decode(self) -> Sequence[Any]:
        dtype = _numpy_dtype_for(self._data_type)
        if dtype is not None and all(v is not None for v in self._dictionary):
            return np.asarray(self._dictionary, dtype=dtype)[self._codes]
        return [self._dictionary[code] for code in self._codes]

    @property
    def compressed_bytes(self) -> int:
        return self._bytes

    @property
    def cardinality(self) -> int:
        return len(self._dictionary)

    def dictionary_view(self) -> Optional[tuple[np.ndarray, list]]:
        return self._codes, self._dictionary

    def __len__(self) -> int:
        return len(self._codes)


class DictionaryEncoding(CompressionScheme):
    """Distinct values once + small integer codes; wins on enum columns."""

    name = "dictionary"

    def encode(self, values: list, data_type: DataType) -> EncodedColumn:
        return _DictionaryColumn(values, data_type)


# ---------------------------------------------------------------------------
# Bit packing
# ---------------------------------------------------------------------------


class _BitPackedColumn(EncodedColumn):
    scheme_name = "bitpack"

    def __init__(self, values: list, data_type: DataType):
        if not values:
            raise CompressionError("cannot bit-pack an empty column")
        array = np.asarray(values, dtype=np.int64)
        self._base = int(array.min())
        deltas = (array - self._base).astype(np.uint64)
        max_delta = int(deltas.max()) if len(deltas) else 0
        self._width = max(int(max_delta).bit_length(), 1)
        # bits[i, j] = bit j of delta i (LSB first), packed row-major.
        shifts = np.arange(self._width, dtype=np.uint64)
        bits = ((deltas[:, None] >> shifts) & 1).astype(np.uint8)
        self._packed = np.packbits(bits.reshape(-1))
        self._length = len(values)
        self._data_type = data_type

    def decode(self) -> Sequence[Any]:
        total_bits = self._length * self._width
        bits = np.unpackbits(self._packed, count=total_bits)
        bits = bits.reshape(self._length, self._width).astype(np.uint64)
        shifts = np.arange(self._width, dtype=np.uint64)
        deltas = (bits << shifts).sum(axis=1)
        dtype = _numpy_dtype_for(self._data_type) or np.dtype(np.int64)
        return (deltas.astype(np.int64) + self._base).astype(dtype)

    @property
    def compressed_bytes(self) -> int:
        return int(self._packed.nbytes) + 16  # base + width metadata

    @property
    def bit_width(self) -> int:
        return self._width

    def __len__(self) -> int:
        return self._length


class BitPacking(CompressionScheme):
    """Offset-encode small-range integers into ``bit_length(range)`` bits."""

    name = "bitpack"

    def encode(self, values: list, data_type: DataType) -> EncodedColumn:
        return _BitPackedColumn(values, data_type)


# ---------------------------------------------------------------------------
# Boolean bitset
# ---------------------------------------------------------------------------


class _BitsetColumn(EncodedColumn):
    scheme_name = "bitset"

    def __init__(self, values: list):
        array = np.asarray(values, dtype=bool)
        self._packed = np.packbits(array)
        self._length = len(values)

    def decode(self) -> Sequence[Any]:
        return np.unpackbits(self._packed, count=self._length).astype(bool)

    @property
    def compressed_bytes(self) -> int:
        return int(self._packed.nbytes)

    def __len__(self) -> int:
        return self._length


class BooleanBitset(CompressionScheme):
    """One bit per boolean."""

    name = "bitset"

    def encode(self, values: list, data_type: DataType) -> EncodedColumn:
        return _BitsetColumn(values)


# ---------------------------------------------------------------------------
# Serialized blob (complex types)
# ---------------------------------------------------------------------------


class _BlobColumn(EncodedColumn):
    scheme_name = "blob"

    def __init__(self, values: list):
        # "Complex data types ... are serialized and concatenated into a
        # single byte array" (Section 3.2).
        self._offsets = np.empty(len(values) + 1, dtype=np.int64)
        parts = []
        offset = 0
        for index, value in enumerate(values):
            self._offsets[index] = offset
            blob = pickle.dumps(value, protocol=4)
            parts.append(blob)
            offset += len(blob)
        self._offsets[len(values)] = offset
        self._payload = b"".join(parts)

    def decode(self) -> Sequence[Any]:
        out = []
        for index in range(len(self._offsets) - 1):
            start, end = int(self._offsets[index]), int(self._offsets[index + 1])
            out.append(pickle.loads(self._payload[start:end]))
        return out

    @property
    def compressed_bytes(self) -> int:
        return len(self._payload) + int(self._offsets.nbytes)

    def __len__(self) -> int:
        return len(self._offsets) - 1


class SerializedBlob(CompressionScheme):
    """Serialize complex values into one concatenated byte array."""

    name = "blob"

    def encode(self, values: list, data_type: DataType) -> EncodedColumn:
        return _BlobColumn(values)


# ---------------------------------------------------------------------------
# Per-partition scheme selection (Section 3.3)
# ---------------------------------------------------------------------------

PLAIN = PlainEncoding()
RLE = RunLengthEncoding()
DICTIONARY = DictionaryEncoding()
BITPACK = BitPacking()
BITSET = BooleanBitset()
BLOB = SerializedBlob()


def choose_scheme(
    values: list,
    data_type: DataType,
    dictionary_threshold: int = DEFAULT_DICTIONARY_THRESHOLD,
) -> CompressionScheme:
    """Pick the best scheme for this partition's column, locally.

    Mirrors the paper's loading tasks: track distinct counts and run
    lengths while scanning, then choose dictionary encoding when distinct
    values are few, RLE when runs are long (clustered data), bit packing
    for narrow integer ranges, bitsets for booleans, and plain otherwise.
    """
    if not values:
        return PLAIN
    if data_type == BOOLEAN:
        return BITSET
    if isinstance(data_type, (DateType, TimestampType)):
        # Dates behave like strings here: dictionary if few distinct,
        # otherwise one pickled vector (compact: the codec is shared).
        distinct = len(set(values))
        if distinct <= dictionary_threshold and distinct / len(values) <= DICTIONARY_RATIO:
            return DICTIONARY
        return PLAIN

    has_none = any(value is None for value in values)
    numeric = _numpy_dtype_for(data_type) is not None
    is_string = isinstance(data_type, StringType)

    if not numeric and not is_string:
        return BLOB
    if has_none:
        # Null-bearing primitive columns fall back to plain list storage.
        return PLAIN

    runs = 1
    for previous, current in zip(values, values[1:]):
        if current != previous:
            runs += 1
    avg_run = len(values) / runs
    distinct = len(set(values))

    if avg_run >= MIN_AVG_RUN_LENGTH:
        return RLE
    if distinct <= dictionary_threshold and distinct / len(values) <= DICTIONARY_RATIO:
        return DICTIONARY
    if numeric and not isinstance(data_type, DoubleType):
        array = np.asarray(values, dtype=np.int64)
        span = int(array.max()) - int(array.min())
        if span.bit_length() <= MAX_PACK_BITS:
            return BITPACK
    return PLAIN

"""Shared dataset container for workload generators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.columnar.footprint import serialized_footprint
from repro.datatypes import Schema

GB = 1024**3
TB = 1024**4


@dataclass
class Dataset:
    """Local rows plus the cluster-scale volume they stand in for."""

    name: str
    schema: Schema
    rows: list[tuple]
    #: Size of the full dataset in the paper's evaluation.
    represented_bytes: int
    represented_rows: int

    @property
    def local_bytes(self) -> int:
        """Serialized size of the local sample."""
        return serialized_footprint(self.schema, self.rows)

    @property
    def scale_factor(self) -> float:
        """Multiplier from local volumes to represented (paper) volumes."""
        local = self.local_bytes
        if local == 0:
            return 1.0
        return self.represented_bytes / local

    @property
    def row_scale_factor(self) -> float:
        if not self.rows:
            return 1.0
        return self.represented_rows / len(self.rows)

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name}, {len(self.rows)} local rows representing "
            f"{self.represented_rows} rows / "
            f"{self.represented_bytes / GB:.0f} GB)"
        )

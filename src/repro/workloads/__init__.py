"""Dataset generators for the paper's four evaluation workloads
(Section 6):

1. :mod:`repro.workloads.pavlo` — the Pavlo et al. benchmark tables
   (rankings 100 GB / uservisits 2 TB at paper scale);
2. :mod:`repro.workloads.tpch` — dbgen-lite TPC-H tables with correct
   cardinality ratios (100 GB and 1 TB runs);
3. :mod:`repro.workloads.warehouse` — the real video-analytics Hive
   warehouse stand-in: a 103-column fact table with complex types and the
   natural date/country clustering map pruning exploits;
4. :mod:`repro.workloads.mlgen` — the synthetic 1-billion-point ML dataset.

Each generator is deterministic (seeded) and returns a :class:`Dataset`
carrying both the local rows and the cluster-scale volumes it represents,
so the cost model can scale measured task metrics to paper-scale seconds.
"""

from repro.workloads.base import Dataset
from repro.workloads import pavlo, tpch, warehouse, mlgen

__all__ = ["Dataset", "pavlo", "tpch", "warehouse", "mlgen"]

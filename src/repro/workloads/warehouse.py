"""The real-Hive-warehouse stand-in (paper Sections 3.5, 6.4).

The paper's early industrial user — "a leading video analytics company for
content providers and publishers" — provided 1.7 TB of 30-day video
session data: a single fact table with 103 columns, heavy use of array and
struct, and *natural clustering*: logs land in data centers by user
geography and are appended in rough chronological order.  Out of 3833
warehouse queries, 3277 carried predicates usable for map pruning, which
cut data scanned by ~30x on the four representative queries.

This generator reproduces those properties: a 103-column sessions table
(12 named dimensions + quality metrics + filler metric columns + an array
and a map column), emitted sorted by (day, country) so per-partition
ranges are tight and pruning fires.
"""

from __future__ import annotations

import random
from repro.datatypes import (
    ArrayType,
    DOUBLE,
    Field,
    INT,
    MapType,
    STRING,
    Schema,
)
from repro.workloads.base import TB, Dataset

#: Total columns in the user's fact table.
TOTAL_COLUMNS = 103

_COUNTRIES = ["US", "BR", "GB", "DE", "IN", "JP", "KR", "FR", "MX", "CA"]
#: Audience skew: the company's traffic concentrates in two countries —
#: which is what makes Q3 ("all but 2 countries") prune so well when logs
#: are stored per data center.
_COUNTRY_WEIGHTS = [45, 25, 8, 6, 5, 4, 3, 2, 1, 1]
_DEVICES = ["ios", "android", "web", "tv", "console"]
_CDNS = ["cdnA", "cdnB", "cdnC"]
_PLAYER_EVENTS = ["play", "pause", "buffer", "seek", "error", "stop"]

_NAMED_FIELDS = [
    Field("session_id", INT),
    Field("day", INT),                 # 0..29: the clustering column
    Field("customer", STRING),
    Field("country", STRING),          # clustered within day
    Field("city", STRING),
    Field("device", STRING),
    Field("cdn", STRING),
    Field("client_version", STRING),
    Field("join_time_ms", INT),
    Field("buffering_ratio", DOUBLE),
    Field("bitrate_kbps", INT),
    Field("play_time_sec", INT),
    Field("events", ArrayType(element_type=STRING)),
    Field("tags", MapType(key_type=STRING, value_type=STRING)),
]


def build_schema() -> Schema:
    """12 named dimensions + complex columns + filler metrics = 103."""
    fields = list(_NAMED_FIELDS)
    for index in range(TOTAL_COLUMNS - len(fields)):
        fields.append(Field(f"metric_{index:02d}", DOUBLE))
    return Schema(fields)


SESSIONS_SCHEMA = build_schema()

#: Paper scale: 1.7 TB decompressed, 30 days of data.
REPRESENTED_BYTES = int(1.7 * TB)
REPRESENTED_ROWS = 2_000_000_000

#: Trace statistics from Section 3.5.
TRACE_TOTAL_QUERIES = 3833
TRACE_PRUNABLE_QUERIES = 3277


def generate_sessions(
    num_days: int = 30,
    rows_per_day: int = 120,
    num_customers: int = 8,
    seed: int = 41,
) -> Dataset:
    """Sessions sorted by (day, country) — the natural clustering of logs
    appended per data center in chronological order."""
    rng = random.Random(seed)
    rows = []
    session_id = 0
    for day in range(num_days):
        day_rows = []
        for __ in range(rows_per_day):
            session_id += 1
            country = rng.choices(_COUNTRIES, weights=_COUNTRY_WEIGHTS, k=1)[0]
            events = rng.choices(
                _PLAYER_EVENTS, k=rng.randint(1, 5)
            )
            metrics = tuple(
                round(rng.uniform(0.0, 100.0), 3)
                for _ in range(TOTAL_COLUMNS - len(_NAMED_FIELDS))
            )
            day_rows.append(
                (
                    session_id,
                    day,
                    f"cust{rng.randint(1, num_customers)}",
                    country,
                    f"{country}-city{rng.randint(1, 20)}",
                    rng.choice(_DEVICES),
                    rng.choice(_CDNS),
                    f"{rng.randint(1, 4)}.{rng.randint(0, 9)}",
                    rng.randint(50, 8000),
                    round(rng.random() * 0.3, 4),
                    rng.choice([400, 800, 1200, 2400, 4500]),
                    rng.randint(5, 7200),
                    events,
                    {"ab_test": rng.choice(["on", "off"]),
                     "plan": rng.choice(["free", "paid"])},
                )
                + metrics
            )
        # Within a day, group by country (logs per data center).
        day_rows.sort(key=lambda row: row[3])
        rows.extend(day_rows)
    return Dataset(
        name="sessions",
        schema=SESSIONS_SCHEMA,
        rows=rows,
        represented_bytes=REPRESENTED_BYTES,
        represented_rows=REPRESENTED_ROWS,
    )


def representative_queries(
    customer: str = "cust3", day: int = 12
) -> dict[str, str]:
    """The four prototypical queries of Section 6.4.

    1. summary statistics in 12 dimensions for one customer on one day;
    2. sessions + distinct customer/client combinations by country, with
       filter predicates on eight columns;
    3. sessions and distinct users for all but 2 countries;
    4. summary statistics in 7 dimensions, top groups first.
    """
    return {
        "q1": f"""
            SELECT device, cdn, country,
                   COUNT(*) sessions,
                   AVG(join_time_ms) avg_join,
                   AVG(buffering_ratio) avg_buffer,
                   AVG(bitrate_kbps) avg_bitrate,
                   SUM(play_time_sec) total_play,
                   MIN(join_time_ms) min_join,
                   MAX(join_time_ms) max_join,
                   AVG(metric_00) m0,
                   AVG(metric_01) m1
            FROM sessions
            WHERE customer = '{customer}' AND day = {day}
            GROUP BY device, cdn, country
        """,
        "q2": f"""
            SELECT country,
                   COUNT(*) sessions,
                   COUNT(DISTINCT customer) customers,
                   COUNT(DISTINCT client_version) clients
            FROM sessions
            WHERE day >= {day} AND day < {day + 7}
              AND bitrate_kbps >= 400 AND bitrate_kbps <= 4500
              AND join_time_ms < 8000
              AND buffering_ratio < 0.25
              AND play_time_sec > 10
              AND device <> 'console'
            GROUP BY country
        """,
        "q3": """
            SELECT COUNT(*) sessions, COUNT(DISTINCT session_id) users
            FROM sessions
            WHERE country <> 'US' AND country <> 'BR'
        """,
        "q4": f"""
            SELECT customer,
                   COUNT(*) sessions,
                   AVG(join_time_ms) avg_join,
                   AVG(buffering_ratio) avg_buffer,
                   AVG(bitrate_kbps) avg_bitrate,
                   SUM(play_time_sec) total_play,
                   MAX(bitrate_kbps) peak_bitrate
            FROM sessions
            WHERE day = {day}
            GROUP BY customer
            ORDER BY sessions DESC
            LIMIT 10
        """,
    }

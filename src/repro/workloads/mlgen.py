"""Synthetic ML dataset (paper Section 6.5).

The paper's dataset: 1 billion rows x 10 columns, 100 GB, used for both
logistic regression (binary labels) and k-means.  We generate a seeded
Gaussian mixture: two separable classes for classification, the same
points (unlabeled) for clustering.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes import DOUBLE, Field, INT, Schema
from repro.workloads.base import GB, Dataset

NUM_FEATURES = 10

#: Paper scale.
REPRESENTED_BYTES = 100 * GB
REPRESENTED_ROWS = 1_000_000_000


def build_schema() -> Schema:
    fields = [Field("label", INT)]
    fields.extend(
        Field(f"f{i}", DOUBLE) for i in range(NUM_FEATURES)
    )
    return Schema(fields)


POINTS_SCHEMA = build_schema()


def generate_points(
    num_rows: int = 4000,
    separation: float = 2.5,
    seed: int = 43,
) -> Dataset:
    """Two Gaussian clusters; labels in {-1, +1}.

    ``separation`` controls linear separability — the default trains to
    >95% accuracy in a handful of gradient steps, so correctness tests
    can assert convergence.
    """
    rng = np.random.default_rng(seed)
    labels = rng.choice([-1, 1], size=num_rows)
    centers = np.zeros((num_rows, NUM_FEATURES))
    centers[:, 0] = labels * separation
    centers[:, 1] = -labels * separation
    features = centers + rng.normal(0.0, 1.0, size=(num_rows, NUM_FEATURES))
    rows = [
        (int(labels[i]),) + tuple(round(float(x), 6) for x in features[i])
        for i in range(num_rows)
    ]
    return Dataset(
        name="ml_points",
        schema=POINTS_SCHEMA,
        rows=rows,
        represented_bytes=REPRESENTED_BYTES,
        represented_rows=REPRESENTED_ROWS,
    )

"""The Pavlo et al. benchmark dataset (paper Section 6.2).

Two tables, re-created at the paper's 100-node scale as a 100 GB rankings
table (1.8 billion rows) and a 2 TB uservisits table (15.5 billion rows).
Locally we generate seeded samples with the same distributions: Zipfian
page popularity, uniform pageRanks, one week of 2000-era visit dates
concentrated around the join query's filter window.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

from repro.datatypes import DOUBLE, INT, STRING, Schema, DATE
from repro.workloads.base import GB, TB, Dataset

RANKINGS_SCHEMA = Schema.of(
    ("pageURL", STRING),
    ("pageRank", INT),
    ("avgDuration", INT),
)

USERVISITS_SCHEMA = Schema.of(
    ("sourceIP", STRING),
    ("destURL", STRING),
    ("visitDate", DATE),
    ("adRevenue", DOUBLE),
    ("userAgent", STRING),
    ("countryCode", STRING),
    ("languageCode", STRING),
    ("searchWord", STRING),
    ("duration", INT),
)

#: Paper-scale volumes (Section 6.2).
RANKINGS_REPRESENTED_BYTES = 100 * GB
RANKINGS_REPRESENTED_ROWS = 1_800_000_000
USERVISITS_REPRESENTED_BYTES = 2 * TB
USERVISITS_REPRESENTED_ROWS = 15_500_000_000

_COUNTRIES = ["USA", "DEU", "BRA", "IND", "CHN", "GBR", "JPN", "FRA"]
_LANGUAGES = ["en", "de", "pt", "hi", "zh", "ja", "fr"]
_AGENTS = ["Mozilla/5.0", "Chrome/20", "Safari/5", "Opera/12"]
_WORDS = ["cat", "dog", "news", "shark", "spark", "hive", "sale", "score"]


def _url(page_id: int) -> str:
    return f"url{page_id}"


def generate_rankings(num_rows: int = 2000, seed: int = 7) -> Dataset:
    """pageURL is unique per row; pageRank uniform in [0, 100]."""
    rng = random.Random(seed)
    rows = [
        (_url(i), rng.randint(0, 100), rng.randint(1, 60))
        for i in range(num_rows)
    ]
    return Dataset(
        name="rankings",
        schema=RANKINGS_SCHEMA,
        rows=rows,
        represented_bytes=RANKINGS_REPRESENTED_BYTES,
        represented_rows=RANKINGS_REPRESENTED_ROWS,
    )


def generate_uservisits(
    num_rows: int = 10000,
    num_pages: int = 2000,
    num_ips: int = 400,
    seed: int = 11,
    zipf_alpha: float = 1.2,
) -> Dataset:
    """Visits with Zipfian destURL popularity and dates through Q1 2000.

    ``num_pages`` should match the rankings table so the join has
    realistic hit rates; the date range covers the join query's
    2000-01-15..22 window with plenty outside it.
    """
    rng = random.Random(seed)
    # Zipfian page weights (heavier head -> popular pages, skew for PDE).
    weights = [1.0 / (rank + 1) ** zipf_alpha for rank in range(num_pages)]
    base_date = date(2000, 1, 1)
    # A bounded pool of source IPs sharing /16-style prefixes, so the two
    # aggregation queries have the paper's cardinality relationship: many
    # distinct full IPs, ~8x fewer 7-character prefixes.
    num_prefixes = max(num_ips // 8, 1)
    prefixes = [
        f"{rng.randint(10, 99)}.{rng.randint(10, 99)}.{rng.randint(1, 9)}"
        for __ in range(num_prefixes)
    ]
    ip_pool = [
        f"{rng.choice(prefixes)}.{rng.randint(1, 254)}"
        for __ in range(num_ips)
    ]
    rows = []
    for __ in range(num_rows):
        page = rng.choices(range(num_pages), weights=weights, k=1)[0]
        source_ip = rng.choice(ip_pool)
        visit_date = base_date + timedelta(days=rng.randint(0, 89))
        rows.append(
            (
                source_ip,
                _url(page),
                visit_date,
                round(rng.uniform(0.01, 10.0), 4),
                rng.choice(_AGENTS),
                rng.choice(_COUNTRIES),
                rng.choice(_LANGUAGES),
                rng.choice(_WORDS),
                rng.randint(1, 600),
            )
        )
    return Dataset(
        name="uservisits",
        schema=USERVISITS_SCHEMA,
        rows=rows,
        represented_bytes=USERVISITS_REPRESENTED_BYTES,
        represented_rows=USERVISITS_REPRESENTED_ROWS,
    )


#: The four benchmark queries (Sections 6.2.1-6.2.3), verbatim shapes.
SELECTION_QUERY = (
    "SELECT pageURL, pageRank FROM rankings WHERE pageRank > {cutoff}"
)

AGGREGATION_FULL_QUERY = (
    "SELECT sourceIP, SUM(adRevenue) FROM uservisits GROUP BY sourceIP"
)

AGGREGATION_SUBSTR_QUERY = (
    "SELECT SUBSTR(sourceIP, 1, 7), SUM(adRevenue) "
    "FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 7)"
)

JOIN_QUERY = """
SELECT sourceIP, AVG(pageRank), SUM(adRevenue) as totalRevenue
FROM rankings AS R, uservisits AS UV
WHERE R.pageURL = UV.destURL
  AND UV.visitDate BETWEEN DATE '2000-01-15' AND DATE '2000-01-22'
GROUP BY UV.sourceIP
"""

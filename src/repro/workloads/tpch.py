"""dbgen-lite: TPC-H tables with correct cardinality ratios (Section 6.3).

The paper generates 100 GB and 1 TB datasets with DBGEN and uses lineitem
and supplier for its micro-benchmarks.  What matters for reproducing the
experiments is the *group cardinalities* of the aggregation columns —
L_SHIPMODE has 7 values, L_RECEIPTDATE ~2500 distinct days, L_ORDERKEY is
~1 group per 4 rows — and the lineitem:supplier size ratio (600:1 at any
scale factor), which drives the PDE join experiment.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

from repro.datatypes import DATE, DOUBLE, INT, STRING, Schema
from repro.workloads.base import GB, TB, Dataset

LINEITEM_SCHEMA = Schema.of(
    ("L_ORDERKEY", INT),
    ("L_PARTKEY", INT),
    ("L_SUPPKEY", INT),
    ("L_LINENUMBER", INT),
    ("L_QUANTITY", DOUBLE),
    ("L_EXTENDEDPRICE", DOUBLE),
    ("L_DISCOUNT", DOUBLE),
    ("L_TAX", DOUBLE),
    ("L_RETURNFLAG", STRING),
    ("L_LINESTATUS", STRING),
    ("L_SHIPDATE", DATE),
    ("L_RECEIPTDATE", DATE),
    ("L_SHIPMODE", STRING),
)

SUPPLIER_SCHEMA = Schema.of(
    ("S_SUPPKEY", INT),
    ("S_NAME", STRING),
    ("S_ADDRESS", STRING),
    ("S_NATIONKEY", INT),
    ("S_PHONE", STRING),
    ("S_ACCTBAL", DOUBLE),
)

ORDERS_SCHEMA = Schema.of(
    ("O_ORDERKEY", INT),
    ("O_CUSTKEY", INT),
    ("O_ORDERSTATUS", STRING),
    ("O_TOTALPRICE", DOUBLE),
    ("O_ORDERDATE", DATE),
    ("O_ORDERPRIORITY", STRING),
)

CUSTOMER_SCHEMA = Schema.of(
    ("C_CUSTKEY", INT),
    ("C_NAME", STRING),
    ("C_NATIONKEY", INT),
    ("C_ACCTBAL", DOUBLE),
    ("C_MKTSEGMENT", STRING),
)

SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
_RETURN_FLAGS = ["A", "N", "R"]
_LINE_STATUS = ["O", "F"]
_ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]

#: Paper-scale representations: the 100 GB dataset has a 600M-row
#: lineitem; the 1 TB dataset 6B rows (Section 6.3.1).
SCALE_100GB = (100 * GB, 600_000_000)
SCALE_1TB = (1 * TB, 6_000_000_000)

#: TPC-H ratios per scale factor 1: 6M lineitem rows to 10K suppliers.
LINEITEM_TO_SUPPLIER_RATIO = 600

_BASE_DATE = date(1992, 1, 1)
#: ~2500 distinct receipt dates, matching the paper's group count.
_DATE_SPAN_DAYS = 2500


def generate_lineitem(
    num_rows: int = 12000,
    represented: tuple[int, int] = SCALE_100GB,
    seed: int = 23,
) -> Dataset:
    """lineitem with ~4 lines per order and paper-matching cardinalities."""
    rng = random.Random(seed)
    num_orders = max(num_rows // 4, 1)
    num_suppliers = max(num_rows // LINEITEM_TO_SUPPLIER_RATIO, 1)
    rows = []
    for i in range(num_rows):
        order_key = rng.randint(1, num_orders)
        ship_offset = rng.randint(0, _DATE_SPAN_DAYS - 1)
        rows.append(
            (
                order_key,
                rng.randint(1, max(num_rows // 3, 1)),
                rng.randint(1, num_suppliers),
                i % 7 + 1,
                float(rng.randint(1, 50)),
                round(rng.uniform(900.0, 100000.0), 2),
                round(rng.choice([0.0, 0.01, 0.02, 0.05, 0.1]), 2),
                round(rng.choice([0.0, 0.02, 0.04, 0.08]), 2),
                rng.choice(_RETURN_FLAGS),
                rng.choice(_LINE_STATUS),
                _BASE_DATE + timedelta(days=ship_offset),
                _BASE_DATE + timedelta(days=ship_offset + rng.randint(1, 30)),
                rng.choice(SHIP_MODES),
            )
        )
    represented_bytes, represented_rows = represented
    return Dataset(
        name="lineitem",
        schema=LINEITEM_SCHEMA,
        rows=rows,
        represented_bytes=represented_bytes,
        represented_rows=represented_rows,
    )


def generate_supplier(
    num_rows: int = 200,
    represented_rows: int = 10_000_000,
    seed: int = 29,
) -> Dataset:
    """supplier; the paper's UDF selects 1000 of 10M suppliers — the same
    1/10000 selectivity is reproducible with
    ``S_ADDRESS LIKE`` predicates or a registered UDF over addresses."""
    rng = random.Random(seed)
    rows = []
    for key in range(1, num_rows + 1):
        rows.append(
            (
                key,
                f"Supplier#{key:09d}",
                f"{rng.randint(1, 999)} Warehouse Way Unit {key}",
                rng.randint(0, 24),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-"
                f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
            )
        )
    return Dataset(
        name="supplier",
        schema=SUPPLIER_SCHEMA,
        rows=rows,
        represented_bytes=represented_rows * 160,
        represented_rows=represented_rows,
    )


def generate_orders(
    num_rows: int = 3000,
    represented_rows: int = 150_000_000,
    seed: int = 31,
) -> Dataset:
    rng = random.Random(seed)
    rows = []
    for key in range(1, num_rows + 1):
        rows.append(
            (
                key,
                rng.randint(1, max(num_rows // 10, 1)),
                rng.choice(["O", "F", "P"]),
                round(rng.uniform(1000.0, 500000.0), 2),
                _BASE_DATE + timedelta(days=rng.randint(0, _DATE_SPAN_DAYS - 1)),
                rng.choice(_ORDER_PRIORITIES),
            )
        )
    return Dataset(
        name="orders",
        schema=ORDERS_SCHEMA,
        rows=rows,
        represented_bytes=represented_rows * 120,
        represented_rows=represented_rows,
    )


def generate_customer(
    num_rows: int = 1500,
    represented_rows: int = 15_000_000,
    seed: int = 37,
) -> Dataset:
    rng = random.Random(seed)
    rows = []
    for key in range(1, num_rows + 1):
        rows.append(
            (
                key,
                f"Customer#{key:09d}",
                rng.randint(0, 24),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(_SEGMENTS),
            )
        )
    return Dataset(
        name="customer",
        schema=CUSTOMER_SCHEMA,
        rows=rows,
        represented_bytes=represented_rows * 100,
        represented_rows=represented_rows,
    )


#: The aggregation micro-benchmark queries (Section 6.3.1): group counts
#: of 1 (no group-by), 7, ~2500 and ~num_rows/4.
AGGREGATION_QUERIES = {
    1: "SELECT COUNT(*) FROM lineitem",
    7: "SELECT L_SHIPMODE, COUNT(*) FROM lineitem GROUP BY L_SHIPMODE",
    2500: (
        "SELECT L_RECEIPTDATE, COUNT(*) FROM lineitem "
        "GROUP BY L_RECEIPTDATE"
    ),
    "max": "SELECT L_ORDERKEY, COUNT(*) FROM lineitem GROUP BY L_ORDERKEY",
}

#: Classic TPC-H query texts over the generated tables (the same Q1/Q3/
#: Q6 shapes tests/sql/test_tpch_queries.py checks against references);
#: the perf-regression sentinel runs these as part of its suite.
TPCH_QUERIES = {
    "Q1": """
        SELECT L_RETURNFLAG, L_LINESTATUS,
               SUM(L_QUANTITY) AS sum_qty,
               SUM(L_EXTENDEDPRICE) AS sum_base,
               SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS sum_disc,
               AVG(L_QUANTITY) AS avg_qty,
               COUNT(*) AS count_order
        FROM lineitem
        WHERE L_SHIPDATE <= DATE '1998-09-02'
        GROUP BY L_RETURNFLAG, L_LINESTATUS
        ORDER BY L_RETURNFLAG, L_LINESTATUS
    """,
    "Q3": """
        SELECT o.O_ORDERKEY,
               SUM(l.L_EXTENDEDPRICE * (1 - l.L_DISCOUNT)) AS revenue,
               o.O_ORDERDATE
        FROM customer c
        JOIN orders o ON c.C_CUSTKEY = o.O_CUSTKEY
        JOIN lineitem l ON l.L_ORDERKEY = o.O_ORDERKEY
        WHERE c.C_MKTSEGMENT = 'BUILDING'
          AND o.O_ORDERDATE < DATE '1995-03-15'
        GROUP BY o.O_ORDERKEY, o.O_ORDERDATE
        ORDER BY revenue DESC
        LIMIT 10
    """,
    "Q6": """
        SELECT SUM(L_EXTENDEDPRICE * L_DISCOUNT) AS revenue
        FROM lineitem
        WHERE L_SHIPDATE >= DATE '1994-01-01'
          AND L_SHIPDATE < DATE '1995-01-01'
          AND L_DISCOUNT BETWEEN 0.01 AND 0.06
          AND L_QUANTITY < 24
    """,
}

#: The PDE join experiment's query (Section 6.3.2).
PDE_JOIN_QUERY = """
SELECT * FROM lineitem l JOIN supplier s
ON l.L_SUPPKEY = s.S_SUPPKEY
WHERE SOME_UDF(s.S_ADDRESS)
"""

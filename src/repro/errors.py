"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch one base class.  Subsystems raise the most specific
subclass that applies; messages carry enough context (table names, stage ids,
worker ids) to debug a failed query without a stack trace.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class EngineError(ReproError):
    """Base class for execution-engine failures."""


class TaskError(EngineError):
    """A task raised an exception while computing a partition."""

    def __init__(self, stage_id: int, partition: int, cause: BaseException):
        super().__init__(
            f"task failed in stage {stage_id}, partition {partition}: {cause!r}"
        )
        self.stage_id = stage_id
        self.partition = partition
        self.cause = cause


class TransientTaskFailure(EngineError):
    """A task attempt failed for a transient reason (an injected fault or a
    flaky worker).

    The scheduler catches this internally: the attempt is retried on
    another worker after a capped exponential (simulated-clock) backoff.
    It only escapes to user code when ``max_task_attempts`` is exhausted,
    wrapped in :class:`TaskError`.
    """

    def __init__(
        self,
        stage_id: int,
        partition: int,
        worker_id: int,
        reason: str,
        attempt: int = 1,
    ):
        super().__init__(
            f"transient failure of task {stage_id}.{partition} "
            f"(attempt {attempt}) on worker {worker_id}: {reason}"
        )
        self.stage_id = stage_id
        self.partition = partition
        self.worker_id = worker_id
        self.reason = reason
        self.attempt = attempt


class FetchFailedError(EngineError):
    """A reduce task could not fetch map output (the worker died).

    The scheduler catches this internally and re-runs the lost map tasks; it
    only escapes to user code if recovery itself is impossible.
    """

    def __init__(self, shuffle_id: int, map_partition: int, worker_id: int):
        super().__init__(
            f"fetch failed: shuffle {shuffle_id} map partition "
            f"{map_partition} lost with worker {worker_id}"
        )
        self.shuffle_id = shuffle_id
        self.map_partition = map_partition
        self.worker_id = worker_id


class BlockLostError(EngineError):
    """A cached RDD block disappeared (its worker was killed)."""

    def __init__(self, block_id: str, worker_id: int):
        super().__init__(f"block {block_id} lost with worker {worker_id}")
        self.block_id = block_id
        self.worker_id = worker_id


class NoLiveWorkersError(EngineError):
    """All workers are dead; the cluster cannot make progress."""


class QueryAbortedError(EngineError):
    """A coarse-grained engine (the MPP baseline) aborted a query mid-run."""


class QueryLifecycleError(EngineError):
    """Base class for query-lifecycle failures (admission, cancellation,
    deadlines, circuit breaking) raised by
    :class:`~repro.engine.lifecycle.QueryLifecycleManager`."""


class AdmissionRejected(QueryLifecycleError):
    """The engine is at capacity: the admission queue is full.

    Backpressure, not silent queueing: the caller should resubmit after
    ``retry_after_s`` simulated seconds (a hint derived from recent query
    durations and the current queue depth).
    """

    def __init__(self, name: str, running: int, queued: int, retry_after_s: float):
        super().__init__(
            f"query {name!r} rejected: {running} running and {queued} queued "
            f"queries at capacity; retry after ~{retry_after_s:.2f}s"
        )
        self.name = name
        self.running = running
        self.queued = queued
        self.retry_after_s = retry_after_s


class TenantQuotaExceeded(AdmissionRejected):
    """A tenant hit one of its own serving quotas (concurrency slots,
    queued-query cap, or the simulated-seconds budget of the current
    accounting window) — the server as a whole may have capacity, but
    this tenant must back off.

    ``resource`` names the exhausted quota: ``"concurrency"``,
    ``"queue"``, or ``"budget"``.
    """

    def __init__(
        self,
        name: str,
        tenant: str,
        resource: str,
        running: int,
        queued: int,
        retry_after_s: float,
    ):
        QueryLifecycleError.__init__(
            self,
            f"query {name!r} rejected: tenant {tenant!r} exceeded its "
            f"{resource} quota ({running} running, {queued} queued); "
            f"retry after ~{retry_after_s:.2f}s",
        )
        self.name = name
        self.tenant = tenant
        self.resource = resource
        self.running = running
        self.queued = queued
        self.retry_after_s = retry_after_s


class QueryCancelledError(QueryLifecycleError):
    """The query was cancelled mid-flight (user request or deadline).

    Raised inside the query at the next cooperative cancellation point;
    the lifecycle manager then releases the query's admission slot and
    cleans up its shuffle outputs, spans, and accumulator buffers.
    """

    def __init__(self, name: str, reason: str = "cancelled"):
        super().__init__(f"query {name!r} cancelled: {reason}")
        self.name = name
        self.reason = reason


class QueryDeadlineExceeded(QueryCancelledError):
    """The query ran past its simulated-clock deadline and was cancelled
    mid-flight (subclasses :class:`QueryCancelledError` so one handler
    catches both forms of cooperative cancellation)."""

    def __init__(self, name: str, deadline_s: float, elapsed_s: float):
        super().__init__(
            name,
            reason=(
                f"deadline of {deadline_s:.3f}s exceeded "
                f"({elapsed_s:.3f} simulated seconds charged)"
            ),
        )
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s


class QueryShedError(QueryCancelledError):
    """A still-queued query was dropped by load shedding before it ever
    launched a task (its deadline became unmeetable while it waited, or
    the server entered brownout and shed its priority tier).

    ``shed_reason`` is machine-readable: ``"deadline-unmeetable"`` or
    ``"brownout"``.  Subclasses :class:`QueryCancelledError` so one
    handler catches every form of a query being killed before
    completion.
    """

    def __init__(self, name: str, shed_reason: str):
        super().__init__(name, reason=f"shed: {shed_reason}")
        self.shed_reason = shed_reason


class QueryCircuitOpenError(QueryLifecycleError):
    """Submissions for this query key are failing fast: previous runs
    repeatedly exhausted their recovery budget, so the per-query circuit
    breaker is open until ``retry_after_completions`` more queries finish."""

    def __init__(self, key: str, failures: int, retry_after_completions: int):
        super().__init__(
            f"circuit open for query key {key!r} after {failures} consecutive "
            f"engine failures; retry after {retry_after_completions} more "
            f"query completions"
        )
        self.key = key
        self.failures = failures
        self.retry_after_completions = retry_after_completions


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class FileNotFoundInStoreError(StorageError):
    """The requested path does not exist in the block store."""

    def __init__(self, path: str):
        super().__init__(f"no such file in store: {path}")
        self.path = path


class SqlError(ReproError):
    """Base class for SQL front-end failures."""


class ParseError(SqlError):
    """The query text could not be parsed."""

    def __init__(self, message: str, position: int = -1, line: int = -1):
        location = f" at line {line}, position {position}" if line >= 0 else ""
        super().__init__(f"parse error{location}: {message}")
        self.position = position
        self.line = line


class AnalysisError(SqlError):
    """The query parsed but failed semantic analysis.

    Raised for unknown tables/columns, type mismatches, aggregates in
    WHERE clauses, and similar schema-level problems.
    """


class CatalogError(SqlError):
    """Catalog operation failed (duplicate table, missing table, ...)."""


class TypeMismatchError(AnalysisError):
    """An expression was applied to values of an unsupported type."""


class UnsupportedFeatureError(SqlError):
    """The query uses syntax the dialect does not implement."""


class ColumnarError(ReproError):
    """Base class for columnar-store failures."""


class CompressionError(ColumnarError):
    """A column failed to compress or decompress."""


class MLError(ReproError):
    """Base class for machine-learning failures (bad dimensions, k > n, ...)."""

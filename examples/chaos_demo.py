"""Chaos run: injected faults, identical answers.

The paper's robustness claim (Sections 2 and 7) is that fine-grained
deterministic tasks make mid-query failures and stragglers a performance
event, not a correctness event.  This demo proves it end to end: the same
benchmark queries run twice — once fault-free, once under a seeded
:class:`~repro.faults.FaultInjector` that fails ~10% of task attempts,
kills a worker permanently mid-run, slows one task per stage by 8x, and
corrupts a shuffle fetch — and the results must be byte-identical.

Run with::

    python examples/chaos_demo.py --seed 7

Exits non-zero on any result divergence (the CI chaos job relies on
this).  Pass ``--trace-out trace.json`` to record the chaos run — every
retry backoff, speculative copy, blacklisting, and lineage recovery —
as Chrome-trace JSON viewable at https://ui.perfetto.dev.
"""

import argparse
import sys

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.faults import FaultInjector


QUERIES = {
    "count": "SELECT COUNT(*) FROM readings",
    "aggregate": (
        "SELECT bucket, COUNT(*) AS n, SUM(value) AS total "
        "FROM readings GROUP BY bucket"
    ),
    "filter-group": (
        "SELECT day, COUNT(*) AS n FROM readings "
        "WHERE value > 40 GROUP BY day"
    ),
    "join": (
        "SELECT b.region, COUNT(*) AS n, SUM(r.value) AS total "
        "FROM readings r JOIN buckets b ON r.bucket = b.bucket "
        "GROUP BY b.region"
    ),
}


#: Per-worker memory budget for both runs: small enough that cache puts
#: and operator state cross it (exercising arbitration — cache eviction
#: first, then consumer spill-to-disk), large enough that every query
#: still answers correctly.  The verdict fails if no spill fired.
MEMORY_PER_WORKER_BYTES = 16 * 1024


def build_context(fault_injector=None) -> SharkContext:
    shark = SharkContext(
        num_workers=6,
        cores_per_worker=2,
        memory_per_worker_bytes=MEMORY_PER_WORKER_BYTES,
        fault_injector=fault_injector,
    )
    shark.create_table(
        "readings",
        Schema.of(("bucket", STRING), ("day", INT), ("value", DOUBLE)),
        cached=True,
    )
    shark.create_table(
        "buckets",
        Schema.of(("bucket", STRING), ("region", STRING)),
        cached=True,
    )
    readings = [
        (f"b{i % 8}", i % 30, float(i % 1000) / 10.0) for i in range(12_000)
    ]
    shark.load_rows("readings", readings, num_partitions=12)
    shark.load_rows(
        "buckets",
        [(f"b{i}", "east" if i % 2 == 0 else "west") for i in range(8)],
        num_partitions=2,
    )
    return shark


def run_queries(shark: SharkContext) -> dict[str, list]:
    return {
        name: sorted(shark.sql(text).rows)
        for name, text in QUERIES.items()
    }


def main(
    seed: int = 7,
    trace_out: str | None = None,
    event_log_out: str | None = None,
) -> int:
    print("=== fault-free run ===")
    baseline = run_queries(build_context())
    for name, rows in baseline.items():
        print(f"  {name}: {len(rows)} row(s)")

    print(f"\n=== chaos run (seed {seed}) ===")
    injector = FaultInjector(
        seed=seed,
        transient_failure_rate=0.10,
        kill_worker_id=2,
        kill_after_tasks=20,
        stragglers_per_stage=1,
        straggler_slowdown=8.0,
        corrupt_fetch_rate=0.05,
    )
    chaos = build_context(fault_injector=injector)
    if trace_out:
        chaos.enable_tracing()
    if event_log_out:
        chaos.enable_event_log(
            event_log_out, source="chaos_demo", seed=seed
        )
    chaos.engine.reset_profiles()
    chaotic = run_queries(chaos)

    retried = sum(p.retried_tasks for p in chaos.engine.profiles)
    speculative = sum(p.speculative_tasks for p in chaos.engine.profiles)
    recovered = sum(p.recovered_tasks for p in chaos.engine.profiles)
    blacklisted = sum(p.blacklisted_workers for p in chaos.engine.profiles)
    print(f"  {injector.describe()}")
    print(
        f"  engine response: {retried} retries, {speculative} speculative "
        f"copies, {recovered} lineage-recovered tasks, "
        f"{blacklisted} blacklistings"
    )
    live = len(chaos.engine.cluster.live_workers())
    print(f"  live workers after the kill: {live}/6")

    accountant = chaos.engine.memory
    evicted = int(chaos.metrics.value("blocks.evicted"))
    print(
        f"\n=== memory pressure (cap "
        f"{MEMORY_PER_WORKER_BYTES // 1024} KiB/worker) ==="
    )
    print(
        f"  pressure events: {accountant.pressure_events}, "
        f"evicted blocks: {evicted}"
    )
    print(
        f"  peak watermarks: storage "
        f"{int(accountant.peak_bytes('storage'))} B, execution "
        f"{int(accountant.peak_bytes('execution'))} B"
    )
    for owner, pool, peak in accountant.top_consumers(limit=3):
        print(f"  top consumer: {owner} [{pool}] peak {peak} B")
    print(
        f"  spills: {accountant.spill_events} event(s), "
        f"{accountant.spill_bytes} B written in "
        f"{accountant.spill_runs} run(s)"
    )
    for row in accountant.spill_rows():
        print(
            f"  spill owner {row['owner']}: {row['events']} event(s), "
            f"{row['bytes']} B in {row['runs']} run(s)"
        )

    print("\n=== verdict ===")
    divergent = [
        name for name in QUERIES if baseline[name] != chaotic[name]
    ]
    for name in QUERIES:
        status = "DIVERGED" if name in divergent else "identical"
        print(f"  {name}: {status}")
    # The 16 KiB cap exists to drive the arbitration path under chaos:
    # a run that never spilled proves nothing, and a run that leaked or
    # over-released execution memory is a bug even with right answers.
    if accountant.spill_events == 0:
        print("\nFAIL: the memory cap forced no spills")
        return 1
    if accountant.live_bytes("execution") != 0:
        print(
            f"\nFAIL: execution pool holds "
            f"{accountant.live_bytes('execution')} B after all queries"
        )
        return 1
    if accountant.clamped_release_bytes != 0:
        print(
            f"\nFAIL: {accountant.clamped_release_bytes} B of releases "
            f"were clamped (double-release bug)"
        )
        return 1

    if trace_out:
        chaos.trace.write_chrome_trace(
            trace_out, metadata={"demo": "chaos", "seed": seed}
        )
        print(
            f"\nwrote {len(chaos.trace.spans)} spans / "
            f"{len(chaos.trace.events)} events to {trace_out}"
        )
    if event_log_out:
        logged = chaos.engine.event_log.queries_logged
        chaos.close_event_log()
        print(
            f"wrote {logged} query records to {event_log_out} "
            f"(python -m repro.obs.history {event_log_out})"
        )

    if divergent:
        print(f"\nFAIL: results diverged under faults: {divergent}")
        return 1
    print("\nOK: every query returned results identical to the "
          "fault-free run")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write the chaos run's Chrome-trace JSON here",
    )
    parser.add_argument(
        "--event-log-out",
        default=None,
        help="write the chaos run's persistent event log here "
        "(inspect with python -m repro.obs.history)",
    )
    args = parser.parse_args()
    sys.exit(
        main(
            seed=args.seed,
            trace_out=args.trace_out,
            event_log_out=args.event_log_out,
        )
    )

"""Partial DAG Execution: run-time join selection with a selective UDF.

Reproduces the Section 6.3.2 scenario: lineitem JOIN supplier where a UDF
filters suppliers.  A static optimizer cannot estimate UDF selectivity and
would shuffle both large tables; PDE pre-runs the supplier side's map
stage, observes that the filtered table is tiny, and switches to a
broadcast (map) join — the paper measured a 3x improvement.

Run with::

    python examples/pde_join_demo.py
"""

from repro import SharkContext
from repro.datatypes import BOOLEAN
from repro.sql.planner import PlannerConfig
from repro.workloads import tpch


def build_context(enable_pde: bool) -> SharkContext:
    config = PlannerConfig(
        enable_pde=enable_pde,
        # Fresh data: no reliable static size estimates (the paper's
        # "fresh data that has not undergone a data loading process").
        enable_static_join_estimates=False,
    )
    shark = SharkContext(num_workers=4, cores_per_worker=2, config=config)
    lineitem = tpch.generate_lineitem(8000)
    supplier = tpch.generate_supplier(2000)
    shark.create_table("lineitem", lineitem.schema, cached=True)
    shark.load_rows("lineitem", lineitem.rows)
    shark.create_table("supplier", supplier.schema, cached=True)
    shark.load_rows("supplier", supplier.rows)
    # The UDF keeps ~1/10 of suppliers; the optimizer cannot know that.
    shark.register_udf(
        "interesting_address",
        lambda addr: addr.endswith("7"),
        return_type=BOOLEAN,
    )
    return shark


QUERY = """
SELECT l.L_ORDERKEY, s.S_NAME
FROM lineitem l JOIN supplier s ON l.L_SUPPKEY = s.S_SUPPKEY
WHERE interesting_address(s.S_ADDRESS)
"""


def main() -> None:
    # --- static-only planning: must assume both inputs are large.
    static = build_context(enable_pde=False)
    static_result = static.sql(QUERY)
    static_decision = static_result.report.join_decisions[0]
    print("static optimizer:")
    print(f"  strategy: {static_decision.strategy}")
    print(f"  reason:   {static_decision.reason}")
    print(f"  rows:     {len(static_result.rows)}")

    # --- PDE: pre-shuffle the (predicted-small) supplier side, observe
    # the filtered size, then re-plan.
    adaptive = build_context(enable_pde=True)
    adaptive_result = adaptive.sql(QUERY)
    decision = adaptive_result.report.join_decisions[0]
    print("\nadaptive optimizer (PDE):")
    print(f"  strategy: {decision.strategy}")
    print(f"  reason:   {decision.reason}")
    for note in adaptive_result.report.notes:
        print(f"  note:     {note}")
    print(f"  rows:     {len(adaptive_result.rows)}")

    same = sorted(static_result.rows) == sorted(adaptive_result.rows)
    print(f"\nresults identical across strategies: {same}")
    print(
        "\nThe paper's Figure 8 measures this switch (plus scheduling the "
        "likely-small side first) at ~3x faster than the static plan; run "
        "benchmarks/bench_fig08_pde_join.py to regenerate that comparison."
    )


if __name__ == "__main__":
    main()

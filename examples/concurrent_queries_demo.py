"""Concurrent queries under chaos: admission, deadlines, cancellation.

The paper positions Shark as a multi-user SQL system; this demo runs
several queries *concurrently* through the query lifecycle manager while
the fault injector fails task attempts and slows stragglers — and shows
the full lifecycle story in one run:

- one query is **cooperatively cancelled** mid-flight,
- one query **exceeds its deadline** (simulated seconds) and is killed,
- one submission is **rejected by admission control** with a typed
  error carrying a retry-after hint,
- every *surviving* query returns results byte-identical to a serial
  fault-free run.

After the drain, the demo checks the cleanup invariants: cancelled
queries' shuffle outputs are released (no orphaned pinned blocks) and
the tracer has no half-open spans.

Run with::

    python examples/concurrent_queries_demo.py --seed 11

Exits non-zero if any invariant fails (the CI chaos job relies on this).
"""

import argparse
import sys

from repro import LifecycleConfig, SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.errors import (
    AdmissionRejected,
    QueryCancelledError,
    QueryDeadlineExceeded,
)
from repro.faults import FaultInjector


SURVIVOR_QUERIES = {
    "aggregate": (
        "SELECT bucket, COUNT(*) AS n, SUM(value) AS total "
        "FROM readings GROUP BY bucket"
    ),
    "filter-group": (
        "SELECT day, COUNT(*) AS n FROM readings "
        "WHERE value > 40 GROUP BY day"
    ),
    "count": "SELECT COUNT(*) FROM readings",
}


def build_context(fault_injector=None) -> SharkContext:
    shark = SharkContext(
        num_workers=4, cores_per_worker=2, fault_injector=fault_injector
    )
    shark.create_table(
        "readings",
        Schema.of(("bucket", STRING), ("day", INT), ("value", DOUBLE)),
        cached=True,
    )
    shark.load_rows(
        "readings",
        [(f"b{i % 8}", i % 30, float(i % 1000) / 10.0) for i in range(8_000)],
        num_partitions=8,
    )
    return shark


def main(seed: int = 11) -> int:
    print("=== serial fault-free baseline ===")
    baseline_ctx = build_context()
    baseline = {
        name: sorted(baseline_ctx.sql(text).rows)
        for name, text in SURVIVOR_QUERIES.items()
    }
    for name, rows in baseline.items():
        print(f"  {name}: {len(rows)} row(s)")

    print(f"\n=== concurrent chaos run (seed {seed}) ===")
    injector = FaultInjector(
        seed=seed,
        transient_failure_rate=0.10,
        stragglers_per_stage=1,
        straggler_slowdown=6.0,
    )
    shark = build_context(fault_injector=injector)
    shark.enable_tracing()
    lifecycle = shark.enable_lifecycle(
        LifecycleConfig(max_concurrent=4, max_queued=1)
    )

    survivors = {
        name: shark.submit_sql(text, name=name)
        for name, text in SURVIVOR_QUERIES.items()
    }
    cancelled = shark.submit_sql(
        SURVIVOR_QUERIES["aggregate"], name="cancelled", key="cancelled"
    ).cancel_after_tasks(4)
    deadlined = shark.submit_sql(
        SURVIVOR_QUERIES["filter-group"], name="deadlined", deadline_s=1e-9
    )
    rejected = None
    try:
        shark.submit_sql(SURVIVOR_QUERIES["count"], name="rejected")
    except AdmissionRejected as error:
        rejected = error
        print(
            f"  admission control: {error.name!r} rejected "
            f"({error.running} running, {error.queued} queued), "
            f"retry after ~{error.retry_after_s:.2f}s"
        )

    lifecycle.drain()
    print(f"  {injector.describe()}")
    for handle in lifecycle.handles:
        print(f"  {handle.describe()}")
    print(f"  {lifecycle.describe()}")

    print("\n=== verdict ===")
    failures = []
    if rejected is None:
        failures.append("expected an AdmissionRejected submission")
    if not (
        cancelled.state == "cancelled"
        and isinstance(cancelled.error, QueryCancelledError)
    ):
        failures.append(f"cancelled query ended as {cancelled.state!r}")
    if not (
        deadlined.state == "deadline"
        and isinstance(deadlined.error, QueryDeadlineExceeded)
    ):
        failures.append(f"deadlined query ended as {deadlined.state!r}")
    divergent = [
        name
        for name, handle in survivors.items()
        if handle.state != "done"
        or sorted(handle.result.rows) != baseline[name]
    ]
    failures.extend(f"survivor {name} diverged" for name in divergent)
    for name in survivors:
        status = "DIVERGED" if name in divergent else "identical to serial"
        print(f"  {name}: {status}")
    print(f"  cancelled: {cancelled.state}, deadlined: {deadlined.state}")

    open_spans = [s.name for s in shark.trace.spans if s.end is None]
    if open_spans:
        failures.append(f"half-open tracer spans: {open_spans}")
    registered = shark.engine.shuffle_manager.registered_block_ids()
    pinned = shark.engine.cluster.pinned_block_ids()
    orphaned = pinned - registered
    if orphaned:
        failures.append(f"orphaned pinned shuffle blocks: {sorted(orphaned)}")
    print(
        f"  cleanup: {len(open_spans)} open spans, "
        f"{len(orphaned)} orphaned pinned blocks"
    )

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "\nOK: survivors identical to serial, cancellation/deadline/"
        "admission verdicts typed, cleanup invariants hold"
    )
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()
    sys.exit(main(seed=args.seed))

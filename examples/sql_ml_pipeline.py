"""The paper's Listing 1: SQL -> feature extraction -> logistic regression.

A single lineage graph covers the whole pipeline: the SQL scan, the
``map_rows`` feature extraction, and every training iteration — so a
worker failure mid-training recovers without restarting anything.

Run with::

    python examples/sql_ml_pipeline.py
"""

import numpy as np

from repro import SharkContext
from repro.ml import KMeans, LabeledPoint, LogisticRegression
from repro.workloads import mlgen


def main() -> None:
    shark = SharkContext(num_workers=4, cores_per_worker=2)

    # Step 0: land the synthetic user dataset in the warehouse.
    data = mlgen.generate_points(num_rows=3000, separation=2.5)
    shark.create_table("users", data.schema, cached=True)
    shark.load_rows("users", data.rows)
    print(f"users table: {shark.table_entry('users').row_count} rows cached")

    # Step 1: select the data of interest with SQL (paper: sql2rdd).
    users = shark.sql2rdd(
        "SELECT label, f0, f1, f2, f3, f4, f5, f6, f7, f8, f9 "
        "FROM users WHERE f0 IS NOT NULL"
    )

    # Step 2: extract features with mapRows.
    def extract(row) -> LabeledPoint:
        features = np.array(
            [row.get_double(f"f{i}") for i in range(10)], dtype=float
        )
        return LabeledPoint(float(row.get_int("label")), features)

    features = users.map_rows(extract).cache()
    print(f"feature matrix: {features.count()} points x 10 dims (cached)")

    # Step 3: iterate.  Each iteration is one map+reduce over the cached
    # RDD — the access pattern that makes in-memory data 100x faster than
    # re-reading HDFS every iteration (Figure 11).
    trainer = LogisticRegression(
        iterations=10, learning_rate=0.05, track_loss=True
    )
    model = trainer.fit(features)
    print("logistic regression loss per iteration:")
    for i, loss in enumerate(model.loss_history):
        print(f"  iter {i}: {loss:.4f}")
    local = features.collect()
    print(f"training accuracy: {model.accuracy(local):.3f}")

    # Kill a worker mid-pipeline: lineage recovers the lost partitions and
    # a re-run converges to the identical model (determinism).
    shark.kill_worker(1)
    recovered = LogisticRegression(
        iterations=10, learning_rate=0.05
    ).fit(features)
    print(
        "after killing worker 1, retrained weights identical:",
        bool(np.allclose(model.weights, recovered.weights)),
    )

    # The same cached features feed a different algorithm with no export.
    clusters = KMeans(k=2, iterations=8).fit(
        features.map(lambda p: p.features[:2])
    )
    print("k-means centers (first 2 dims):")
    print(np.round(clusters.centers, 2))


if __name__ == "__main__":
    main()

"""Quickstart: create tables, load data, run SQL, inspect the optimizer.

Run with::

    python examples/quickstart.py
"""

from repro import SharkContext


def main() -> None:
    # A Shark "cluster": 4 virtual workers, 2 cores each.
    shark = SharkContext(num_workers=4, cores_per_worker=2)

    # Tables are created with HiveQL-style DDL.  TBLPROPERTIES
    # ('shark.cache'='true') pins a table in the columnar memory store.
    shark.sql(
        "CREATE TABLE logs (url STRING, status INT, latency_ms INT, "
        "country STRING) TBLPROPERTIES ('shark.cache'='true')"
    )

    rows = [
        (f"/page/{i % 50}", 200 if i % 7 else 500, 20 + (i * 13) % 300,
         ["US", "DE", "BR", "JP"][i % 4])
        for i in range(10_000)
    ]
    shark.load_rows("logs", rows)
    entry = shark.table_entry("logs")
    print(
        f"loaded {entry.row_count} rows into the memstore "
        f"({entry.size_bytes} compressed bytes across "
        f"{len(entry.partition_bytes)} partitions)"
    )

    # Plain SQL with aggregation, expressions and ordering.
    result = shark.sql(
        """
        SELECT country,
               COUNT(*) AS requests,
               SUM(CASE WHEN status = 500 THEN 1 ELSE 0 END) AS errors,
               AVG(latency_ms) AS avg_latency
        FROM logs
        GROUP BY country
        ORDER BY requests DESC
        """
    )
    print("\ntraffic by country:")
    for row in result.to_dicts():
        print(
            f"  {row['country']}: {row['requests']} requests, "
            f"{row['errors']} errors, {row['avg_latency']:.1f} ms avg"
        )

    # EXPLAIN shows the optimized logical plan (predicate pushdown, column
    # pruning into the scan, etc.).
    print("\nplan for an error drill-down:")
    print(
        shark.explain(
            "SELECT url, COUNT(*) FROM logs WHERE status = 500 "
            "GROUP BY url ORDER BY 2 DESC LIMIT 5"
        )
    )

    # UDFs are first-class: register a Python function and call it in SQL.
    shark.register_udf("is_slow", lambda ms: ms > 250)
    slow = shark.sql("SELECT COUNT(*) FROM logs WHERE is_slow(latency_ms)")
    print(f"slow requests: {slow.scalar()}")

    # Every query reports the run-time decisions the planner made.
    print("\nplanner notes:", shark.last_report.notes or "none needed")


if __name__ == "__main__":
    main()

"""Mid-query fault tolerance: kill workers, watch lineage recover.

Reproduces the Section 6.3.3 behaviour in miniature: a cached table loses
a worker mid-query; only the lost partitions recompute (in parallel on the
survivors) and the query finishes with correct results — no restart.

Run with::

    python examples/fault_tolerance_demo.py

Pass ``--trace-out trace.json`` to record the whole run — worker kills,
lineage re-execution, every task span — as Chrome-trace JSON viewable at
https://ui.perfetto.dev.
"""

import argparse

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema


QUERY = (
    "SELECT bucket, COUNT(*) AS n, SUM(value) AS total "
    "FROM readings GROUP BY bucket"
)


def main(trace_out: str | None = None) -> None:
    shark = SharkContext(num_workers=6, cores_per_worker=2)
    if trace_out:
        shark.enable_tracing()
    shark.create_table(
        "readings",
        Schema.of(("bucket", STRING), ("day", INT), ("value", DOUBLE)),
        cached=True,
    )
    rows = [
        (f"b{i % 8}", i % 30, float(i % 1000) / 10.0) for i in range(12_000)
    ]
    shark.load_rows("readings", rows, num_partitions=12)
    print("cached 12,000 rows across 12 partitions on 6 workers")

    baseline = sorted(shark.sql(QUERY).rows)
    print("\nbaseline answer:")
    for row in baseline[:4]:
        print(f"  {row}")

    # --- failure between queries: cached partitions rebuilt from lineage.
    shark.kill_worker(0)
    after_loss = sorted(shark.sql(QUERY).rows)
    print(
        "\nkilled worker 0; re-query matches baseline:",
        after_loss == baseline,
    )

    # --- failure *mid-query*: inject a kill after a few tasks complete.
    base_tasks = shark.engine.cluster.total_tasks_completed
    shark.inject_failure(worker_id=1, after_tasks=base_tasks + 5)
    shark.engine.reset_profiles()
    mid_failure = sorted(shark.sql(QUERY).rows)
    recovered_tasks = sum(
        profile.recovered_tasks for profile in shark.engine.profiles
    )
    print(
        f"killed worker 1 mid-query; answer still correct: "
        f"{mid_failure == baseline} "
        f"(recovered {recovered_tasks} tasks without restarting the query)"
    )

    # --- recovery parallelism: survivors share the rebuild.
    before = {
        w.worker_id: w.tasks_run
        for w in shark.engine.cluster.live_workers()
    }
    shark.kill_worker(2)
    shark.sql(QUERY)
    participants = [
        w.worker_id
        for w in shark.engine.cluster.live_workers()
        if w.tasks_run > before.get(w.worker_id, 0)
    ]
    print(
        f"killed worker 2; {len(participants)} surviving workers "
        f"participated in recovery: {participants}"
    )

    # --- elasticity (Section 7.2): a new node joins and takes work.
    new_worker = shark.engine.add_worker(cores=2)
    shark.engine.parallelize(range(200), 20).count()
    print(
        f"added worker {new_worker.worker_id}; it has now run "
        f"{new_worker.tasks_run} tasks"
    )

    final = sorted(shark.sql(QUERY).rows)
    print("\nfinal answer still matches baseline:", final == baseline)

    if trace_out:
        trace = shark.trace
        shark.trace.write_chrome_trace(
            trace_out, metadata={"demo": "fault_tolerance"}
        )
        print(
            f"\nwrote {len(trace.spans)} spans / {len(trace.events)} "
            f"events to {trace_out} (open in https://ui.perfetto.dev)"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write the run's Chrome-trace JSON here",
    )
    main(trace_out=parser.parse_args().trace_out)

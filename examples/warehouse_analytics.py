"""Real-warehouse analytics: map pruning on naturally clustered logs.

Reproduces the Section 6.4 scenario: a wide (103-column) video-session
fact table whose rows arrive clustered by day and country.  Per-partition
statistics collected at load time let Shark skip partitions whose ranges
cannot match a query's predicates — the paper measured a ~30x reduction in
data scanned on this workload.

Run with::

    python examples/warehouse_analytics.py
"""

from repro import SharkContext
from repro.workloads import warehouse


def main() -> None:
    shark = SharkContext(num_workers=4, cores_per_worker=2)

    data = warehouse.generate_sessions(num_days=30, rows_per_day=80)
    shark.create_table("sessions", data.schema, cached=True)
    # One load partition per day preserves the natural clustering, so each
    # partition's day-range is a single value -- ideal for pruning.
    shark.load_rows("sessions", data.rows, num_partitions=30)
    print(
        f"sessions: {len(data.rows)} rows, {len(data.schema)} columns, "
        f"30 day-partitions cached"
    )

    queries = warehouse.representative_queries(customer="cust3", day=12)
    descriptions = {
        "q1": "summary stats in 12 dims, one customer, one day",
        "q2": "sessions + distinct counts by country, 8 filter predicates",
        "q3": "sessions + distinct users for all but 2 countries",
        "q4": "summary stats in 7 dims, top groups first",
    }

    total_scanned = 0
    total_partitions = 0
    for name in ("q1", "q2", "q3", "q4"):
        result = shark.sql(queries[name])
        report = result.report
        scanned = report.scanned_partitions
        pruned = report.pruned_partitions
        considered = scanned + pruned
        total_scanned += scanned if considered else 30
        total_partitions += considered if considered else 30
        print(
            f"\n{name} ({descriptions[name]}): {len(result.rows)} rows, "
            f"scanned {scanned}/{considered or 30} partitions"
        )
        for row in result.rows[:3]:
            print(f"  {row}")

    factor = total_partitions / max(total_scanned, 1)
    print(
        f"\nmap pruning reduced data scanned by ~{factor:.1f}x across the "
        f"four queries (paper: ~30x on the production trace)"
    )
    print(
        f"(trace context: {warehouse.TRACE_PRUNABLE_QUERIES} of "
        f"{warehouse.TRACE_TOTAL_QUERIES} production queries carried "
        f"prunable predicates)"
    )


if __name__ == "__main__":
    main()

"""CacheTracker and TaskContext internals."""

from repro.engine.metrics import TaskMetrics
from repro.engine.task import CacheTracker, TaskContext


class TestCacheTracker:
    def test_put_get_roundtrip(self, ctx):
        tracker = ctx.cache_tracker
        tracker.put(rdd_id=7, partition=0, worker_id=1, value=[1, 2, 3])
        worker_id, value = tracker.get(7, 0)
        assert worker_id == 1
        assert value == [1, 2, 3]
        assert tracker.location(7, 0) == 1

    def test_get_missing(self, ctx):
        assert ctx.cache_tracker.get(99, 0) is None
        assert ctx.cache_tracker.location(99, 0) is None

    def test_dead_worker_entry_dropped_lazily(self, ctx):
        tracker = ctx.cache_tracker
        tracker.put(5, 0, worker_id=2, value="v")
        # Simulate losing only the block (worker restarted empty).
        ctx.cluster.worker(2).blocks.clear()
        assert tracker.get(5, 0) is None
        assert tracker.location(5, 0) is None  # entry purged on miss

    def test_kill_callback_purges_entries(self, ctx):
        tracker = ctx.cache_tracker
        tracker.put(5, 0, worker_id=3, value="v")
        tracker.put(5, 1, worker_id=0, value="w")
        ctx.cluster.kill_worker(3)
        assert tracker.cached_partitions(5) == {1: 0}

    def test_unpersist_clears_blocks(self, ctx):
        tracker = ctx.cache_tracker
        tracker.put(8, 0, worker_id=1, value=[0] * 100)
        assert tracker.cached_bytes(8) > 0
        tracker.unpersist(8)
        assert tracker.cached_partitions(8) == {}
        assert tracker.cached_bytes(8) == 0


class TestTaskContext:
    def _context(self, ctx, worker_id=0):
        metrics = TaskMetrics(stage_id=1, partition=0, worker_id=worker_id)
        return (
            TaskContext(
                stage_id=1,
                partition=0,
                worker=ctx.cluster.worker(worker_id),
                shuffle_manager=ctx.shuffle_manager,
                cache_tracker=ctx.cache_tracker,
                metrics=metrics,
            ),
            metrics,
        )

    def test_write_then_read_cached(self, ctx):
        task_ctx, metrics = self._context(ctx)
        task_ctx.write_cached(3, 0, [1, 2, 3])
        value = task_ctx.read_cached(3, 0)
        assert value == [1, 2, 3]
        assert metrics.source == "memory"
        assert metrics.records_in == 3
        assert metrics.bytes_in > 0

    def test_read_cached_miss_returns_none(self, ctx):
        task_ctx, metrics = self._context(ctx)
        assert task_ctx.read_cached(44, 0) is None
        assert metrics.records_in == 0

    def test_metrics_cost_vector_conversion(self):
        metrics = TaskMetrics(
            records_in=10, bytes_in=100, shuffle_write_bytes=50,
            source="disk",
        )
        vector = metrics.to_cost_vector()
        assert vector.records_in == 10.0
        assert vector.shuffle_write_bytes == 50.0
        assert vector.source == "disk"

"""RDD transformations and actions against list semantics."""

import pytest

from repro.errors import TaskError


class TestCreation:
    def test_parallelize_preserves_order(self, ctx):
        data = list(range(100))
        assert ctx.parallelize(data, 7).collect() == data

    def test_parallelize_fewer_items_than_partitions(self, ctx):
        rdd = ctx.parallelize([1, 2], 8)
        assert rdd.num_partitions <= 2
        assert rdd.collect() == [1, 2]

    def test_empty_rdd(self, ctx):
        assert ctx.empty_rdd().collect() == []
        assert ctx.empty_rdd().count() == 0


class TestBasicTransformations:
    def test_map(self, ctx):
        assert ctx.parallelize([1, 2, 3], 2).map(lambda x: x * 2).collect() == [
            2, 4, 6,
        ]

    def test_filter(self, ctx):
        result = ctx.parallelize(range(10), 3).filter(lambda x: x % 2 == 0)
        assert result.collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self, ctx):
        result = ctx.parallelize([1, 2], 2).flat_map(lambda x: [x] * x)
        assert result.collect() == [1, 2, 2]

    def test_map_partitions(self, ctx):
        result = ctx.parallelize(range(10), 5).map_partitions(
            lambda part: [sum(part)]
        )
        assert sum(result.collect()) == sum(range(10))
        assert result.num_partitions == 5

    def test_map_partitions_with_index(self, ctx):
        rdd = ctx.parallelize(range(8), 4)
        result = rdd.map_partitions_with_index(
            lambda split, part: [(split, len(part))]
        ).collect()
        assert [count for __, count in result] == [2, 2, 2, 2]
        assert [split for split, __ in result] == [0, 1, 2, 3]

    def test_glom(self, ctx):
        blocks = ctx.parallelize(range(6), 3).glom().collect()
        assert blocks == [[0, 1], [2, 3], [4, 5]]

    def test_union(self, ctx):
        left = ctx.parallelize([1, 2], 2)
        right = ctx.parallelize([3, 4], 2)
        union = left.union(right)
        assert union.collect() == [1, 2, 3, 4]
        assert union.num_partitions == 4

    def test_distinct(self, ctx):
        result = ctx.parallelize([1, 2, 2, 3, 3, 3], 3).distinct()
        assert sorted(result.collect()) == [1, 2, 3]

    def test_sample_deterministic(self, ctx):
        rdd = ctx.parallelize(range(1000), 8)
        first = rdd.sample(0.3, seed=5).collect()
        second = rdd.sample(0.3, seed=5).collect()
        assert first == second
        assert 150 < len(first) < 450

    def test_sample_bounds_checked(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 1).sample(1.5)

    def test_key_by(self, ctx):
        result = ctx.parallelize(["aa", "b"], 2).key_by(len).collect()
        assert result == [(2, "aa"), (1, "b")]

    def test_zip_with_index(self, ctx):
        result = ctx.parallelize(["a", "b", "c", "d"], 3).zip_with_index()
        assert result.collect() == [
            ("a", 0), ("b", 1), ("c", 2), ("d", 3),
        ]

    def test_coalesce_reduces_partitions(self, ctx):
        rdd = ctx.parallelize(range(12), 6).coalesce(2)
        assert rdd.num_partitions == 2
        assert sorted(rdd.collect()) == list(range(12))

    def test_coalesce_noop_when_bigger(self, ctx):
        rdd = ctx.parallelize(range(4), 2)
        assert rdd.coalesce(8) is rdd

    def test_coalesce_grouped_explicit(self, ctx):
        rdd = ctx.parallelize(range(8), 4)
        grouped = rdd.coalesce_grouped([[0, 3], [1, 2]])
        assert grouped.num_partitions == 2
        assert sorted(grouped.collect()) == list(range(8))

    def test_repartition_spreads_evenly(self, ctx):
        rdd = ctx.parallelize(range(100), 2).repartition(8)
        sizes = [len(b) for b in rdd.glom().collect()]
        assert sum(sizes) == 100
        assert len(sizes) == 8

    def test_prune_partitions(self, ctx):
        from repro.engine.rdd import PrunedRDD

        rdd = ctx.parallelize(range(10), 5)
        pruned = PrunedRDD(rdd, [1, 3])
        assert pruned.num_partitions == 2
        assert pruned.collect() == [2, 3, 6, 7]

    def test_prune_out_of_range_rejected(self, ctx):
        from repro.engine.rdd import PrunedRDD

        rdd = ctx.parallelize(range(10), 5)
        with pytest.raises(IndexError):
            PrunedRDD(rdd, [7])


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(57), 8).count() == 57

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(1, 11), 4).reduce(
            lambda a, b: a + b
        ) == 55

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.empty_rdd().reduce(lambda a, b: a + b)

    def test_fold(self, ctx):
        assert ctx.parallelize([1, 2, 3], 3).fold(0, lambda a, b: a + b) == 6

    def test_aggregate(self, ctx):
        total, count = ctx.parallelize(range(10), 4).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert (total, count) == (45, 10)

    def test_take_stops_early(self, ctx):
        assert ctx.parallelize(range(100), 10).take(3) == [0, 1, 2]
        assert ctx.parallelize(range(3), 3).take(10) == [0, 1, 2]
        assert ctx.parallelize(range(3), 3).take(0) == []

    def test_first(self, ctx):
        assert ctx.parallelize([9, 8], 2).first() == 9
        with pytest.raises(ValueError):
            ctx.empty_rdd().first()

    def test_top(self, ctx):
        assert ctx.parallelize([5, 1, 9, 3], 2).top(2) == [9, 5]

    def test_top_with_key(self, ctx):
        result = ctx.parallelize(["aaa", "b", "cc"], 2).top(2, key=len)
        assert result == ["aaa", "cc"]

    def test_sum_min_max_mean(self, ctx):
        rdd = ctx.parallelize([4.0, 1.0, 7.0], 3)
        assert rdd.sum() == 12.0
        assert rdd.min() == 1.0
        assert rdd.max() == 7.0
        assert rdd.mean() == 4.0

    def test_mean_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.empty_rdd().mean()

    def test_count_by_value(self, ctx):
        counts = ctx.parallelize(["a", "b", "a"], 2).count_by_value()
        assert counts == {"a": 2, "b": 1}

    def test_foreach_partition(self, ctx):
        seen = []
        ctx.parallelize(range(6), 3).foreach_partition(
            lambda part: seen.append(len(part))
        )
        assert sorted(seen) == [2, 2, 2]

    def test_user_exception_wrapped_as_task_error(self, ctx):
        rdd = ctx.parallelize([1, 0], 1).map(lambda x: 1 // x)
        with pytest.raises(TaskError):
            rdd.collect()


class TestSorting:
    def test_sort_by_ascending(self, ctx):
        data = [5, 3, 9, 1, 7, 2]
        assert ctx.parallelize(data, 3).sort_by(lambda x: x).collect() == (
            sorted(data)
        )

    def test_sort_by_descending(self, ctx):
        data = [5, 3, 9, 1]
        result = ctx.parallelize(data, 2).sort_by(
            lambda x: x, ascending=False
        ).collect()
        assert result == sorted(data, reverse=True)

    def test_sort_by_key_function(self, ctx):
        data = ["ccc", "a", "bb"]
        result = ctx.parallelize(data, 2).sort_by(len).collect()
        assert result == ["a", "bb", "ccc"]

    def test_sort_empty(self, ctx):
        assert ctx.empty_rdd().sort_by(lambda x: x).collect() == []

    def test_sort_large_spread_over_partitions(self, ctx):
        import random

        rng = random.Random(3)
        data = [rng.randint(0, 10**6) for __ in range(2000)]
        result = ctx.parallelize(data, 16).sort_by(lambda x: x, num_partitions=8)
        assert result.collect() == sorted(data)


class TestCaching:
    def test_cache_roundtrip(self, ctx):
        calls = []

        def trace(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(range(10), 2).map(trace).cache()
        assert rdd.collect() == list(range(10))
        first_calls = len(calls)
        assert rdd.collect() == list(range(10))
        assert len(calls) == first_calls  # second read from cache

    def test_unpersist_recomputes(self, ctx):
        calls = []
        rdd = ctx.parallelize(range(5), 1).map(
            lambda x: calls.append(x) or x
        ).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 10

    def test_cached_bytes_tracked(self, ctx):
        rdd = ctx.parallelize(range(1000), 4).cache()
        rdd.collect()
        assert ctx.cache_tracker.cached_bytes(rdd.id) > 0
        assert len(ctx.cache_tracker.cached_partitions(rdd.id)) == 4

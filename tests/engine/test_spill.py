"""Memory arbitration and the spillable execution consumers.

Covers the enforcement path PR'd on top of the observe-only accountant:

* ``MemoryAccountant.reserve`` over a cap arbitrates — unpinned storage
  blocks are evicted LRU-first, then registered execution consumers are
  asked to spill — and the reservation always proceeds;
* :class:`~repro.engine.spill.SpillableGroups` spills whole buckets,
  replays raw rows in arrival order, and returns results identical to
  the never-spilled path;
* :class:`~repro.engine.spill.ExternalSorter` run generation + k-way
  merge equals one stable sort;
* spill traffic is attributed (``memory.spill.*`` counters, per-owner
  rows) and ``BlockStore.evict_up_to`` never touches pinned blocks;
* the corrupted-fetch regression: the shuffle manager reports a map
  partition that actually exists (satellite bugfix).
"""

import zlib

import pytest

from repro.cluster.worker import BlockStore
from repro.engine.dependencies import ShuffleDependency
from repro.engine.memory import (
    EXECUTION,
    STORAGE,
    MemoryAccountant,
)
from repro.engine.partitioner import HashPartitioner
from repro.engine.spill import (
    NUM_SPILL_BUCKETS,
    ExternalSorter,
    SpillableGroups,
    spill_bucket,
)
from repro.errors import FetchFailedError
from repro.faults.injector import FaultInjector
from repro.sql.functions import CountAggregate, SumAggregate


class _Tally:
    """Minimal consumer: releases what it is asked, records the call."""

    def __init__(self, accountant, worker_id, owner="tally", held=0):
        self.accountant = accountant
        self.worker_id = worker_id
        self.owner = owner
        self.held = held
        self.asked: list[int] = []

    def spill(self, nbytes):
        self.asked.append(nbytes)
        released = min(nbytes, self.held)
        if released:
            self.accountant.release(
                self.worker_id, EXECUTION, self.owner, released
            )
            self.held -= released
        return (released, released, 1 if released else 0)


class TestArbitration:
    def test_eviction_runs_before_consumer_spill(self):
        accountant = MemoryAccountant(capacity_bytes=1_000)
        store = BlockStore(accountant=accountant, worker_id=0)
        store.put("rdd_1_0", "x", size_bytes=600)
        consumer = _Tally(accountant, 0, held=0)
        accountant.register_spill_consumer(0, consumer)
        # 500B over a 1000B cap with 600B evictable storage: eviction
        # alone covers the shortfall, the consumer is never asked.
        accountant.reserve(0, EXECUTION, "op", 900)
        assert "rdd_1_0" not in store
        assert consumer.asked == []
        assert accountant.live_bytes(STORAGE) == 0
        assert accountant.live_bytes(EXECUTION) == 900

    def test_consumer_spills_when_eviction_insufficient(self):
        accountant = MemoryAccountant(capacity_bytes=1_000)
        store = BlockStore(accountant=accountant, worker_id=0)
        store.put("shuffle_0_0", "x", size_bytes=400, pinned=True)
        accountant.reserve(0, EXECUTION, "state", 500)
        consumer = _Tally(accountant, 0, owner="state", held=500)
        accountant.register_spill_consumer(0, consumer)
        accountant.reserve(0, EXECUTION, "op", 400)
        # Pinned block survives; the consumer covered the shortfall.
        assert "shuffle_0_0" in store
        assert consumer.asked and consumer.asked[0] == 300
        assert accountant.spill_events == 1
        assert accountant.spilled_by_owner["state"]["events"] == 1

    def test_reservation_proceeds_even_when_uncoverable(self):
        accountant = MemoryAccountant(capacity_bytes=100)
        charged = accountant.reserve(0, EXECUTION, "op", 10_000)
        assert charged == 10_000
        assert accountant.live_bytes(EXECUTION) == 10_000
        assert accountant.pressure_events == 1

    def test_deregistered_consumer_not_asked(self):
        accountant = MemoryAccountant(capacity_bytes=100)
        consumer = _Tally(accountant, 0, held=50)
        accountant.register_spill_consumer(0, consumer)
        accountant.deregister_spill_consumer(0, consumer)
        accountant.reserve(0, EXECUTION, "op", 500)
        assert consumer.asked == []

    def test_evict_up_to_skips_pinned_blocks(self):
        store = BlockStore()
        store.put("shuffle_0_0", "x", size_bytes=500, pinned=True)
        store.put("rdd_1_0", "y", size_bytes=300)
        store.put("rdd_1_1", "z", size_bytes=200)
        freed = store.evict_up_to(10_000)
        assert freed == 500
        assert "shuffle_0_0" in store
        assert "rdd_1_0" not in store and "rdd_1_1" not in store

    def test_evict_up_to_stops_at_target(self):
        store = BlockStore()
        store.put("rdd_1_0", "a", size_bytes=300)
        store.put("rdd_1_1", "b", size_bytes=300)
        # LRU-first: the oldest insertion alone covers the request.
        assert store.evict_up_to(100) == 300
        assert "rdd_1_0" not in store and "rdd_1_1" in store


def _groups_fixture():
    return SpillableGroups(
        [CountAggregate(count_star=True), SumAggregate()],
        "hash_aggregate",
    )


def _feed(state, rows):
    for key, value in rows:
        state.update_row((key,), [None, value])


def _rows(n):
    # Keys spread over every spill bucket, interleaved arrival order.
    return [(f"k{i % 20}", float(i)) for i in range(n)]


class TestSpillableGroups:
    def test_bucket_is_deterministic_crc32(self):
        key = ("abc", 7)
        expected = zlib.crc32(repr(key).encode("utf-8")) % NUM_SPILL_BUCKETS
        assert spill_bucket(key) == expected

    def test_no_spill_fast_path(self):
        state = _groups_fixture()
        _feed(state, _rows(100))
        result = state.finish_groups()
        assert len(result) == 20
        # First-seen order: k0, k1, ... exactly as the dict would order.
        assert [key for (key,), __ in result] == [f"k{i}" for i in range(20)]

    @pytest.mark.parametrize("spill_at", [0, 37, 99])
    def test_spilled_equals_unspilled(self, spill_at):
        baseline = _groups_fixture()
        _feed(baseline, _rows(200))
        expected = baseline.finish_groups()

        state = _groups_fixture()
        rows = _rows(200)
        _feed(state, rows[:spill_at])
        state.spill(10 ** 9)  # shed everything buffered so far
        _feed(state, rows[spill_at:])
        got = state.finish_groups()
        assert repr(got) == repr(expected)

    def test_multiple_spills_across_buckets(self):
        baseline = _groups_fixture()
        _feed(baseline, _rows(400))
        expected = baseline.finish_groups()

        state = _groups_fixture()
        rows = _rows(400)
        for start in range(0, 400, 80):
            _feed(state, rows[start:start + 80])
            state.spill(1)  # one bucket per call
        assert state.spilled
        got = state.finish_groups()
        assert repr(got) == repr(expected)

    def test_spilled_bucket_routes_rows_raw(self):
        state = _groups_fixture()
        _feed(state, _rows(40))
        state.spill(10 ** 9)
        assert not state.groups
        # New rows for spilled keys must not resurrect live groups.
        _feed(state, _rows(40))
        spilled_keys = {
            key for key in (("k%d" % i,) for i in range(20))
            if spill_bucket(key) in state._spilled
        }
        assert spilled_keys
        assert all(key not in state.groups for key in spilled_keys)

    def test_spill_returns_zero_when_empty(self):
        state = _groups_fixture()
        assert state.spill(1000) == (0, 0, 0)


class TestExternalSorter:
    @pytest.mark.parametrize("reverse", [False, True])
    def test_merge_equals_single_stable_sort(self, reverse):
        items = [(i % 7, f"item{i}") for i in range(500)]
        sorter = ExternalSorter(key=lambda p: p[0], reverse=reverse)
        for i, item in enumerate(items):
            sorter.add(item)
            if i in (99, 299):
                sorter.spill(10 ** 9)
        expected = sorted(items, key=lambda p: p[0], reverse=reverse)
        # Stable: equal keys keep arrival order even across run merges.
        assert sorter.finish() == expected

    def test_no_spill_is_plain_sort(self):
        sorter = ExternalSorter()
        for value in [5, 3, 9, 1]:
            sorter.add(value)
        assert sorter.finish() == [1, 3, 5, 9]

    def test_spill_empty_buffer_is_noop(self):
        sorter = ExternalSorter()
        assert sorter.spill(100) == (0, 0, 0)


class TestSpillAccounting:
    def test_note_spill_write_attributes_owner(self):
        accountant = MemoryAccountant()
        accountant.note_spill_write("sort", 1_000, runs=2)
        accountant.note_spill_write("sort", 500, runs=1)
        assert accountant.spill_bytes == 1_500
        assert accountant.spill_runs == 3
        rows = accountant.spill_rows()
        assert rows == [
            {"owner": "sort", "events": 0, "bytes": 1_500, "runs": 3}
        ]

    def test_spill_rows_since_reports_deltas_only(self):
        accountant = MemoryAccountant()
        accountant.note_spill_write("sort", 100, runs=1)
        snapshot = accountant.spill_snapshot()
        accountant.note_spill_write("hash_aggregate", 50, runs=1)
        rows = accountant.spill_rows_since(snapshot)
        assert [row["owner"] for row in rows] == ["hash_aggregate"]
        assert rows[0]["bytes"] == 50
        assert accountant.spill_rows_since(accountant.spill_snapshot()) == []

    def test_describe_includes_spills(self):
        accountant = MemoryAccountant(capacity_bytes=100)
        accountant.reserve(0, EXECUTION, "state", 80)
        consumer = _Tally(accountant, 0, owner="state", held=80)
        accountant.register_spill_consumer(0, consumer)
        accountant.reserve(0, EXECUTION, "op", 80)
        described = accountant.describe()
        assert "spills:" in described
        assert "state" in described


class TestCorruptFetchRegression:
    """The corrupted-fetch handler must name a real map partition."""

    def _registered(self, ctx, num_maps=2):
        parent = ctx.parallelize([(i, 1) for i in range(8)], num_maps)
        dep = ShuffleDependency(parent, HashPartitioner(2))
        manager = ctx.shuffle_manager
        manager.register(dep, num_maps=num_maps)
        manager._fault_injector = FaultInjector(
            seed=1, corrupt_fetch_rate=1.0
        )
        return manager, dep

    def test_victim_is_a_present_block(self, ctx):
        manager, dep = self._registered(ctx)
        manager.write_map_output(dep, 0, 0, [(0, "a"), (1, "b")])
        manager.write_map_output(dep, 1, 1, [(2, "c"), (3, "d")])
        with pytest.raises(FetchFailedError) as info:
            manager.fetch(dep.shuffle_id, 0)
        # The dropped victim really was registered and present: its
        # owner is a real worker, and the block is gone afterwards.
        assert info.value.map_partition == 0
        assert info.value.worker_id == 0
        assert manager.missing_maps(dep.shuffle_id) == [0]

    def test_stale_victim_skipped_for_present_one(self, ctx):
        manager, dep = self._registered(ctx)
        manager.write_map_output(dep, 0, 0, [(0, "a")])
        manager.write_map_output(dep, 1, 1, [(2, "c")])
        # Partition 0's block vanished (worker-side loss) but its
        # location entry is stale: corruption must pick partition 1,
        # the one whose block it can actually drop.
        ctx.cluster.worker(0).blocks.remove(
            f"shuffle_{dep.shuffle_id}_0"
        )
        with pytest.raises(FetchFailedError) as info:
            manager.fetch(dep.shuffle_id, 0)
        assert info.value.map_partition == 1
        assert info.value.worker_id == 1

    def test_empty_locations_reports_genuinely_missing_map(self, ctx):
        manager, dep = self._registered(ctx)
        # Nothing written yet: no fabricated drop, and the reported
        # partition is one lineage recovery genuinely needs to rerun.
        with pytest.raises(FetchFailedError) as info:
            manager.fetch(dep.shuffle_id, 0)
        assert info.value.map_partition == 0
        assert info.value.worker_id == -1
        assert 0 in manager.missing_maps(dep.shuffle_id)

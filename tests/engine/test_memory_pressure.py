"""Memory-bounded block stores: eviction, pinning, recompute-on-evict.

The paper keeps "high-value data" in the memstore and relies on lineage
to make single-copy caching safe; the same property makes *eviction* safe:
a cached partition dropped under memory pressure is simply recomputed on
the next read, while pinned shuffle outputs never vanish silently.
"""

import pytest

from repro.cluster.worker import BlockStore
from repro.engine import EngineContext


class TestBlockStoreEviction:
    def test_unlimited_by_default(self):
        store = BlockStore()
        for i in range(100):
            store.put(f"b{i}", [0] * 1000)
        assert len(store) == 100
        assert store.evictions == 0

    def test_lru_eviction_order(self):
        store = BlockStore(capacity_bytes=3000)
        store.put("a", "x", size_bytes=1000)
        store.put("b", "x", size_bytes=1000)
        store.put("c", "x", size_bytes=1000)
        store.get("a")  # refresh a: b becomes the LRU victim
        store.put("d", "x", size_bytes=1000)
        assert "b" not in store
        assert "a" in store and "c" in store and "d" in store
        assert store.evictions == 1

    def test_pinned_blocks_survive_pressure(self):
        store = BlockStore(capacity_bytes=2000)
        store.put("shuffle", "x", size_bytes=1500, pinned=True)
        store.put("cache1", "x", size_bytes=1000)
        store.put("cache2", "x", size_bytes=1000)
        assert "shuffle" in store
        assert store.evictions >= 1

    def test_only_pinned_blocks_left_stops_evicting(self):
        store = BlockStore(capacity_bytes=100)
        store.put("s1", "x", size_bytes=90, pinned=True)
        store.put("s2", "x", size_bytes=90, pinned=True)
        # Over capacity but nothing evictable: both stay.
        assert "s1" in store and "s2" in store

    def test_reput_replaces_not_duplicates(self):
        store = BlockStore(capacity_bytes=5000)
        store.put("a", "x", size_bytes=1000)
        store.put("a", "y", size_bytes=2000)
        assert store.used_bytes == 2000
        assert store.get("a") == "y"

    def test_restart_preserves_capacity(self):
        from repro.cluster.worker import Worker

        worker = Worker(worker_id=0, blocks=BlockStore(capacity_bytes=123))
        worker.kill()
        worker.restart()
        assert worker.blocks.capacity_bytes == 123


class TestEngineUnderMemoryPressure:
    def test_cached_rdd_correct_despite_eviction(self):
        ctx = EngineContext(
            num_workers=2, cores_per_worker=2,
            memory_per_worker_bytes=20_000,
        )
        big = ctx.parallelize(range(5000), 8).map(lambda x: x * 2).cache()
        first = big.collect()
        # Cache more data than fits: some partitions evict.
        other = ctx.parallelize(range(5000, 10000), 8).cache()
        other.collect()
        second = big.collect()  # evicted partitions recompute via lineage
        assert first == second
        evictions = sum(
            worker.blocks.evictions for worker in ctx.cluster.workers
        )
        assert evictions > 0

    def test_shuffle_survives_cache_pressure(self):
        ctx = EngineContext(
            num_workers=2, cores_per_worker=2,
            memory_per_worker_bytes=15_000,
        )
        pairs = ctx.parallelize([(i % 7, 1) for i in range(3000)], 6)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        before = sorted(reduced.collect())
        # Flood the caches; pinned shuffle outputs must not evict.
        ctx.parallelize(range(8000), 8).cache().collect()
        after = sorted(reduced.collect())
        assert before == after == [(k, 3000 // 7 + (1 if k < 3000 % 7 else 0))
                                   for k in range(7)]

    def test_sql_on_memory_limited_cluster(self):
        from repro import SharkContext
        from repro.datatypes import INT, STRING, Schema

        shark = SharkContext(num_workers=2)
        # Clamp the workers after creation (SharkContext default engine).
        for worker in shark.engine.cluster.workers:
            worker.blocks.capacity_bytes = 30_000
        shark.create_table(
            "t", Schema.of(("g", STRING), ("v", INT)), cached=True
        )
        shark.load_rows("t", [(f"g{i % 5}", i) for i in range(4000)])
        result = dict(
            shark.sql("SELECT g, COUNT(*) FROM t GROUP BY g").rows
        )
        assert result == {f"g{i}": 800 for i in range(5)}


class TestEvictionThenRecompute:
    """Regression: a cached table whose partitions were LRU-evicted must
    recompute via lineage and answer byte-identically — and the eviction
    must be visible in QueryProfile.describe() and EXPLAIN ANALYZE."""

    def _build(self):
        from repro import SharkContext
        from repro.datatypes import INT, STRING, Schema

        # Small enough that the cached columnar partitions cannot all
        # fit: every query re-reads some partitions through lineage.
        shark = SharkContext(
            num_workers=2, memory_per_worker_bytes=2_500
        )
        shark.create_table(
            "t", Schema.of(("g", STRING), ("v", INT)), cached=True
        )
        shark.load_rows(
            "t", [(f"g{i % 7}", i) for i in range(6000)], num_partitions=8
        )
        return shark

    def test_recompute_is_byte_identical(self):
        shark = self._build()
        query = "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY g"
        first = sorted(shark.sql(query).rows)
        evicted = shark.metrics.value("blocks.evicted")
        assert evicted > 0, "capacity was not small enough to force eviction"
        # Evicted partitions recompute from lineage on the second read.
        second = sorted(shark.sql(query).rows)
        assert first == second

    def test_eviction_surfaced_in_profile_describe(self):
        shark = self._build()
        shark.engine.reset_profiles()
        shark.sql("SELECT g, COUNT(*) FROM t GROUP BY g")
        profiles = shark.engine.profiles
        evicted = sum(p.evicted_blocks for p in profiles)
        evicted_bytes = sum(p.evicted_bytes for p in profiles)
        assert evicted > 0
        assert evicted_bytes > 0
        described = "\n".join(p.describe() for p in profiles)
        assert "evicted cache blocks" in described

    def test_eviction_surfaced_in_explain_analyze(self):
        shark = self._build()
        text = shark.explain_analyze(
            "SELECT g, COUNT(*) FROM t GROUP BY g"
        )
        assert "evicted cache blocks" in text

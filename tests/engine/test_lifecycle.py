"""Query lifecycle: admission, deadlines, cancellation, fairness, circuits.

The acceptance bar (ISSUE 3): with the fault injector active, K
concurrently admitted queries where one is cancelled mid-flight and one
exceeds its deadline must leave the survivors byte-identical to serial
fault-free execution, raise typed errors for the cancelled/expired
queries, and leave no open tracer spans, no orphaned pinned shuffle
blocks, and no accumulator contributions from cancelled attempts.
"""

import pytest

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.engine import EngineContext
from repro.engine.lifecycle import LifecycleConfig
from repro.engine.task import TaskContext
from repro.errors import (
    AdmissionRejected,
    EngineError,
    QueryCancelledError,
    QueryCircuitOpenError,
    QueryDeadlineExceeded,
    QueryShedError,
    TaskError,
)
from repro.faults import FaultInjector


def _build_shark(fault_injector=None) -> SharkContext:
    shark = SharkContext(num_workers=4, fault_injector=fault_injector)
    shark.create_table(
        "readings",
        Schema.of(("bucket", STRING), ("day", INT), ("value", DOUBLE)),
        cached=True,
    )
    shark.load_rows(
        "readings",
        [(f"b{i % 6}", i % 15, float(i % 100)) for i in range(3000)],
        num_partitions=8,
    )
    return shark


QUERIES = {
    "agg": (
        "SELECT bucket, COUNT(*) AS n, SUM(value) AS total "
        "FROM readings GROUP BY bucket"
    ),
    "count": "SELECT COUNT(*) FROM readings",
    "filter": "SELECT day, COUNT(*) FROM readings WHERE value > 40 GROUP BY day",
}


class TestAdmissionControl:
    def test_beyond_capacity_raises_typed_rejection(self):
        shark = _build_shark()
        shark.enable_lifecycle(LifecycleConfig(max_concurrent=1, max_queued=1))
        shark.submit_sql(QUERIES["count"], name="running")
        shark.submit_sql(QUERIES["count"], name="queued")
        with pytest.raises(AdmissionRejected) as info:
            shark.submit_sql(QUERIES["count"], name="overflow")
        assert info.value.retry_after_s > 0
        assert info.value.running == 1
        assert info.value.queued == 1
        assert shark.metrics.value("queries.rejected") == 1

    def test_queued_query_promoted_and_completes(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=1, max_queued=2)
        )
        first = shark.submit_sql(QUERIES["count"], name="a")
        second = shark.submit_sql(QUERIES["count"], name="b")
        assert first.state == "running"
        assert second.state == "queued"
        lifecycle.drain()
        assert first.state == "done" and second.state == "done"
        assert first.result.rows == second.result.rows == [(3000,)]

    def test_retry_hint_reflects_completed_durations(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=1, max_queued=0)
        )
        handle = shark.submit_sql(QUERIES["agg"], name="first")
        lifecycle.drain()
        assert handle.charged_seconds > 0
        shark.submit_sql(QUERIES["count"], name="second")
        with pytest.raises(AdmissionRejected) as info:
            shark.submit_sql(QUERIES["count"], name="rejected")
        # The hint derives from the completed query's simulated seconds.
        assert info.value.retry_after_s == pytest.approx(
            handle.charged_seconds, rel=1e-6
        )

    def test_cancel_queued_query_is_immediate(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=1, max_queued=1)
        )
        shark.submit_sql(QUERIES["count"], name="running")
        queued = shark.submit_sql(QUERIES["count"], name="victim")
        queued.cancel()
        assert queued.state == "cancelled"
        assert isinstance(queued.error, QueryCancelledError)
        lifecycle.drain()
        # The cancelled query never launched a task.
        assert queued.tasks_launched == 0


class TestFairness:
    @pytest.mark.parametrize("policy", ["round-robin", "min-tasks"])
    def test_short_query_beats_earlier_long_query(self, policy):
        ctx = EngineContext(num_workers=4, cores_per_worker=2)
        lifecycle = ctx.enable_lifecycle(
            LifecycleConfig(max_concurrent=2, fairness=policy)
        )
        long_rdd = ctx.parallelize(range(6000), 12)
        short_rdd = ctx.parallelize(range(10), 1)
        long_handle = lifecycle.submit(
            lambda: long_rdd.map(lambda x: x * 2).collect(), name="long"
        )
        short_handle = lifecycle.submit(
            lambda: short_rdd.map(lambda x: x * 2).collect(), name="short"
        )
        finished = lifecycle.drain()
        # Submitted second, finished first: tasks interleave instead of
        # FIFO, so 1 task does not wait behind 12.
        assert [handle.name for handle in finished] == ["short", "long"]
        assert short_handle.result == [x * 2 for x in range(10)]
        assert long_handle.result == [x * 2 for x in range(6000)]

    def test_unknown_policy_rejected(self):
        ctx = EngineContext(num_workers=2)
        with pytest.raises(ValueError, match="fairness"):
            ctx.enable_lifecycle(LifecycleConfig(fairness="lottery"))

    def test_wait_drives_other_queries_fairly(self):
        shark = _build_shark()
        shark.enable_lifecycle(LifecycleConfig(max_concurrent=2))
        other = shark.submit_sql(QUERIES["agg"], name="other")
        target = shark.submit_sql(QUERIES["count"], name="target")
        result = target.result_or_raise()
        assert result.rows == [(3000,)]
        # Waiting on one handle still gave the other its turns.
        assert other.tasks_launched > 0


class TestCancellation:
    def test_cancel_mid_flight_raises_typed_error_and_cleans_up(self):
        shark = _build_shark()
        shark.enable_tracing()
        lifecycle = shark.enable_lifecycle(LifecycleConfig(max_concurrent=2))
        victim = shark.submit_sql(
            QUERIES["agg"], name="victim"
        ).cancel_after_tasks(3)
        survivor = shark.submit_sql(QUERIES["count"], name="survivor")
        lifecycle.drain()

        assert victim.state == "cancelled"
        assert isinstance(victim.error, QueryCancelledError)
        assert not isinstance(victim.error, QueryDeadlineExceeded)
        with pytest.raises(QueryCancelledError):
            victim.result_or_raise()
        assert survivor.result.rows == [(3000,)]

        # Cleanup invariants: no open spans, no orphaned pinned blocks.
        assert [s.name for s in shark.trace.spans if s.end is None] == []
        registered = shark.engine.shuffle_manager.registered_block_ids()
        pinned = shark.engine.cluster.pinned_block_ids()
        assert pinned <= registered
        assert shark.metrics.value("queries.cancelled") == 1
        assert len(shark.trace.events_named("query.cancelled")) == 1

    def test_cancelled_attempts_never_touch_accumulators(self):
        from repro.engine.accumulator import Accumulator

        ctx = EngineContext(num_workers=4, cores_per_worker=2)
        lifecycle = ctx.enable_lifecycle(LifecycleConfig())
        counting = Accumulator(0, lambda a, b: a + b)
        rdd = ctx.parallelize(range(80), 8)

        def count_records():
            def bump(x):
                counting.add(1)  # buffered per attempt, merged if kept
                return x

            return rdd.map(bump).collect()

        handle = lifecycle.submit(count_records, name="doomed")
        handle.cancel_after_tasks(3)
        with pytest.raises(QueryCancelledError):
            lifecycle.wait(handle)
        # 3 tasks launched and kept before the cancel fired, 10 records
        # each; cancelled (never-merged) attempts contributed nothing.
        assert counting.value == 30

    def test_armed_token_stops_inflight_iterator(self):
        """In-flight attempts observe the token at RDD boundaries."""
        ctx = EngineContext(num_workers=2)
        lifecycle = ctx.enable_lifecycle(LifecycleConfig())
        handle = lifecycle.submit(lambda: None, name="q")
        handle.token.cancel("cancelled")
        rdd = ctx.parallelize(range(10), 1)
        worker = ctx.cluster.worker(0)
        from repro.engine.metrics import TaskMetrics

        task_ctx = TaskContext(
            stage_id=0,
            partition=0,
            worker=worker,
            shuffle_manager=ctx.shuffle_manager,
            cache_tracker=ctx.cache_tracker,
            metrics=TaskMetrics(),
            cancel_token=handle.token,
        )
        with pytest.raises(QueryCancelledError):
            rdd.iterator(0, task_ctx)

    def test_cancel_after_done_is_noop(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(LifecycleConfig())
        handle = shark.submit_sql(QUERIES["count"], name="q")
        lifecycle.drain()
        assert handle.state == "done"
        handle.cancel()
        assert handle.state == "done"
        assert handle.error is None


class TestDeadlines:
    def test_deadline_exceeded_mid_flight(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(LifecycleConfig())
        late = shark.submit_sql(
            QUERIES["agg"], name="late", deadline_s=1e-9
        )
        lifecycle.drain()
        assert late.state == "deadline"
        assert isinstance(late.error, QueryDeadlineExceeded)
        # ... which is also a cancellation (one handler catches both).
        assert isinstance(late.error, QueryCancelledError)
        assert late.error.deadline_s == 1e-9
        assert late.error.elapsed_s > 1e-9
        # The deadline fired mid-flight, not after everything ran.
        assert late.tasks_launched < 16
        assert shark.metrics.value("queries.deadline_expired") == 1

    def test_generous_deadline_completes(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(LifecycleConfig())
        handle = shark.submit_sql(
            QUERIES["count"], name="fine", deadline_s=1e6
        )
        lifecycle.drain()
        assert handle.state == "done"
        assert handle.result.rows == [(3000,)]

    def test_default_deadline_from_config(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(default_deadline_s=1e-9)
        )
        handle = shark.submit_sql(QUERIES["agg"], name="q")
        lifecycle.drain()
        assert handle.state == "deadline"


class TestCircuitBreaker:
    def test_repeated_failures_open_then_half_open(self):
        ctx = EngineContext(num_workers=2)
        lifecycle = ctx.enable_lifecycle(
            LifecycleConfig(
                circuit_failure_threshold=2, circuit_reset_completions=2
            )
        )

        def boom():
            raise TaskError(0, 0, ValueError("boom"))

        for name in ("bad1", "bad2"):
            handle = lifecycle.submit(boom, name=name, key="bad")
            with pytest.raises(TaskError):
                lifecycle.wait(handle)
        # Two consecutive engine failures on one key: circuit open.
        with pytest.raises(QueryCircuitOpenError) as info:
            lifecycle.submit(boom, name="bad3", key="bad")
        assert info.value.key == "bad"
        assert info.value.retry_after_completions > 0
        assert ctx.metrics.value("queries.circuit_opened") == 1

        # Other keys are unaffected and their completions age the circuit.
        for index in range(2):
            ok = lifecycle.submit(lambda: 42, name=f"ok{index}")
            assert lifecycle.wait(ok) == 42

        # Half-open: one trial is admitted; success closes the circuit.
        trial = lifecycle.submit(lambda: 7, name="trial", key="bad")
        assert lifecycle.wait(trial) == 7
        again = lifecycle.submit(lambda: 8, name="again", key="bad")
        assert lifecycle.wait(again) == 8

    def test_cancellation_does_not_trip_the_circuit(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(circuit_failure_threshold=1)
        )
        for index in range(3):
            handle = shark.submit_sql(
                QUERIES["agg"], name=f"c{index}", key="same"
            ).cancel_after_tasks(1)
            with pytest.raises(QueryCancelledError):
                lifecycle.wait(handle)
        # Cancellations are not engine failures: no circuit opened.
        handle = shark.submit_sql(QUERIES["count"], name="fine", key="same")
        assert lifecycle.wait(handle).rows == [(3000,)]


class TestConcurrentChaosAcceptance:
    """The ISSUE 3 deterministic acceptance test."""

    def _serial_baseline(self):
        shark = _build_shark()
        return {
            name: sorted(shark.sql(text).rows)
            for name, text in QUERIES.items()
        }

    def test_concurrent_queries_under_chaos(self):
        baseline = self._serial_baseline()
        injector = FaultInjector(
            seed=13,
            transient_failure_rate=0.10,
            stragglers_per_stage=1,
            straggler_slowdown=6.0,
        )
        shark = _build_shark(fault_injector=injector)
        shark.enable_tracing()
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=4, max_queued=0)
        )

        survivors = {
            "agg": shark.submit_sql(QUERIES["agg"], name="agg"),
            "filter": shark.submit_sql(QUERIES["filter"], name="filter"),
        }
        cancelled = shark.submit_sql(
            QUERIES["agg"], name="cancelled", key="cancelled"
        ).cancel_after_tasks(4)
        deadlined = shark.submit_sql(
            QUERIES["filter"], name="deadlined", deadline_s=1e-9
        )
        lifecycle.drain()

        # Typed terminal errors for the killed queries.
        assert cancelled.state == "cancelled"
        assert isinstance(cancelled.error, QueryCancelledError)
        assert deadlined.state == "deadline"
        assert isinstance(deadlined.error, QueryDeadlineExceeded)

        # Survivors: byte-identical to serial fault-free execution.
        for name, handle in survivors.items():
            assert handle.state == "done"
            assert sorted(handle.result.rows) == baseline[name], name

        # No open tracer spans.
        assert [s.name for s in shark.trace.spans if s.end is None] == []
        # No orphaned pinned shuffle blocks.
        registered = shark.engine.shuffle_manager.registered_block_ids()
        pinned = shark.engine.cluster.pinned_block_ids()
        assert pinned <= registered
        # The lifecycle ledger agrees.
        assert lifecycle.completed == 2
        assert lifecycle.cancelled == 1
        assert lifecycle.deadline_expired == 1
        # And the chaos was real.
        assert injector.injected_transient > 0

    def test_identical_to_serial_under_chaos_rerun(self):
        """Determinism: the same seed gives the same interleaving."""

        def run_once():
            injector = FaultInjector(seed=21, transient_failure_rate=0.12)
            shark = _build_shark(fault_injector=injector)
            lifecycle = shark.enable_lifecycle(
                LifecycleConfig(max_concurrent=3)
            )
            handles = [
                shark.submit_sql(QUERIES["agg"], name="a"),
                shark.submit_sql(QUERIES["count"], name="b"),
                shark.submit_sql(QUERIES["filter"], name="c"),
            ]
            finished = lifecycle.drain()
            return (
                [handle.name for handle in finished],
                [sorted(handle.result.rows) for handle in handles],
                [handle.tasks_launched for handle in handles],
            )

        assert run_once() == run_once()


class TestCorruptionIsolation:
    """A corrupted shuffle fetch during a cancelled query must not poison
    a concurrently running query's shuffle state."""

    def test_corrupted_fetch_in_cancelled_query_isolated(self):
        serial = self._serial()
        injector = FaultInjector(
            seed=5, corrupt_fetch_rate=1.0, max_corrupt_fetches=1
        )
        shark = _build_shark(fault_injector=injector)
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=2)
        )
        # The victim hits the (single) corrupted fetch in its reduce
        # stage around its 9th task, starts lineage recovery, and is
        # cancelled mid-recovery (it would finish at 11 tasks unharmed).
        victim = shark.submit_sql(
            QUERIES["agg"], name="victim"
        ).cancel_after_tasks(10)
        survivor = shark.submit_sql(QUERIES["filter"], name="survivor")
        lifecycle.drain()

        assert injector.injected_corruptions == 1
        assert victim.state == "cancelled"
        assert survivor.state == "done"
        assert sorted(survivor.result.rows) == serial
        # The victim's shuffle state is gone entirely; the survivor's is
        # intact and consistent with the workers' pinned blocks.
        registered = shark.engine.shuffle_manager.registered_block_ids()
        pinned = shark.engine.cluster.pinned_block_ids()
        assert pinned <= registered
        for shuffle_id in victim.shuffle_ids:
            assert not shark.engine.shuffle_manager.is_registered(shuffle_id)

        # The same survivor query still answers correctly afterwards.
        rerun = shark.sql(QUERIES["filter"])
        assert sorted(rerun.rows) == serial

    def _serial(self):
        shark = _build_shark()
        return sorted(shark.sql(QUERIES["filter"]).rows)


class TestObservability:
    def test_explain_analyze_carries_lifecycle_note(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(LifecycleConfig())
        handle = shark.submit_sql(QUERIES["count"], name="q")
        lifecycle.drain()
        assert handle.state == "done"
        text = shark.explain_analyze(QUERIES["count"])
        assert "lifecycle:" in text
        assert "1 completed" in text

    def test_concurrent_spans_nest_under_their_own_query(self):
        shark = _build_shark()
        shark.enable_tracing()
        lifecycle = shark.enable_lifecycle(LifecycleConfig(max_concurrent=2))
        shark.submit_sql(QUERIES["agg"], name="left")
        shark.submit_sql(QUERIES["filter"], name="right")
        lifecycle.drain()
        spans_by_id = {span.span_id: span for span in shark.trace.spans}
        lifecycle_spans = {
            span.span_id: span.name
            for span in shark.trace.spans
            if span.name in ("query left", "query right")
        }
        job_spans = [
            span for span in shark.trace.spans if span.category == "job"
        ]
        assert len(lifecycle_spans) == 2
        assert job_spans

        def owning_query(span):
            while span.parent_id is not None:
                if span.parent_id in lifecycle_spans:
                    return lifecycle_spans[span.parent_id]
                span = spans_by_id[span.parent_id]
            return None

        owners = {owning_query(span) for span in job_spans}
        # Every job nests under exactly one query's span stack, never the
        # other query's half-open stack (per-query span stacks) — and
        # both queries ran jobs.
        assert owners == {"query left", "query right"}

    def test_lifecycle_describe_counts(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=1, max_queued=0)
        )
        done = shark.submit_sql(QUERIES["count"], name="ok")
        with pytest.raises(AdmissionRejected):
            shark.submit_sql(QUERIES["count"], name="nope")
        lifecycle.drain()
        text = lifecycle.describe()
        assert "2 submitted" in text
        assert "1 completed" in text
        assert "1 rejected" in text
        assert done.state == "done"

    def test_drain_inside_query_is_rejected(self):
        ctx = EngineContext(num_workers=2)
        lifecycle = ctx.enable_lifecycle(LifecycleConfig())

        def recursive():
            lifecycle.drain()

        handle = lifecycle.submit(recursive, name="recursive")
        lifecycle.drain()
        assert handle.state == "failed"
        assert isinstance(handle.error, EngineError)


class TestTraceDrainOnCancellation:
    """Regression: the cleanup loop used ``end_span``, which no-ops when
    tracing is disabled — a query cancelled after tracing was turned off
    mid-flight spun forever on its span stack (tripping the conftest
    hang guard) and leaked the open spans.  ``Tracer.drain_stack`` must
    close everything regardless of the enabled flag, idempotently."""

    def test_cancel_with_tracing_disabled_mid_query(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle()
        shark.enable_tracing()

        def work():
            # The query span is already open on this query's private
            # stack; open a child, then disable tracing and cancel.
            shark.tracer.begin_span("mid-query work", "job")
            shark.disable_tracing()
            raise QueryCancelledError("victim")

        handle = lifecycle.submit(work, name="victim")
        with pytest.raises(QueryCancelledError):
            lifecycle.wait(handle)

        assert handle.state == "cancelled"
        # The private stack was drained despite the disabled tracer ...
        assert handle._trace_stack == []
        # ... every recorded span got a close time and terminal status.
        assert shark.trace.spans
        for span in shark.trace.spans:
            assert span.end is not None
        query_span = shark.trace.spans_in_category("query")[0]
        assert query_span.args["status"] == "cancelled"
        # Draining again is a no-op (idempotent).
        shark.tracer.drain_stack(handle._trace_stack, status="cancelled")
        assert handle._trace_stack == []

    def test_cancelled_query_dumps_flight_recorder(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle()
        assert not shark.tracer.enabled  # tracing stays off throughout
        handle = shark.submit_sql(
            QUERIES["agg"], name="victim"
        ).cancel_after_tasks(3)
        with pytest.raises(QueryCancelledError):
            lifecycle.wait(handle)
        dump = shark.tracer.flight.last_dump
        assert dump is not None
        assert dump["reason"] == "cancelled"
        assert dump["query_id"] == f"lifecycle-{handle.query_id}"
        assert dump["events"]  # partial timeline despite tracing off
        assert shark.metrics.value("flight.dumps") == 1


class TestWeightedFairness:
    def test_heavier_weight_finishes_first(self):
        ctx = EngineContext(num_workers=4, cores_per_worker=2)
        lifecycle = ctx.enable_lifecycle(
            LifecycleConfig(max_concurrent=2, fairness="weighted")
        )
        rdd = ctx.parallelize(range(1200), 12)
        light = lifecycle.submit(
            lambda: rdd.map(lambda x: x + 1).collect(),
            name="light",
            weight=1,
        )
        heavy = lifecycle.submit(
            lambda: rdd.map(lambda x: x + 1).collect(),
            name="heavy",
            weight=8,
        )
        finished = lifecycle.drain()
        # Same job, submitted later — but 8 task slots per 1 means the
        # heavier query overtakes and completes first.
        assert [handle.name for handle in finished] == ["heavy", "light"]
        assert heavy.result == light.result == [x + 1 for x in range(1200)]

    def test_weight_floor_is_one(self):
        ctx = EngineContext(num_workers=2)
        lifecycle = ctx.enable_lifecycle(
            LifecycleConfig(fairness="weighted")
        )
        handle = lifecycle.submit(lambda: 1, name="q", weight=0)
        assert handle.weight == 1
        assert lifecycle.wait(handle) == 1

    def test_weighted_drain_is_deterministic(self):
        def run_once():
            ctx = EngineContext(num_workers=4, cores_per_worker=2)
            lifecycle = ctx.enable_lifecycle(
                LifecycleConfig(max_concurrent=3, fairness="weighted")
            )
            rdd = ctx.parallelize(range(600), 6)
            for name, weight in (("a", 8), ("b", 2), ("c", 1)):
                lifecycle.submit(
                    lambda: rdd.map(lambda x: x * 3).collect(),
                    name=name,
                    weight=weight,
                )
            finished = lifecycle.drain()
            return [
                (handle.name, handle.tasks_launched) for handle in finished
            ]

        assert run_once() == run_once()


class TestTenantIsolation:
    """Satellite 1: circuit breaker and worker blacklist scoped per
    tenant — one tenant's failures never fail-fast or blacklist for
    another."""

    def _boom(self):
        raise TaskError(0, 0, ValueError("boom"))

    def test_circuit_is_scoped_to_the_failing_tenant(self):
        ctx = EngineContext(num_workers=2)
        lifecycle = ctx.enable_lifecycle(
            LifecycleConfig(
                circuit_failure_threshold=2, circuit_reset_completions=4
            )
        )
        for name in ("a1", "a2"):
            handle = lifecycle.submit(
                self._boom, name=name, key="hot", tenant="a"
            )
            with pytest.raises(TaskError):
                lifecycle.wait(handle)
        # Tenant a's circuit for this key is open...
        with pytest.raises(QueryCircuitOpenError):
            lifecycle.submit(self._boom, name="a3", key="hot", tenant="a")
        # ...but the same key admits untouched for tenant b and for
        # tenantless submissions.
        other = lifecycle.submit(lambda: 1, name="b1", key="hot", tenant="b")
        assert lifecycle.wait(other) == 1
        anon = lifecycle.submit(lambda: 2, name="anon", key="hot")
        assert lifecycle.wait(anon) == 2

    def test_worker_failures_attributed_to_the_running_tenant(self):
        ctx = EngineContext(num_workers=2)
        lifecycle = ctx.enable_lifecycle(LifecycleConfig(max_concurrent=1))
        scheduler = ctx.scheduler
        threshold = scheduler.config.blacklist_threshold

        def fail_on_worker(times):
            def fn():
                for _ in range(times):
                    scheduler._note_worker_failure(0, None)

            return fn

        # Each tenant stays one failure below the threshold on the same
        # worker: attribution is per (tenant, worker), so their counts
        # never merge and nothing is blacklisted.
        for tenant in ("a", "b"):
            handle = lifecycle.submit(
                fail_on_worker(threshold - 1), name=tenant, tenant=tenant
            )
            lifecycle.wait(handle)
        assert not ctx.cluster.is_blacklisted(0)

        # One more failure from a single tenant crosses its own count.
        handle = lifecycle.submit(fail_on_worker(1), name="last", tenant="a")
        lifecycle.wait(handle)
        assert ctx.cluster.is_blacklisted(0)
        assert ctx.cluster.blacklisted_workers() == [0]


class TestRetryAfterDrainRate:
    """Satellite 2: rejection hints derive from the observed completion
    drain rate on the simulated clock."""

    def test_hint_matches_the_observed_drain_rate(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=1, max_queued=1)
        )
        for index in range(3):
            shark.submit_sql(QUERIES["count"], name=f"warm{index}")
            lifecycle.drain()
        window = lifecycle.config.drain_rate_window
        samples = lifecycle._drain_times[-window:]
        rate = (len(samples) - 1) / (samples[-1] - samples[0])

        shark.submit_sql(QUERIES["count"], name="running")
        shark.submit_sql(QUERIES["count"], name="queued")
        with pytest.raises(AdmissionRejected) as info:
            shark.submit_sql(QUERIES["count"], name="rejected")
        # One queued ahead plus this query: two drains at the rate.
        assert info.value.retry_after_s == pytest.approx(2.0 / rate)
        lifecycle.drain()

    def test_client_honoring_the_hint_eventually_admits(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=1, max_queued=1)
        )
        shark.submit_sql(QUERIES["agg"], name="one")
        shark.submit_sql(QUERIES["agg"], name="two")
        admitted = None
        for _ in range(10):
            try:
                admitted = shark.submit_sql(QUERIES["count"], name="retried")
                break
            except AdmissionRejected as rejection:
                assert rejection.retry_after_s > 0
                # Honor the hint: wait out the backlog, then retry.
                lifecycle.drain()
        assert admitted is not None
        lifecycle.drain()
        assert admitted.state == "done"
        assert admitted.result.rows == [(3000,)]


class TestShedQueued:
    """Satellite 3: a deadline expiring while queued sheds the query —
    it never runs — and only queued queries are sheddable."""

    def test_deadline_expiring_while_queued_is_shed_not_run(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=1, max_queued=1)
        )
        running = shark.submit_sql(QUERIES["agg"], name="running")
        doomed = shark.submit_sql(
            QUERIES["count"], name="doomed", deadline_s=1e-9
        )
        assert doomed.state == "queued"
        assert lifecycle.shed_queued(doomed, "deadline-unmeetable")
        assert doomed.state == "shed"
        assert isinstance(doomed.error, QueryShedError)
        assert doomed.error.shed_reason == "deadline-unmeetable"
        # Shed means never launched: zero tasks, no cleanup needed.
        assert doomed.tasks_launched == 0
        with pytest.raises(QueryShedError):
            doomed.result_or_raise()
        lifecycle.drain()
        assert running.state == "done"
        assert lifecycle.shed == 1
        assert shark.metrics.value("queries.shed") == 1
        assert "1 shed" in lifecycle.describe()

    def test_running_query_is_not_sheddable(self):
        shark = _build_shark()
        lifecycle = shark.enable_lifecycle(LifecycleConfig(max_concurrent=1))
        running = shark.submit_sql(QUERIES["count"], name="running")
        assert running.state == "running"
        assert not lifecycle.shed_queued(running, "brownout")
        lifecycle.drain()
        assert running.state == "done"


class TestAdmissionLedger:
    """Satellite 3: the slot ledger balances to zero on every terminal
    path — completed, cancelled, deadline-expired, failed, shed, and
    rejected — chaos included."""

    def test_ledger_zero_across_every_terminal_path_under_chaos(self):
        injector = FaultInjector(
            seed=13,
            transient_failure_rate=0.10,
            stragglers_per_stage=1,
            straggler_slowdown=6.0,
        )
        shark = _build_shark(fault_injector=injector)
        lifecycle = shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=2, max_queued=2)
        )

        survivor = shark.submit_sql(QUERIES["agg"], name="survivor")
        cancelled = shark.submit_sql(
            QUERIES["filter"], name="cancelled"
        ).cancel_after_tasks(2)
        deadlined = shark.submit_sql(
            QUERIES["agg"], name="deadlined", deadline_s=1e-9
        )
        shedded = shark.submit_sql(QUERIES["count"], name="shedded")
        with pytest.raises(AdmissionRejected):
            shark.submit_sql(QUERIES["count"], name="rejected")
        assert lifecycle.shed_queued(shedded, "brownout")
        lifecycle.drain()

        failing = lifecycle.submit(
            lambda: (_ for _ in ()).throw(TaskError(0, 0, ValueError("x"))),
            name="failing",
        )
        with pytest.raises(TaskError):
            lifecycle.wait(failing)

        assert survivor.state == "done"
        assert cancelled.state == "cancelled"
        assert deadlined.state == "deadline"
        assert shedded.state == "shed"
        assert failing.state == "failed"

        ledger = lifecycle.admission_ledger()
        assert ledger["leaked"] == 0
        assert ledger["running"] == 0
        assert ledger["queued"] == 0
        assert ledger["terminal"] == 5
        assert ledger["rejected"] == 1
        assert ledger["submitted"] == 6
        assert injector.injected_transient > 0

"""Recovery interactions with PDE pre-materialized shuffles.

PDE materializes map stages *before* the downstream plan is committed; if
workers die in between, the final job must transparently recompute the
lost map outputs from lineage — the same guarantee as any other stage.
"""

import pytest

from repro.engine.partitioner import HashPartitioner
from repro.engine.rdd import ShuffledRDD


class TestPreShuffleRecovery:
    def test_worker_death_between_materialize_and_use(self, ctx):
        pairs = ctx.parallelize([(i % 9, i) for i in range(300)], 6)
        shuffled = ShuffledRDD(pairs, HashPartitioner(5))
        stats = ctx.materialize_shuffle(shuffled)
        assert stats.maps_reported == 6
        # The optimizer has read its statistics; now a worker dies.
        ctx.kill_worker(0)
        ctx.kill_worker(1)
        result = dict(
            shuffled.reduce_by_key(lambda a, b: a + b).collect()
        )
        want: dict = {}
        for key, value in [(i % 9, i) for i in range(300)]:
            want[key] = want.get(key, 0) + value
        # ShuffledRDD without aggregator yields raw pairs; reduce on top.
        assert result == want

    def test_stats_survive_worker_death(self, ctx):
        """Statistics live on the master (Section 3.1), so a worker death
        does not invalidate the optimizer's decision inputs."""
        pairs = ctx.parallelize([(i % 4, "x" * 50) for i in range(100)], 4)
        shuffled = ShuffledRDD(pairs, HashPartitioner(4))
        stats = ctx.materialize_shuffle(shuffled)
        before = stats.total_output_bytes()
        ctx.kill_worker(2)
        assert ctx.shuffle_manager.stats(
            shuffled.shuffle_dep.shuffle_id
        ).total_output_bytes() == before

    def test_pde_sql_join_survives_kill_after_probe(self):
        from repro import SharkContext
        from repro.datatypes import BOOLEAN, INT, STRING, Schema
        from repro.sql.planner import PlannerConfig

        config = PlannerConfig(enable_static_join_estimates=False)
        shark = SharkContext(num_workers=4, config=config)
        shark.create_table(
            "big", Schema.of(("k", INT), ("v", STRING)), cached=True
        )
        shark.load_rows("big", [(i % 30, f"v{i}") for i in range(600)])
        shark.create_table(
            "small", Schema.of(("k", INT), ("t", STRING)), cached=True
        )
        shark.load_rows("small", [(i, f"t{i}") for i in range(30)])
        shark.register_udf(
            "keep", lambda t: not t.endswith("3"), return_type=BOOLEAN
        )
        query = (
            "SELECT big.v, small.t FROM big JOIN small ON big.k = small.k "
            "WHERE keep(small.t)"
        )
        expected = sorted(shark.sql(query).rows)
        # Kill mid-planning-and-execution: the injector fires inside the
        # next query's task stream (possibly during the PDE probe).
        base = shark.engine.cluster.total_tasks_completed
        shark.inject_failure(worker_id=1, after_tasks=base + 3)
        assert sorted(shark.sql(query).rows) == expected


class TestAggregatePdeRecovery:
    def test_kill_between_fine_shuffle_and_coalesce(self):
        from repro import SharkContext
        from repro.datatypes import INT, STRING, Schema

        shark = SharkContext(num_workers=4)
        shark.create_table(
            "e", Schema.of(("g", STRING), ("n", INT)), cached=True
        )
        shark.load_rows("e", [(f"g{i % 12}", 1) for i in range(480)])
        query = "SELECT g, SUM(n) FROM e GROUP BY g"
        expected = sorted(shark.sql(query).rows)
        base = shark.engine.cluster.total_tasks_completed
        # Fire right around the PDE materialize boundary.
        shark.inject_failure(worker_id=2, after_tasks=base + 9)
        assert sorted(shark.sql(query).rows) == expected
        shark.inject_failure(
            worker_id=3,
            after_tasks=shark.engine.cluster.total_tasks_completed + 1,
        )
        assert sorted(shark.sql(query).rows) == expected

"""Shuffle manager: bucketing, stats, fetch failures, map-side combine."""

import pytest

from repro.engine.accumulator import (
    HeavyHittersStat,
    RecordCountStat,
    log_decode_size,
)
from repro.engine.dependencies import Aggregator, ShuffleDependency
from repro.engine.partitioner import HashPartitioner
from repro.engine.shuffle import ShuffleManager
from repro.errors import FetchFailedError


def _make_dep(ctx, num_reduces=4, **kwargs):
    parent = ctx.parallelize([(i, 1) for i in range(20)], 2)
    return parent, ShuffleDependency(
        parent, HashPartitioner(num_reduces), **kwargs
    )


class TestWriteAndFetch:
    def test_roundtrip_all_records(self, ctx):
        parent, dep = _make_dep(ctx)
        manager = ctx.shuffle_manager
        manager.register(dep, num_maps=2)
        records = [(i, i * 10) for i in range(12)]
        manager.write_map_output(dep, 0, 0, records[:6])
        manager.write_map_output(dep, 1, 1, records[6:])
        fetched = []
        for reduce_partition in range(4):
            fetched.extend(manager.fetch(dep.shuffle_id, reduce_partition))
        assert sorted(fetched) == sorted(records)

    def test_bucketing_respects_partitioner(self, ctx):
        parent, dep = _make_dep(ctx, num_reduces=3)
        manager = ctx.shuffle_manager
        manager.register(dep, num_maps=1)
        manager.write_map_output(dep, 0, 0, [(i, None) for i in range(30)])
        partitioner = dep.partitioner
        for reduce_partition in range(3):
            for key, __ in manager.fetch(dep.shuffle_id, reduce_partition):
                assert partitioner.partition(key) == reduce_partition

    def test_register_idempotent(self, ctx):
        parent, dep = _make_dep(ctx)
        manager = ctx.shuffle_manager
        manager.register(dep, num_maps=2)
        manager.write_map_output(dep, 0, 0, [(1, 1)])
        manager.register(dep, num_maps=2)  # must not wipe outputs
        assert manager.missing_maps(dep.shuffle_id) == [1]


class TestMapSideCombine:
    def test_combines_before_bucketing(self, ctx):
        parent, dep = _make_dep(
            ctx,
            aggregator=Aggregator(
                lambda v: v, lambda a, b: a + b, lambda a, b: a + b
            ),
            map_side_combine=True,
        )
        manager = ctx.shuffle_manager
        manager.register(dep, num_maps=1)
        manager.write_map_output(
            dep, 0, 0, [("k", 1)] * 100 + [("j", 2)] * 50
        )
        stats = manager.stats(dep.shuffle_id)
        # 150 input records collapse to 2 combined records.
        assert stats.record_counts[0] == 2


class TestStatistics:
    def test_bucket_sizes_log_encoded(self, ctx):
        parent, dep = _make_dep(ctx)
        manager = ctx.shuffle_manager
        manager.register(dep, num_maps=1)
        manager.write_map_output(
            dep, 0, 0, [(i, "x" * 50) for i in range(100)]
        )
        stats = manager.stats(dep.shuffle_id)
        total = stats.map_output_bytes(0)
        assert total > 0
        # Log decoding has bounded (~10%) error per bucket.
        for code in stats.encoded_bucket_sizes[0]:
            assert 0 <= code <= 255

    def test_reduce_input_sizes(self, ctx):
        parent, dep = _make_dep(ctx, num_reduces=2)
        manager = ctx.shuffle_manager
        manager.register(dep, num_maps=2)
        manager.write_map_output(dep, 0, 0, [(0, "a")])
        manager.write_map_output(dep, 1, 1, [(0, "b"), (1, "c")])
        sizes = stats = manager.stats(dep.shuffle_id).reduce_input_sizes()
        assert len(sizes) == 2
        assert all(size >= 0 for size in sizes)

    def test_custom_collectors_run_and_merge(self, ctx):
        parent, dep = _make_dep(
            ctx,
            stats_collectors=(RecordCountStat(), HeavyHittersStat(capacity=4)),
        )
        manager = ctx.shuffle_manager
        manager.register(dep, num_maps=2)
        manager.write_map_output(dep, 0, 0, [("hot", 1)] * 30 + [("a", 1)])
        manager.write_map_output(dep, 1, 1, [("hot", 1)] * 20 + [("b", 1)])
        stats = manager.stats(dep.shuffle_id)
        assert stats.custom["record_counts"] == 52
        hitters = stats.custom["heavy_hitters"]
        assert max(hitters, key=hitters.get) == "hot"


class TestFailures:
    def test_fetch_from_dead_worker_raises(self, ctx):
        parent, dep = _make_dep(ctx)
        manager = ctx.shuffle_manager
        manager.register(dep, num_maps=1)
        manager.write_map_output(dep, 0, 2, [(1, 1)])
        ctx.cluster.kill_worker(2)
        with pytest.raises(FetchFailedError) as info:
            manager.fetch(dep.shuffle_id, 0)
        assert info.value.map_partition == 0

    def test_missing_maps_after_kill(self, ctx):
        parent, dep = _make_dep(ctx)
        manager = ctx.shuffle_manager
        manager.register(dep, num_maps=3)
        manager.write_map_output(dep, 0, 0, [(1, 1)])
        manager.write_map_output(dep, 1, 1, [(2, 2)])
        manager.write_map_output(dep, 2, 1, [(3, 3)])
        assert manager.missing_maps(dep.shuffle_id) == []
        ctx.cluster.kill_worker(1)
        assert manager.missing_maps(dep.shuffle_id) == [1, 2]

    def test_rewrite_after_recovery_clears_missing(self, ctx):
        parent, dep = _make_dep(ctx)
        manager = ctx.shuffle_manager
        manager.register(dep, num_maps=1)
        manager.write_map_output(dep, 0, 1, [(1, 1)])
        ctx.cluster.kill_worker(1)
        assert manager.missing_maps(dep.shuffle_id) == [0]
        manager.write_map_output(dep, 0, 0, [(1, 1)])
        assert manager.missing_maps(dep.shuffle_id) == []


class TestLogEncoding:
    def test_roundtrip_error_bounded(self):
        from repro.engine.accumulator import log_encode_size

        for size in [1, 10, 1000, 10**6, 10**9, 32 * 10**9]:
            decoded = log_decode_size(log_encode_size(size))
            assert abs(decoded - size) / size < 0.11

    def test_zero_maps_to_zero(self):
        from repro.engine.accumulator import log_encode_size

        assert log_encode_size(0) == 0
        assert log_decode_size(0) == 0

    def test_single_byte_range(self):
        from repro.engine.accumulator import log_encode_size

        assert 0 <= log_encode_size(32 * 1024**3) <= 255

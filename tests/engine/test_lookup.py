"""RDD.lookup: fine-grained random reads (Section 7.1's index use case)."""

from repro.engine.partitioner import HashPartitioner


class TestLookup:
    def test_lookup_on_partitioned_rdd_reads_one_partition(self, ctx):
        pairs = ctx.parallelize(
            [(i, f"v{i}") for i in range(100)], 4
        ).partition_by(HashPartitioner(8)).cache()
        pairs.count()  # materialize the cache
        tasks_before = ctx.cluster.total_tasks_completed
        assert pairs.lookup(42) == ["v42"]
        tasks_used = ctx.cluster.total_tasks_completed - tasks_before
        # Only the partition holding key 42 was read.
        assert tasks_used == 1

    def test_lookup_without_partitioner_scans(self, ctx):
        pairs = ctx.parallelize([(1, "a"), (2, "b"), (1, "c")], 3)
        assert sorted(pairs.lookup(1)) == ["a", "c"]

    def test_lookup_missing_key(self, ctx):
        pairs = ctx.parallelize([(1, "a")], 1).partition_by(
            HashPartitioner(4)
        )
        assert pairs.lookup(99) == []

    def test_lookup_duplicate_values(self, ctx):
        pairs = ctx.parallelize(
            [("k", i) for i in range(5)], 2
        ).partition_by(HashPartitioner(3))
        assert sorted(pairs.lookup("k")) == [0, 1, 2, 3, 4]

    def test_lookup_into_cached_table_as_index(self, shark):
        """The paper's 'RDDs as indices' sketch: a keyed, partitioned view
        over a SQL result answers point lookups without a full scan."""
        from repro.datatypes import INT, STRING, Schema

        shark.create_table(
            "users", Schema.of(("uid", INT), ("name", STRING)), cached=True
        )
        shark.load_rows("users", [(i, f"user{i}") for i in range(200)])
        table = shark.sql2rdd("SELECT uid, name FROM users")
        index = table.rdd.map(lambda row: (row[0], row[1])).partition_by(
            HashPartitioner(8)
        ).cache()
        index.count()
        assert index.lookup(123) == ["user123"]
        assert index.lookup(5000) == []

"""Broadcast variables."""

import pytest


class TestBroadcast:
    def test_value_accessible_in_tasks(self, ctx):
        lookup = ctx.broadcast({"a": 1, "b": 2})
        result = ctx.parallelize(["a", "b", "a"], 2).map(
            lambda k: lookup.value[k]
        ).collect()
        assert result == [1, 2, 1]

    def test_size_recorded(self, ctx):
        broadcast = ctx.broadcast(list(range(1000)))
        assert broadcast.size_bytes > 1000

    def test_ids_increment(self, ctx):
        first = ctx.broadcast(1)
        second = ctx.broadcast(2)
        assert second.broadcast_id == first.broadcast_id + 1

    def test_destroy_blocks_reads(self, ctx):
        broadcast = ctx.broadcast([1, 2, 3])
        broadcast.destroy()
        with pytest.raises(ValueError):
            __ = broadcast.value

"""DAG scheduler: stage structure, recovery, stage reuse, profiles."""

import pytest

from repro.engine.rdd import ShuffledRDD
from repro.engine.partitioner import HashPartitioner
from repro.errors import NoLiveWorkersError


class TestStageStructure:
    def test_single_stage_for_narrow_chain(self, ctx):
        rdd = ctx.parallelize(range(10), 4).map(lambda x: x).filter(
            lambda x: True
        )
        rdd.collect()
        assert ctx.last_profile.num_stages == 1

    def test_two_stages_across_shuffle(self, ctx):
        rdd = ctx.parallelize(range(10), 4).map(lambda x: (x % 2, x))
        rdd.reduce_by_key(lambda a, b: a + b).collect()
        profile = ctx.last_profile
        assert profile.num_stages == 2
        kinds = sorted(stage.is_shuffle_map for stage in profile.stages)
        assert kinds == [False, True]

    def test_three_stages_for_two_shuffles(self, ctx):
        rdd = ctx.parallelize(range(20), 4).map(lambda x: (x % 5, x))
        once = rdd.reduce_by_key(lambda a, b: a + b)
        twice = once.map(lambda kv: (kv[1] % 3, 1)).reduce_by_key(
            lambda a, b: a + b
        )
        twice.collect()
        assert ctx.last_profile.num_stages == 3

    def test_shuffle_stage_skipped_when_materialized(self, ctx):
        pairs = ctx.parallelize(range(10), 4).map(lambda x: (x % 3, 1))
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        reduced.collect()
        ctx.run_job(reduced, len)  # second job over the same shuffle
        profile = ctx.last_profile
        map_stages = [s for s in profile.stages if s.is_shuffle_map]
        # The map stage appears but ran zero tasks (outputs were reused).
        assert all(stage.num_tasks == 0 for stage in map_stages)


class TestMaterializeShuffle:
    def test_pde_pre_shuffle_returns_stats_and_is_reused(self, ctx):
        pairs = ctx.parallelize([(i % 4, i) for i in range(40)], 4)
        shuffled = ShuffledRDD(pairs, HashPartitioner(4))
        stats = ctx.materialize_shuffle(shuffled)
        assert stats.maps_reported == 4
        assert stats.total_records() == 40
        ctx.reset_profiles()
        shuffled.collect()
        # Final job must not re-run the map stage.
        map_tasks = sum(
            stage.num_tasks
            for profile in ctx.profiles
            for stage in profile.stages
            if stage.is_shuffle_map
        )
        assert map_tasks == 0


class TestRecovery:
    def test_result_recomputed_after_worker_loss(self, ctx):
        pairs = ctx.parallelize(range(100), 8).map(lambda x: (x % 10, 1))
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        before = sorted(reduced.collect())
        ctx.kill_worker(0)
        after = sorted(reduced.collect())
        assert before == after

    def test_mid_query_failure_recovers(self, ctx):
        ctx.inject_failure(worker_id=2, after_tasks=6)
        pairs = ctx.parallelize(range(200), 8).map(lambda x: (x % 5, 1))
        result = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert sum(result.values()) == 200
        assert ctx.last_profile.recovered_tasks > 0

    def test_cascading_recovery_through_two_shuffles(self, ctx):
        pairs = ctx.parallelize(range(60), 6).map(lambda x: (x % 6, 1))
        first = pairs.reduce_by_key(lambda a, b: a + b)
        second = first.map(lambda kv: (kv[0] % 2, kv[1])).reduce_by_key(
            lambda a, b: a + b
        )
        expected = sorted(second.collect())
        ctx.kill_worker(0)
        ctx.kill_worker(1)
        assert sorted(second.collect()) == expected

    def test_cached_partitions_rebuilt_from_lineage(self, ctx):
        source = ctx.parallelize(range(50), 4).map(lambda x: x * 2).cache()
        assert source.collect() == [x * 2 for x in range(50)]
        ctx.kill_worker(0)
        ctx.kill_worker(1)
        assert source.collect() == [x * 2 for x in range(50)]

    def test_recovery_spreads_across_survivors(self, ctx):
        pairs = ctx.parallelize(range(400), 16).map(lambda x: (x % 20, 1))
        reduced = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=16)
        reduced.collect()
        ctx.kill_worker(0)
        before = {w.worker_id: w.tasks_run for w in ctx.cluster.live_workers()}
        reduced.collect()
        after = {w.worker_id: w.tasks_run for w in ctx.cluster.live_workers()}
        # More than one survivor participated in recovery.
        participants = [wid for wid in after if after[wid] > before[wid]]
        assert len(participants) >= 2

    def test_all_workers_dead_raises(self, ctx):
        for worker_id in range(ctx.cluster.num_workers - 1):
            ctx.kill_worker(worker_id)
        with pytest.raises(NoLiveWorkersError):
            ctx.kill_worker(ctx.cluster.num_workers - 1)

    def test_elasticity_new_worker_schedulable(self, ctx):
        ctx.kill_worker(0)
        worker = ctx.add_worker()
        rdd = ctx.parallelize(range(100), 12)
        assert rdd.count() == 100
        assert worker.tasks_run > 0


class TestProfiles:
    def test_history_accumulates_and_resets(self, ctx):
        ctx.reset_profiles()
        ctx.parallelize(range(4), 2).count()
        ctx.parallelize(range(4), 2).count()
        assert len(ctx.profiles) == 2
        ctx.reset_profiles()
        assert ctx.profiles == []

    def test_metrics_record_volumes(self, ctx):
        pairs = ctx.parallelize(range(100), 4).map(lambda x: (x % 4, 1))
        pairs.reduce_by_key(lambda a, b: a + b).collect()
        profile = ctx.last_profile
        map_stage = next(s for s in profile.stages if s.is_shuffle_map)
        assert map_stage.records_in == 100
        assert map_stage.shuffle_write_bytes > 0
        reduce_stage = next(s for s in profile.stages if not s.is_shuffle_map)
        assert reduce_stage.records_out == 4

    def test_describe_is_readable(self, ctx):
        ctx.parallelize(range(4), 2).count()
        text = ctx.last_profile.describe()
        assert "stages" in text

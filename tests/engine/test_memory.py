"""Unified memory accounting invariants.

The accountant's contract: every byte reserved anywhere in the engine —
block-store puts, hash-aggregate state, join build sides, shuffle
buffers, broadcasts — is attributed, watermarked, and released, so

* the execution pool balances to exactly zero after every statement,
  whether it succeeded, was cancelled mid-flight, or retried under
  chaos (leaks would compound across a long-lived session);
* the storage pool mirrors the block stores byte for byte;
* pinned shuffle outputs never appear in a pressure event's victim
  list; and
* peak watermarks persisted to the event log round-trip through the
  history store equal to the live ledger, exactly.
"""

import numpy as np
import pytest

from repro import SharkContext
from repro.cluster.worker import BlockStore, approximate_size_bytes
from repro.columnar.batch import ColumnBatch, Vector
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.engine.lifecycle import LifecycleConfig
from repro.engine.memory import (
    DRIVER_WORKER,
    EXECUTION,
    POOLS,
    STORAGE,
    MemoryAccountant,
)
from repro.faults import FaultInjector
from repro.obs.history import HistoryStore


def _build_shark(**kwargs) -> SharkContext:
    shark = SharkContext(num_workers=3, cores_per_worker=2, **kwargs)
    shark.create_table(
        "readings",
        Schema.of(("bucket", STRING), ("day", INT), ("value", DOUBLE)),
        cached=True,
    )
    shark.create_table(
        "buckets", Schema.of(("bucket", STRING), ("region", STRING)),
        cached=True,
    )
    shark.load_rows(
        "readings",
        [(f"b{i % 6}", i % 15, float(i % 100)) for i in range(3000)],
        num_partitions=6,
    )
    shark.load_rows(
        "buckets",
        [(f"b{i}", "east" if i % 2 == 0 else "west") for i in range(6)],
        num_partitions=2,
    )
    return shark


QUERIES = [
    "SELECT COUNT(*) FROM readings",
    "SELECT bucket, COUNT(*) AS n, SUM(value) AS total "
    "FROM readings GROUP BY bucket",
    "SELECT b.region, COUNT(*) AS n FROM readings r "
    "JOIN buckets b ON r.bucket = b.bucket GROUP BY b.region",
]


class TestLedgerInvariants:
    def test_execution_pool_zero_after_success(self):
        shark = _build_shark()
        for query in QUERIES:
            shark.sql(query)
            # Task state and the join's broadcast build table are all
            # query-scoped: nothing may outlive the statement.
            assert shark.engine.memory.live_bytes(EXECUTION) == 0
        # Balanced books, not clamped-to-zero books: no release ever
        # exceeded what its owner still held.
        assert shark.engine.memory.clamped_release_bytes == 0

    def test_execution_pool_zero_after_cancellation(self):
        shark = _build_shark()
        shark.enable_lifecycle(LifecycleConfig(max_concurrent=2))
        victim = shark.submit_sql(
            QUERIES[1], name="victim"
        ).cancel_after_tasks(3)
        shark.submit_sql(QUERIES[0], name="survivor")
        shark.lifecycle.drain()
        assert victim.state == "cancelled"
        assert shark.engine.memory.live_bytes(EXECUTION) == 0
        assert shark.engine.memory.clamped_release_bytes == 0

    def test_execution_pool_zero_under_chaos(self):
        injector = FaultInjector(
            seed=11, transient_failure_rate=0.15, stragglers_per_stage=1
        )
        shark = _build_shark(fault_injector=injector)
        for query in QUERIES:
            shark.sql(query)
        # Failed attempts released their reservations in task teardown.
        assert shark.engine.memory.live_bytes(EXECUTION) == 0
        assert shark.engine.memory.clamped_release_bytes == 0

    def test_storage_pool_mirrors_block_stores(self):
        shark = _build_shark()
        for query in QUERIES:
            shark.sql(query)
        stored = sum(
            worker.blocks.used_bytes
            for worker in shark.engine.cluster.workers
        )
        assert shark.engine.memory.live_bytes(STORAGE) == stored

    def test_ledger_balances_traffic_totals(self):
        shark = _build_shark()
        for query in QUERIES:
            shark.sql(query)
        accountant = shark.engine.memory
        assert (
            accountant.total_reserved_bytes
            - accountant.total_released_bytes
            == accountant.live_bytes()
        )

    def test_release_clamps_never_negative(self):
        accountant = MemoryAccountant()
        accountant.reserve(0, EXECUTION, "op", 100)
        assert accountant.release(0, EXECUTION, "op", 500) == 100
        assert accountant.live_bytes() == 0
        # Over-releases are clamped but no longer silent: the excess is
        # tallied so invariant tests can assert it never happened.
        assert accountant.clamped_release_bytes == 400
        assert accountant.release(0, EXECUTION, "op", 1) == 0
        assert accountant.clamped_release_bytes == 401

    def test_resize_grows_and_shrinks(self):
        accountant = MemoryAccountant()
        # Contract: the signed delta actually applied — >= 0 on grow,
        # <= 0 on shrink (callers *add* it to their own tallies).
        assert accountant.resize(0, EXECUTION, "op", 300) == 300
        assert accountant.resize(0, EXECUTION, "op", -100) == -100
        assert accountant.live_bytes(EXECUTION) == 200
        assert accountant.peak_bytes(EXECUTION) == 300
        # Shrinking below zero clamps to what the owner holds.
        assert accountant.resize(0, EXECUTION, "op", -900) == -200
        assert accountant.live_bytes(EXECUTION) == 0


class TestPressure:
    def test_cap_breach_emits_pressure_but_never_fails(self):
        shark = _build_shark(memory_per_worker_bytes=4_000)
        result = dict(
            shark.sql(
                "SELECT bucket, COUNT(*) FROM readings GROUP BY bucket"
            ).rows
        )
        assert result == {f"b{i}": 500 for i in range(6)}
        assert shark.engine.memory.pressure_events > 0
        assert shark.metrics.value("memory.pressure.events") > 0

    def test_pinned_blocks_never_victim_candidates(self):
        store = BlockStore()
        store.put("shuffle_0_1", "x", size_bytes=500, pinned=True)
        store.put("rdd_3_0", "y", size_bytes=300)
        victims = store.victim_candidates()
        assert victims == [("rdd_3_0", 300)]
        assert store.pinned_ids() == {"shuffle_0_1"}

    def test_pressure_reports_only_evictable_victims(self):
        accountant = MemoryAccountant(capacity_bytes=1_000)
        store = BlockStore(accountant=accountant, worker_id=0)
        store.put("shuffle_0_0", "x", size_bytes=600, pinned=True)
        store.put("rdd_1_0", "y", size_bytes=300)
        # The victim list a breach will carry: the cached partition,
        # never the pinned block.
        victims = [bid for bid, __ in store.victim_candidates()]
        assert victims == ["rdd_1_0"]
        accountant.reserve(0, EXECUTION, "op", 500)
        assert accountant.pressure_events == 1
        # Arbitration then acted on exactly that list: the cached
        # partition was evicted, the pinned block survived.
        assert "rdd_1_0" not in store
        assert "shuffle_0_0" in store

    def test_headroom_tracks_cap(self):
        accountant = MemoryAccountant(capacity_bytes=1_000)
        accountant.reserve(0, STORAGE, "rdd_0", 400)
        assert accountant.ledger(0).headroom() == 600
        assert accountant.ledger(DRIVER_WORKER).headroom() is None


class TestWatermarkRoundTrip:
    def test_history_peaks_equal_live_ledger_exactly(self, tmp_path):
        path = tmp_path / "events.jsonl"
        shark = _build_shark()
        shark.enable_event_log(path, source="test", seed=1)
        for query in QUERIES:
            shark.sql(query)
        live = {
            (worker_id, pool): ledger.peak[pool]
            for worker_id, ledger in shark.engine.memory.ledgers.items()
            for pool in POOLS
        }
        shark.close_event_log()
        store = HistoryStore.load(path)
        assert store.memory_peaks() == live

    def test_history_surfaces_consumers_and_report(self, tmp_path):
        path = tmp_path / "events.jsonl"
        shark = _build_shark(memory_per_worker_bytes=4_000)
        shark.enable_event_log(path, source="test", seed=1)
        for query in QUERIES:
            shark.sql(query)
        shark.close_event_log()
        store = HistoryStore.load(path)
        owners = {owner for owner, __, __ in store.memory_top_consumers()}
        assert "batch_aggregate" in owners or "hash_aggregate" in owners
        assert store.memory_pressure_events() > 0
        report = store.memory_report()
        assert "memory report" in report
        assert "top consumers" in report
        churn = store.cache_churn()
        assert "cache.hit_ratio" in churn
        assert 0.0 <= churn["cache.hit_ratio"] <= 1.0


class TestSurfacing:
    def test_explain_analyze_has_memory_section(self):
        shark = _build_shark(memory_per_worker_bytes=4_000)
        text = shark.explain_analyze(
            "SELECT bucket, COUNT(*) FROM readings GROUP BY bucket"
        )
        assert "== memory ==" in text
        assert "peak watermark" in text
        assert "pressure events" in text

    def test_tpch_query_capped_has_memory_section(self):
        from repro.workloads import tpch

        shark = SharkContext(
            num_workers=2, cores_per_worker=2,
            memory_per_worker_bytes=32 * 1024,
        )
        data = tpch.generate_lineitem(2_000)
        shark.create_table("lineitem", data.schema, cached=True)
        shark.load_rows("lineitem", data.rows, num_partitions=4)
        text = shark.explain_analyze(tpch.TPCH_QUERIES["Q6"])
        assert "== memory ==" in text
        assert "peak watermark" in text

    def test_shell_memory_command(self):
        from repro.shell import Shell

        shark = _build_shark()
        shark.sql(QUERIES[1])
        out: list[str] = []
        shell = Shell(shark=shark, write=out.append)
        shell.feed(".memory")
        text = "\n".join(out)
        assert "worker 0" in text
        assert "storage" in text and "execution" in text

    def test_accountant_describe_lists_top_consumers(self):
        shark = _build_shark()
        shark.sql(QUERIES[2])
        described = shark.engine.memory.describe()
        assert "top consumers" in described
        assert "rdd_" in described


class TestFootprints:
    def test_array_vector_exact(self):
        data = np.arange(100, dtype=np.int64)
        assert Vector(data).memory_footprint_bytes() == data.nbytes
        valid = np.ones(100, dtype=bool)
        assert (
            Vector(data, valid).memory_footprint_bytes()
            == data.nbytes + valid.nbytes
        )

    def test_list_vector_counts_objects(self):
        small = Vector(["a", None, "b"]).memory_footprint_bytes()
        large = Vector(["a" * 100, None, "b"]).memory_footprint_bytes()
        assert large > small

    def test_column_batch_sums_entries(self):
        left = Vector(np.arange(10, dtype=np.float64))
        right = Vector(np.arange(10, dtype=np.int32))
        batch = ColumnBatch([left, right], num_rows=10)
        assert batch.memory_footprint_bytes() == (
            left.memory_footprint_bytes() + right.memory_footprint_bytes()
        )

    def test_lazy_column_counts_what_it_pins(self):
        from repro.columnar import ColumnarPartition

        schema = Schema.of(("bucket", STRING), ("v", INT))
        block = ColumnarPartition.from_rows(
            schema, [(f"b{i % 4}", i) for i in range(500)]
        )
        batch = ColumnBatch.from_block(block, [0, 1])
        lazy = batch.memory_footprint_bytes()
        assert lazy > 0
        batch.vector(1)  # decode one column: now counts the vector
        assert batch.memory_footprint_bytes() > 0

    def test_approximate_size_recurses_containers(self):
        flat = approximate_size_bytes({"k": 1})
        nested = approximate_size_bytes({"k": [1] * 1000})
        assert nested > flat + 500
        assert approximate_size_bytes({1, 2, 3}) > approximate_size_bytes(
            set()
        )

    @pytest.mark.parametrize("n", [0, 10, 10_000])
    def test_list_sampling_scales_with_length(self, n):
        estimate = approximate_size_bytes(list(range(n)))
        assert estimate >= n  # at least a byte per element once non-empty

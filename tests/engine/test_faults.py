"""Fault injection: retries, speculation, blacklisting, exactly-once.

Every test here is deterministic: the :class:`~repro.faults.FaultInjector`
draws each decision from an RNG keyed by (seed, injection site), so a
given seed injects exactly the same faults on every run.
"""

from __future__ import annotations

import pytest

from repro.engine import Accumulator, EngineContext
from repro.engine.scheduler import SchedulerConfig
from repro.errors import TaskError
from repro.faults import FaultInjector


def _word_counts(ctx: EngineContext) -> list:
    return sorted(
        ctx.parallelize(range(400), 8)
        .map(lambda i: (i % 13, 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(seed=11, transient_failure_rate=0.3)
        b = FaultInjector(seed=11, transient_failure_rate=0.3)
        decisions_a = [
            a.fail_task(s, p, 1, 0) for s in range(4) for p in range(8)
        ]
        decisions_b = [
            b.fail_task(s, p, 1, 0) for s in range(4) for p in range(8)
        ]
        assert decisions_a == decisions_b
        assert any(d is not None for d in decisions_a)

    def test_decisions_independent_of_order(self):
        a = FaultInjector(seed=11, transient_failure_rate=0.3)
        b = FaultInjector(seed=11, transient_failure_rate=0.3)
        sites = [(s, p) for s in range(4) for p in range(8)]
        forward = {site: a.fail_task(*site, 1, 0) for site in sites}
        backward = {
            site: b.fail_task(*site, 1, 0) for site in reversed(sites)
        }
        assert forward == backward

    def test_straggler_count_per_stage(self):
        injector = FaultInjector(seed=5, stragglers_per_stage=1)
        factors = [
            injector.straggler_factor(3, p, 8, attempt=1) for p in range(8)
        ]
        assert factors.count(injector.straggler_slowdown) == 1
        # Retried attempts run at normal speed (the copy escapes the
        # slow node).
        assert all(
            injector.straggler_factor(3, p, 8, attempt=2) == 1.0
            for p in range(8)
        )

    def test_corrupt_fetch_fires_once_per_site(self):
        injector = FaultInjector(seed=2, corrupt_fetch_rate=1.0)
        assert injector.corrupt_fetch(0, 0) is True
        assert injector.corrupt_fetch(0, 0) is False  # same site: once
        assert injector.injected_corruptions == 1
        # max_corrupt_fetches caps the total across sites.
        assert injector.corrupt_fetch(0, 1) is False


class TestRetryWithBackoff:
    def test_transient_failures_retry_and_succeed(self):
        ctx = EngineContext(
            num_workers=4,
            cores_per_worker=2,
            fault_injector=FaultInjector(seed=7, transient_failure_rate=0.2),
        )
        baseline = _word_counts(EngineContext(4, 2))
        assert _word_counts(ctx) == baseline
        assert ctx.metrics.value("tasks.retried") > 0
        assert ctx.last_profile.retried_tasks > 0

    def test_retry_events_and_backoff_spans_in_trace(self):
        ctx = EngineContext(
            num_workers=4,
            cores_per_worker=2,
            fault_injector=FaultInjector(seed=7, transient_failure_rate=0.2),
        )
        ctx.enable_tracing()
        _word_counts(ctx)
        retries = ctx.trace.events_named("task.retry")
        assert retries
        assert all(event.category == "recovery" for event in retries)
        backoffs = [
            span
            for span in ctx.trace.spans_in_category("recovery")
            if span.name.startswith("retry backoff")
        ]
        assert backoffs
        assert all(span.duration > 0 for span in backoffs)

    def test_backoff_is_capped_exponential(self):
        config = SchedulerConfig(
            retry_backoff_base_s=0.1, retry_backoff_cap_s=0.3
        )
        ctx = EngineContext(
            num_workers=4,
            cores_per_worker=2,
            fault_injector=FaultInjector(
                seed=3, transient_failure_rate=0.9, fail_attempts_ceiling=3,
                max_transient_failures=3,
            ),
            scheduler_config=config,
        )
        ctx.enable_tracing()
        ctx.parallelize(range(40), 2).map(lambda i: (i % 3, 1)).count()
        delays = [
            span.duration
            for span in ctx.trace.spans_in_category("recovery")
            if span.name.startswith("retry backoff")
        ]
        assert delays
        for attempt, delay in enumerate(sorted(delays), start=1):
            assert delay <= config.retry_backoff_cap_s + 1e-9

    def test_attempts_exhausted_raises_task_error(self):
        ctx = EngineContext(
            num_workers=4,
            cores_per_worker=2,
            fault_injector=FaultInjector(seed=1, flaky_workers=(0, 1, 2, 3)),
            scheduler_config=SchedulerConfig(max_task_attempts=2),
        )
        with pytest.raises(TaskError):
            ctx.parallelize(range(10), 2).count()
        assert ctx.metrics.value("tasks.failed") > 0


class TestBlacklisting:
    def test_flaky_worker_is_blacklisted_then_paroled(self):
        injector = FaultInjector(seed=7, flaky_workers=(1,))
        config = SchedulerConfig(
            blacklist_threshold=2, blacklist_probation_tasks=6
        )
        ctx = EngineContext(
            num_workers=4,
            cores_per_worker=2,
            fault_injector=injector,
            scheduler_config=config,
        )
        baseline = _word_counts(EngineContext(4, 2))
        assert _word_counts(ctx) == baseline
        cluster = ctx.cluster
        assert ctx.metrics.value("workers.blacklisted") > 0
        # Probation: after enough cluster-wide completions the worker is
        # schedulable again (and, being flaky, gets blacklisted again).
        blacklistings = ctx.metrics.value("workers.blacklisted")
        assert _word_counts(ctx) == baseline
        assert ctx.metrics.value("workers.blacklisted") >= blacklistings
        assert cluster.live_workers(), "blacklisting must not kill workers"

    def test_blacklisted_worker_not_assigned(self):
        ctx = EngineContext(num_workers=4, cores_per_worker=2)
        ctx.cluster.blacklist_worker(2, probation_tasks=1000)
        assigned = {
            ctx.cluster.assign_worker().worker_id for __ in range(12)
        }
        assert 2 not in assigned

    def test_all_blacklisted_still_schedules(self):
        ctx = EngineContext(num_workers=2, cores_per_worker=2)
        ctx.cluster.blacklist_worker(0, probation_tasks=1000)
        ctx.cluster.blacklist_worker(1, probation_tasks=1000)
        # Progress beats probation: scheduling must not deadlock.
        assert ctx.cluster.assign_worker() is not None
        assert ctx.metrics.value("blacklist.overridden") > 0


class TestSpeculation:
    def _straggler_ctx(self) -> EngineContext:
        return EngineContext(
            num_workers=4,
            cores_per_worker=2,
            fault_injector=FaultInjector(
                seed=7, stragglers_per_stage=1, straggler_slowdown=50.0
            ),
            scheduler_config=SchedulerConfig(
                speculation_min_peers=2, speculation_multiplier=1.2
            ),
        )

    def test_straggler_triggers_speculative_copy(self):
        ctx = self._straggler_ctx()
        ctx.enable_tracing()
        baseline = _word_counts(EngineContext(4, 2))
        assert _word_counts(ctx) == baseline
        assert ctx.metrics.value("tasks.speculative") > 0
        launches = ctx.trace.events_named("task.speculative")
        assert launches
        profile_total = sum(
            p.speculative_tasks for p in ctx.scheduler.history
        )
        assert profile_total > 0

    def test_speculative_copy_wins(self):
        ctx = self._straggler_ctx()
        ctx.enable_tracing()
        _word_counts(ctx)
        winners = [
            metrics
            for profile in ctx.scheduler.history
            for stage in profile.stages
            for metrics in stage.tasks
            if metrics.speculative
        ]
        # The straggler ran slowdown x 50; the copy at normal speed wins.
        assert winners, "expected at least one speculative winner"

    def test_speculation_off_without_injector(self):
        ctx = EngineContext(num_workers=4, cores_per_worker=2)
        _word_counts(ctx)
        assert ctx.metrics.value("tasks.speculative") == 0


class TestPermanentLossAndCorruption:
    def test_worker_kill_with_faults_matches_baseline(self):
        baseline = _word_counts(EngineContext(4, 2))
        ctx = EngineContext(
            num_workers=4,
            cores_per_worker=2,
            fault_injector=FaultInjector(
                seed=7,
                transient_failure_rate=0.1,
                kill_worker_id=3,
                kill_after_tasks=5,
            ),
        )
        assert _word_counts(ctx) == baseline
        assert not ctx.cluster.worker(3).alive
        recovered = sum(
            p.recovered_tasks for p in ctx.scheduler.history
        )
        assert recovered >= 0  # kill may land between stages

    def test_corrupt_fetch_forces_lineage_recovery(self):
        baseline = _word_counts(EngineContext(4, 2))
        ctx = EngineContext(
            num_workers=4,
            cores_per_worker=2,
            fault_injector=FaultInjector(seed=7, corrupt_fetch_rate=1.0),
        )
        assert _word_counts(ctx) == baseline
        assert ctx.metrics.value("shuffle.corrupt_fetches") == 1
        recovered = sum(
            p.recovered_tasks for p in ctx.scheduler.history
        )
        assert recovered > 0


class TestExactlyOnceAccumulators:
    def test_counts_unchanged_when_worker_dies_mid_stage(self):
        """The regression test of the accumulator double-counting bug."""

        def run(fault_injector=None) -> int:
            ctx = EngineContext(
                num_workers=4,
                cores_per_worker=2,
                fault_injector=fault_injector,
            )
            seen = Accumulator(0)
            (
                ctx.parallelize(range(600), 6)
                .map(lambda i: (seen.add(1), (i % 7, 1))[1])
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
            return seen.value

        clean = run()
        assert clean == 600
        chaotic = run(
            FaultInjector(
                seed=7,
                transient_failure_rate=0.15,
                kill_worker_id=2,
                kill_after_tasks=3,
            )
        )
        assert chaotic == clean

    def test_driver_side_add_still_applies_immediately(self):
        acc = Accumulator(0)
        acc.add(5)
        assert acc.value == 5

    def test_pde_statistics_identical_under_faults(self):
        def stats_of(fault_injector=None):
            ctx = EngineContext(
                num_workers=4,
                cores_per_worker=2,
                fault_injector=fault_injector,
            )
            shuffled = (
                ctx.parallelize(range(500), 5)
                .map(lambda i: (i % 11, i))
                .group_by_key()
            )
            shuffled.collect()
            dep = shuffled.shuffle_dep
            stats = ctx.shuffle_manager.stats(dep.shuffle_id)
            return stats.record_counts, stats.custom

        clean_counts, clean_custom = stats_of()
        chaos_counts, chaos_custom = stats_of(
            FaultInjector(
                seed=7, transient_failure_rate=0.2, corrupt_fetch_rate=0.3
            )
        )
        assert chaos_counts == clean_counts
        assert chaos_custom == clean_custom


class TestChaoticSqlResults:
    QUERIES = (
        "SELECT COUNT(*) FROM metrics",
        "SELECT g, COUNT(*) AS n, SUM(v) AS total FROM metrics GROUP BY g",
        "SELECT g, COUNT(*) AS n FROM metrics WHERE v > 40 GROUP BY g",
    )

    def _build(self, fault_injector=None):
        from repro import SharkContext
        from repro.datatypes import INT, STRING, Schema

        shark = SharkContext(
            num_workers=4,
            cores_per_worker=2,
            fault_injector=fault_injector,
        )
        shark.create_table(
            "metrics", Schema.of(("g", STRING), ("v", INT)), cached=True
        )
        shark.load_rows(
            "metrics",
            [(f"g{i % 9}", i % 97) for i in range(3000)],
            num_partitions=8,
        )
        return shark

    def test_benchmark_queries_identical_under_chaos(self):
        clean = self._build()
        chaos = self._build(
            FaultInjector(
                seed=7,
                transient_failure_rate=0.1,
                kill_worker_id=1,
                kill_after_tasks=15,
                stragglers_per_stage=1,
            )
        )
        for query in self.QUERIES:
            assert sorted(chaos.sql(query).rows) == sorted(
                clean.sql(query).rows
            ), query

    def test_profile_describe_surfaces_robustness_counters(self):
        chaos = self._build(
            FaultInjector(seed=7, transient_failure_rate=0.6)
        )
        chaos.engine.reset_profiles()
        chaos.sql(self.QUERIES[1])
        texts = [p.describe() for p in chaos.engine.profiles]
        assert any("retried tasks:" in text for text in texts)

    def test_explain_analyze_surfaces_retries(self):
        chaos = self._build(
            FaultInjector(seed=7, transient_failure_rate=0.6)
        )
        text = chaos.explain_analyze(self.QUERIES[1])
        assert "retried tasks (transient failures):" in text


class TestRecoveryTailFailure:
    def test_exhausted_recovery_closes_stage_span_with_error(self, ctx):
        """The recovery-tail bugfix: a stage that cannot materialize must
        close its span with an error status and count tasks.failed."""
        from repro.engine.scheduler import MAX_RECOVERY_ROUNDS
        from repro.errors import EngineError

        ctx.enable_tracing()
        rdd = ctx.parallelize(range(100), 4).map(lambda i: (i % 5, 1))
        shuffled = rdd.reduce_by_key(lambda a, b: a + b)
        dep = shuffled.shuffle_dep
        # Sabotage: report every map output as perpetually missing.
        manager = ctx.shuffle_manager
        original = manager.missing_maps
        manager.missing_maps = lambda shuffle_id: list(range(4))
        try:
            with pytest.raises(EngineError, match="recovery rounds"):
                shuffled.collect()
        finally:
            manager.missing_maps = original
        assert ctx.metrics.value("stages.failed") > 0
        assert ctx.metrics.value("tasks.failed") > 0
        error_spans = [
            span
            for span in ctx.trace.spans_in_category("stage")
            if span.args.get("status") == "error"
        ]
        assert error_spans
        assert all(span.end is not None for span in error_spans)
        assert MAX_RECOVERY_ROUNDS >= 1

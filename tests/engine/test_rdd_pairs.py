"""Pair-RDD operations: shuffles, joins, cogroup, key-wise combiners."""

from collections import Counter, defaultdict

from repro.engine.partitioner import HashPartitioner
from repro.engine.rdd import CoGroupedRDD, ShuffledRDD


class TestKeyValueBasics:
    def test_map_values(self, ctx):
        result = ctx.parallelize([(1, 2), (3, 4)], 2).map_values(
            lambda v: v * 10
        )
        assert result.collect() == [(1, 20), (3, 40)]

    def test_flat_map_values(self, ctx):
        result = ctx.parallelize([(1, "ab")], 1).flat_map_values(list)
        assert result.collect() == [(1, "a"), (1, "b")]

    def test_keys_values(self, ctx):
        rdd = ctx.parallelize([(1, "a"), (2, "b")], 2)
        assert rdd.keys().collect() == [1, 2]
        assert rdd.values().collect() == ["a", "b"]

    def test_count_by_key(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("a", 2), ("b", 3)], 2)
        assert rdd.count_by_key() == {"a": 2, "b": 1}

    def test_collect_as_map(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("b", 2)], 2)
        assert rdd.collect_as_map() == {"a": 1, "b": 2}


class TestReduceByKey:
    def test_matches_counter(self, ctx):
        words = ["a", "b", "a", "c", "b", "a"] * 20
        pairs = ctx.parallelize([(w, 1) for w in words], 8)
        result = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert result == dict(Counter(words))

    def test_respects_num_partitions(self, ctx):
        pairs = ctx.parallelize([(i, 1) for i in range(50)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=3)
        assert reduced.num_partitions == 3
        assert len(reduced.collect()) == 50

    def test_noncommutative_order_within_key(self, ctx):
        # fold_by_key with list append preserves per-key multiplicity.
        pairs = ctx.parallelize([("k", i) for i in range(10)], 5)
        result = pairs.fold_by_key(0, lambda a, b: a + b).collect()
        assert result == [("k", 45)]

    def test_reshuffle_skipped_when_partitioned(self, ctx):
        partitioner = HashPartitioner(4)
        pairs = ctx.parallelize([(i, 1) for i in range(40)], 4).partition_by(
            partitioner
        )
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        # Same partitioner: combine happens locally, no new shuffle node.
        assert not isinstance(reduced, ShuffledRDD)
        assert len(reduced.collect()) == 40


class TestAggregations:
    def test_aggregate_by_key(self, ctx):
        pairs = ctx.parallelize(
            [("a", 1), ("a", 5), ("b", 2)], 3
        )
        result = dict(
            pairs.aggregate_by_key(
                (0, 0),
                lambda acc, v: (acc[0] + v, acc[1] + 1),
                lambda x, y: (x[0] + y[0], x[1] + y[1]),
            ).collect()
        )
        assert result == {"a": (6, 2), "b": (2, 1)}

    def test_group_by_key(self, ctx):
        pairs = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 3)
        result = {k: sorted(v) for k, v in pairs.group_by_key().collect()}
        assert result == {"a": [1, 3], "b": [2]}

    def test_group_by(self, ctx):
        result = ctx.parallelize(range(10), 4).group_by(lambda x: x % 3)
        grouped = {k: sorted(v) for k, v in result.collect()}
        assert grouped == {0: [0, 3, 6, 9], 1: [1, 4, 7], 2: [2, 5, 8]}

    def test_combine_by_key_custom(self, ctx):
        pairs = ctx.parallelize([("x", 3), ("x", 4), ("y", 9)], 2)
        combined = pairs.combine_by_key(
            create_combiner=lambda v: [v],
            merge_value=lambda acc, v: acc + [v],
            merge_combiners=lambda a, b: a + b,
        )
        result = {k: sorted(v) for k, v in combined.collect()}
        assert result == {"x": [3, 4], "y": [9]}


class TestJoins:
    def setup_method(self):
        self.left_data = [(1, "a"), (2, "b"), (2, "bb"), (3, "c")]
        self.right_data = [(2, 20), (3, 30), (3, 33), (4, 40)]

    def _reference_inner(self):
        right = defaultdict(list)
        for k, v in self.right_data:
            right[k].append(v)
        return sorted(
            (k, (lv, rv))
            for k, lv in self.left_data
            for rv in right.get(k, [])
        )

    def test_inner_join(self, ctx):
        left = ctx.parallelize(self.left_data, 2)
        right = ctx.parallelize(self.right_data, 3)
        assert sorted(left.join(right).collect()) == self._reference_inner()

    def test_left_outer_join(self, ctx):
        left = ctx.parallelize(self.left_data, 2)
        right = ctx.parallelize(self.right_data, 2)
        result = sorted(left.left_outer_join(right).collect())
        assert (1, ("a", None)) in result
        assert (2, ("b", 20)) in result
        assert all(k != 4 for k, __ in result)

    def test_right_outer_join(self, ctx):
        left = ctx.parallelize(self.left_data, 2)
        right = ctx.parallelize(self.right_data, 2)
        result = sorted(left.right_outer_join(right).collect())
        assert (4, (None, 40)) in result
        assert all(k != 1 for k, __ in result)

    def test_full_outer_join(self, ctx):
        left = ctx.parallelize(self.left_data, 2)
        right = ctx.parallelize(self.right_data, 2)
        result = sorted(left.full_outer_join(right).collect())
        assert (1, ("a", None)) in result
        assert (4, (None, 40)) in result

    def test_join_empty_side(self, ctx):
        left = ctx.parallelize(self.left_data, 2)
        empty = ctx.parallelize([], 1)
        assert left.join(empty).collect() == []

    def test_cogroup_arity(self, ctx):
        left = ctx.parallelize([(1, "a")], 1)
        right = ctx.parallelize([(1, 10), (2, 20)], 1)
        result = dict(left.cogroup(right).collect())
        assert result[1] == (["a"], [10])
        assert result[2] == ([], [20])


class TestCopartitionedNarrowJoin:
    def test_cogroup_uses_narrow_deps_when_copartitioned(self, ctx):
        partitioner = HashPartitioner(4)
        left = ctx.parallelize([(i, i) for i in range(30)], 4).partition_by(
            partitioner
        ).cache()
        right = ctx.parallelize(
            [(i, i * 10) for i in range(30)], 4
        ).partition_by(partitioner).cache()
        left.count()
        right.count()
        grouped = CoGroupedRDD(ctx, [left, right], partitioner)
        assert grouped.uses_only_narrow_deps
        assert len(grouped.collect()) == 30

    def test_mismatched_partitioner_shuffles(self, ctx):
        partitioner = HashPartitioner(4)
        left = ctx.parallelize([(1, 1)], 1).partition_by(partitioner)
        right = ctx.parallelize([(1, 2)], 1)
        grouped = CoGroupedRDD(ctx, [left, right], partitioner)
        assert not grouped.uses_only_narrow_deps

    def test_join_result_matches_shuffle_join(self, ctx):
        data_left = [(i % 7, i) for i in range(50)]
        data_right = [(i % 7, i * 2) for i in range(50)]
        partitioner = HashPartitioner(3)
        narrow_left = ctx.parallelize(data_left, 3).partition_by(partitioner)
        narrow_right = ctx.parallelize(data_right, 3).partition_by(partitioner)
        wide_left = ctx.parallelize(data_left, 4)
        wide_right = ctx.parallelize(data_right, 5)
        assert sorted(narrow_left.join(narrow_right).collect()) == sorted(
            wide_left.join(wide_right).collect()
        )


class TestSortByKey:
    def test_sorts_pairs(self, ctx):
        pairs = [(3, "c"), (1, "a"), (2, "b")]
        result = ctx.parallelize(pairs, 2).sort_by_key().collect()
        assert result == [(1, "a"), (2, "b"), (3, "c")]

"""Partitioner behaviour: stability, ranges, equality."""

import pytest

from repro.engine.partitioner import (
    FunctionPartitioner,
    HashPartitioner,
    RangePartitioner,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("shark") == stable_hash("shark")

    def test_int_is_identity_like(self):
        assert stable_hash(5) == 5
        assert stable_hash(0) == 0

    def test_negative_int_is_nonnegative(self):
        assert stable_hash(-17) >= 0

    def test_none_hashes_to_zero(self):
        assert stable_hash(None) == 0

    def test_bool_distinct_from_general_ints_semantics(self):
        assert stable_hash(True) == 1
        assert stable_hash(False) == 0

    def test_tuple_order_sensitive(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_float_and_bytes_supported(self):
        assert stable_hash(3.14) >= 0
        assert stable_hash(b"abc") >= 0

    def test_arbitrary_objects_fall_back_to_repr(self):
        class Weird:
            def __repr__(self):
                return "weird!"

        assert stable_hash(Weird()) == stable_hash(Weird())


class TestHashPartitioner:
    def test_rejects_nonpositive_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_partitions_in_range(self):
        partitioner = HashPartitioner(7)
        for key in ["a", "b", 1, 2.5, None, ("x", 1)]:
            assert 0 <= partitioner.partition(key) < 7

    def test_same_key_same_partition(self):
        partitioner = HashPartitioner(16)
        assert partitioner.partition("key") == partitioner.partition("key")

    def test_equality_by_type_and_count(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(8)
        assert hash(HashPartitioner(4)) == hash(HashPartitioner(4))

    def test_spreads_keys(self):
        partitioner = HashPartitioner(8)
        used = {partitioner.partition(f"key{i}") for i in range(200)}
        assert len(used) == 8


class TestRangePartitioner:
    def test_bounds_define_partitions(self):
        partitioner = RangePartitioner([10, 20, 30])
        assert partitioner.num_partitions == 4
        assert partitioner.partition(5) == 0
        assert partitioner.partition(10) == 0
        assert partitioner.partition(15) == 1
        assert partitioner.partition(35) == 3

    def test_descending(self):
        partitioner = RangePartitioner([10, 20], ascending=False)
        assert partitioner.partition(5) == 2
        assert partitioner.partition(25) == 0

    def test_equality_includes_bounds(self):
        assert RangePartitioner([1, 2]) == RangePartitioner([1, 2])
        assert RangePartitioner([1, 2]) != RangePartitioner([1, 3])
        assert RangePartitioner([1, 2]) != RangePartitioner(
            [1, 2], ascending=False
        )


class TestFunctionPartitioner:
    def test_uses_function_modulo(self):
        partitioner = FunctionPartitioner(4, lambda key: key * 3)
        assert partitioner.partition(2) == 6 % 4

    def test_equality_is_identity_of_function(self):
        fn = lambda key: key  # noqa: E731
        assert FunctionPartitioner(4, fn) == FunctionPartitioner(4, fn)
        assert FunctionPartitioner(4, fn) != FunctionPartitioner(
            4, lambda key: key
        )

    def test_label_makes_distinct_functions_equal(self):
        """The co-partitioning contract: a caller-supplied label asserts
        two functions partition identically, so rebuilt plans compare
        equal (the id()-based hash defeated this)."""
        a = FunctionPartitioner(4, lambda key: key * 3, label="x3")
        b = FunctionPartitioner(4, lambda key: key * 3, label="x3")
        assert a == b
        assert hash(a) == hash(b)

    def test_label_mismatch_is_unequal(self):
        a = FunctionPartitioner(4, lambda key: key, label="id")
        b = FunctionPartitioner(4, lambda key: key, label="other")
        assert a != b

    def test_label_with_different_num_partitions_is_unequal(self):
        a = FunctionPartitioner(4, lambda key: key, label="id")
        b = FunctionPartitioner(8, lambda key: key, label="id")
        assert a != b

    def test_labelled_never_equals_unlabelled(self):
        fn = lambda key: key  # noqa: E731
        assert FunctionPartitioner(4, fn, label="id") != FunctionPartitioner(
            4, fn
        )

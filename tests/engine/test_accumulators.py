"""PDE statistics collectors and driver accumulators."""

import pytest

from repro.engine.accumulator import (
    Accumulator,
    HeavyHittersStat,
    HistogramStat,
    PartitionSizeStat,
    RecordCountStat,
    log_decode_size,
    log_encode_size,
)


class TestAccumulator:
    def test_default_add(self):
        acc = Accumulator(0)
        acc.add(3)
        acc.add(4)
        assert acc.value == 7

    def test_custom_add(self):
        acc = Accumulator([], add=lambda a, b: a + [b])
        acc.add("x")
        acc.add("y")
        assert acc.value == ["x", "y"]

    def test_reset(self):
        acc = Accumulator(5)
        acc.reset(0)
        assert acc.value == 0


class TestLogEncoding:
    @pytest.mark.parametrize(
        "size", [1, 7, 128, 4096, 10**6, 123456789, 32 * 1024**3]
    )
    def test_relative_error_within_ten_percent(self, size):
        decoded = log_decode_size(log_encode_size(size))
        assert abs(decoded - size) / size <= 0.11

    def test_monotonic(self):
        codes = [log_encode_size(2**i) for i in range(1, 35)]
        assert codes == sorted(codes)


class TestPartitionSizeStat:
    def test_observe_returns_single_byte_code(self):
        stat = PartitionSizeStat()
        code = stat.observe([("k", "v" * 100)] * 10)
        assert 1 <= code <= 255

    def test_merge_approximates_sum(self):
        stat = PartitionSizeStat(size_of=lambda record: 1000)
        left = stat.observe([None] * 10)   # ~10 KB
        right = stat.observe([None] * 10)  # ~10 KB
        merged_bytes = log_decode_size(stat.merge(left, right))
        assert 16000 < merged_bytes < 24000

    def test_empty_observation(self):
        assert PartitionSizeStat(size_of=lambda r: 0).observe([]) == 0


class TestRecordCountStat:
    def test_counts_and_merges(self):
        stat = RecordCountStat()
        assert stat.observe(iter(range(7))) == 7
        assert stat.merge(7, 5) == 12


class TestHeavyHitters:
    def test_finds_dominant_key(self):
        stat = HeavyHittersStat(capacity=4)
        records = [("hot", 1)] * 500 + [(f"cold{i}", 1) for i in range(200)]
        partial = stat.observe(records)
        assert max(partial, key=partial.get) == "hot"
        assert len(partial) <= 4

    def test_merge_caps_capacity(self):
        stat = HeavyHittersStat(capacity=3)
        left = {"a": 10, "b": 5, "c": 1}
        right = {"d": 20, "e": 2, "a": 3}
        merged = stat.merge(left, right)
        assert len(merged) <= 3
        assert "d" in merged and "a" in merged

    def test_space_saving_overestimates_only(self):
        # SpaceSaving counts are upper bounds of true frequencies.
        stat = HeavyHittersStat(capacity=2)
        records = [("x", 1)] * 50 + [("y", 1)] * 30 + [("z", 1)] * 5
        partial = stat.observe(records)
        if "x" in partial:
            assert partial["x"] >= 50

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            HeavyHittersStat(capacity=0)

    def test_custom_key_function(self):
        stat = HeavyHittersStat(capacity=4, key_of=lambda record: record)
        partial = stat.observe(["a", "a", "b"])
        assert partial["a"] == 2


class TestHistogram:
    def test_bucket_assignment(self):
        stat = HistogramStat(0.0, 100.0, num_buckets=10)
        assert stat.bucket_of(-5) == 0
        assert stat.bucket_of(5) == 0
        assert stat.bucket_of(55) == 5
        assert stat.bucket_of(150) == 9

    def test_observe_and_merge(self):
        stat = HistogramStat(0.0, 10.0, num_buckets=5)
        left = stat.observe([1.0, 3.0, 9.0])
        right = stat.observe([1.5])
        merged = stat.merge(left, right)
        assert sum(merged) == 4
        assert merged[0] == 2  # 1.0 and 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HistogramStat(5.0, 5.0)
        with pytest.raises(ValueError):
            HistogramStat(0.0, 1.0, num_buckets=0)

    def test_custom_value_function(self):
        stat = HistogramStat(
            0.0, 10.0, num_buckets=2, value_of=lambda record: record[1]
        )
        counts = stat.observe([("a", 1.0), ("b", 9.0)])
        assert counts == [1, 1]

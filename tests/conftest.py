"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import SharkContext  # noqa: E402
from repro.engine import EngineContext  # noqa: E402


@pytest.fixture
def ctx() -> EngineContext:
    """A small engine context: 4 workers x 2 cores."""
    return EngineContext(num_workers=4, cores_per_worker=2)


@pytest.fixture
def shark() -> SharkContext:
    """A SharkContext over 4 virtual workers."""
    return SharkContext(num_workers=4, cores_per_worker=2)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import signal
import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import SharkContext  # noqa: E402
from repro.engine import EngineContext  # noqa: E402

#: Hang guard: an admission/cancellation deadlock in the cooperative
#: lifecycle scheduler must fail the test run fast, not hang it.  Must
#: exceed the example-subprocess timeouts in test_examples.py (240s) so
#: slow-but-progressing tests never false-positive.  CI additionally
#: installs pytest-timeout and sets job-level timeout-minutes.
_TEST_TIMEOUT_S = 300


@pytest.fixture(autouse=True)
def _hang_guard():
    if (
        not hasattr(signal, "SIGALRM")
        or signal.getsignal(signal.SIGALRM) not in
        (signal.SIG_DFL, signal.SIG_IGN, None)
    ):
        # No SIGALRM (non-POSIX) or something else owns it: skip the guard.
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"test exceeded the {_TEST_TIMEOUT_S}s hang guard "
            "(cooperative-scheduling deadlock?)"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def ctx() -> EngineContext:
    """A small engine context: 4 workers x 2 cores."""
    return EngineContext(num_workers=4, cores_per_worker=2)


@pytest.fixture
def shark() -> SharkContext:
    """A SharkContext over 4 virtual workers."""
    return SharkContext(num_workers=4, cores_per_worker=2)

"""Integration: the paper's fault-tolerance guarantees (Section 2.3).

1. Loss of any set of workers is tolerated; lost tasks re-execute and lost
   RDD partitions recompute from lineage, *within* the running query.
2. Recovery parallelizes across the cluster.
3. Determinism makes recomputation safe (same results every time).
4. Recovery spans combined SQL + ML pipelines (one lineage graph).
"""

import numpy as np
import pytest

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.ml import LabeledPoint, LogisticRegression


@pytest.fixture
def loaded_shark():
    shark = SharkContext(num_workers=5, cores_per_worker=2)
    shark.create_table(
        "metrics",
        Schema.of(("day", INT), ("group_key", STRING), ("value", DOUBLE)),
        cached=True,
    )
    rows = [
        (i % 20, f"g{i % 13}", float(i % 97))
        for i in range(4000)
    ]
    shark.load_rows("metrics", rows, num_partitions=10)
    return shark, rows


GROUP_QUERY = (
    "SELECT group_key, COUNT(*), SUM(value) FROM metrics GROUP BY group_key"
)


class TestGuaranteeOne:
    """Any set of worker losses; recovery happens inside the query."""

    def test_single_worker_loss_between_queries(self, loaded_shark):
        shark, rows = loaded_shark
        before = sorted(shark.sql(GROUP_QUERY).rows)
        shark.kill_worker(0)
        assert sorted(shark.sql(GROUP_QUERY).rows) == before

    def test_multiple_worker_losses(self, loaded_shark):
        shark, rows = loaded_shark
        before = sorted(shark.sql(GROUP_QUERY).rows)
        shark.kill_worker(0)
        shark.kill_worker(1)
        shark.kill_worker(2)
        assert sorted(shark.sql(GROUP_QUERY).rows) == before

    def test_mid_query_loss_does_not_restart_query(self, loaded_shark):
        shark, rows = loaded_shark
        expected = sorted(shark.sql(GROUP_QUERY).rows)
        base = shark.engine.cluster.total_tasks_completed
        shark.inject_failure(worker_id=3, after_tasks=base + 5)
        result = shark.sql(GROUP_QUERY)
        assert sorted(result.rows) == expected
        # The engine recovered rather than resubmitting: the profile shows
        # recovered (re-executed) tasks, not a fresh full run.
        recovered = sum(
            profile.recovered_tasks for profile in shark.engine.profiles
        )
        assert recovered > 0

    def test_loss_during_multi_stage_join(self, loaded_shark):
        shark, rows = loaded_shark
        query = (
            "SELECT a.group_key, COUNT(*) FROM metrics a "
            "JOIN metrics b ON a.group_key = b.group_key "
            "WHERE a.day = 1 AND b.day = 2 GROUP BY a.group_key"
        )
        expected = sorted(shark.sql(query).rows)
        base = shark.engine.cluster.total_tasks_completed
        shark.inject_failure(worker_id=1, after_tasks=base + 7)
        assert sorted(shark.sql(query).rows) == expected


class TestGuaranteeTwo:
    """Recovery is parallelized across survivors."""

    def test_lost_partitions_rebuilt_on_many_workers(self, loaded_shark):
        shark, rows = loaded_shark
        shark.sql(GROUP_QUERY)  # populate caches and shuffle outputs
        before_tasks = {
            w.worker_id: w.tasks_run
            for w in shark.engine.cluster.live_workers()
        }
        shark.kill_worker(0)
        shark.sql(GROUP_QUERY)
        participants = [
            w.worker_id
            for w in shark.engine.cluster.live_workers()
            if w.tasks_run > before_tasks.get(w.worker_id, 0)
        ]
        assert len(participants) >= 2


class TestGuaranteeThree:
    """Deterministic recomputation: recovered results are identical."""

    def test_repeated_recovery_identical(self, loaded_shark):
        shark, rows = loaded_shark
        runs = []
        for worker_id in (0, 1):
            shark.kill_worker(worker_id)
            runs.append(sorted(shark.sql(GROUP_QUERY).rows))
        assert runs[0] == runs[1]


class TestGuaranteeFour:
    """One lineage graph covers SQL and ML; failures anywhere recover."""

    def test_sql_to_ml_pipeline_recovers(self, loaded_shark):
        shark, rows = loaded_shark
        table = shark.sql2rdd(
            "SELECT day, value FROM metrics WHERE value > 10"
        )

        def extract(row):
            label = 1.0 if row.get_int("day") % 2 else -1.0
            return LabeledPoint(
                label,
                np.array([row.get_double("value") / 100.0, 1.0]),
            )

        features = table.map_rows(extract).cache()
        baseline = LogisticRegression(iterations=3, seed=11).fit(features)
        base = shark.engine.cluster.total_tasks_completed
        shark.inject_failure(worker_id=2, after_tasks=base + 3)
        recovered = LogisticRegression(iterations=3, seed=11).fit(features)
        assert np.allclose(baseline.weights, recovered.weights)

    def test_cached_table_loss_recomputed_for_ml(self, loaded_shark):
        shark, rows = loaded_shark
        features = shark.sql2rdd(
            "SELECT value FROM metrics"
        ).map_rows(
            lambda row: LabeledPoint(
                1.0 if row.get_double("value") > 48 else -1.0,
                np.array([row.get_double("value"), 1.0]),
            )
        ).cache()
        features.count()
        shark.kill_worker(4)
        model = LogisticRegression(iterations=2, seed=3).fit(features)
        assert np.all(np.isfinite(model.weights))


class TestElasticity:
    """Section 7.2: nodes can join mid-session and receive work."""

    def test_new_worker_participates(self, loaded_shark):
        shark, rows = loaded_shark
        worker = shark.engine.add_worker(cores=2)
        # A fresh job with unpinned tasks spreads to the new node (pending
        # work "automatically spread onto" joining nodes, Section 7.2).
        shark.engine.parallelize(range(240), 24).map(lambda x: x + 1).count()
        assert worker.tasks_run > 0

    def test_shrink_then_grow(self, loaded_shark):
        shark, rows = loaded_shark
        expected = sorted(shark.sql(GROUP_QUERY).rows)
        shark.kill_worker(0)
        shark.kill_worker(1)
        shark.engine.add_worker(cores=2)
        assert sorted(shark.sql(GROUP_QUERY).rows) == expected

"""Differential fuzzing: Shark vs the Hive baseline on generated queries.

The two systems share a front end but execute through completely different
machinery (RDD dataflow with PDE/broadcast/pruning vs MapReduce job
chains).  Any row difference on any generated query is a bug in one of
them — the same oracle the paper leans on by being Hive-compatible.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SharkContext
from repro.baselines import HiveExecutor
from repro.datatypes import DOUBLE, INT, STRING, Schema


@pytest.fixture(scope="module")
def systems():
    shark = SharkContext(num_workers=3)
    shark.create_table(
        "f",
        Schema.of(("k", INT), ("g", STRING), ("x", DOUBLE), ("y", INT)),
        cached=True,
    )
    rows = [
        (i % 23, f"g{i % 5}", round((i * 7 % 97) / 3.0, 3), i % 11)
        for i in range(400)
    ]
    shark.load_rows("f", rows)
    shark.create_table("d", Schema.of(("k", INT), ("label", STRING)))
    shark.load_rows("d", [(i, f"label{i}") for i in range(0, 23, 2)])

    def table_rows(entry):
        rdd = shark.session._scan_rdd(entry)
        return shark.engine.run_job(rdd, list)

    hive = HiveExecutor(
        shark.session.catalog, shark.store, shark.session.registry,
        table_rows=table_rows,
    )
    return shark, hive


# --- tiny query grammar ----------------------------------------------------

columns = st.sampled_from(["k", "x", "y"])
string_column = st.just("g")
comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def predicates(draw) -> str:
    kind = draw(st.integers(0, 4))
    if kind == 0:
        column = draw(columns)
        op = draw(comparison_ops)
        value = draw(st.integers(-5, 30))
        return f"{column} {op} {value}"
    if kind == 1:
        value = draw(st.integers(0, 5))
        return f"g = 'g{value}'"
    if kind == 2:
        low = draw(st.integers(0, 15))
        span = draw(st.integers(0, 10))
        return f"k BETWEEN {low} AND {low + span}"
    if kind == 3:
        values = draw(
            st.lists(st.integers(0, 25), min_size=1, max_size=4)
        )
        inner = ", ".join(str(v) for v in values)
        return f"k IN ({inner})"
    return "g LIKE 'g%'"


@st.composite
def where_clauses(draw) -> str:
    parts = draw(st.lists(predicates(), min_size=1, max_size=3))
    joiners = draw(
        st.lists(
            st.sampled_from(["AND", "OR"]),
            min_size=len(parts) - 1,
            max_size=len(parts) - 1,
        )
    )
    clause = parts[0]
    for joiner, part in zip(joiners, parts[1:]):
        clause = f"({clause}) {joiner} ({part})"
    return clause


@st.composite
def select_queries(draw) -> str:
    where = draw(where_clauses())
    shape = draw(st.integers(0, 3))
    if shape == 0:
        return f"SELECT k, g, x FROM f WHERE {where}"
    if shape == 1:
        agg = draw(st.sampled_from(["COUNT(*)", "SUM(y)", "AVG(x)", "MIN(x)"]))
        return f"SELECT g, {agg} FROM f WHERE {where} GROUP BY g"
    if shape == 2:
        return (
            f"SELECT k, COUNT(*), SUM(x) FROM f WHERE {where} "
            f"GROUP BY k HAVING COUNT(*) > 1"
        )
    # Join shape: qualified filters (k exists on both sides).
    cutoff = draw(st.integers(-5, 30))
    group = draw(st.integers(0, 5))
    return (
        f"SELECT f.g, d.label FROM f JOIN d ON f.k = d.k "
        f"WHERE f.x > {cutoff} OR f.g = 'g{group}'"
    )


def _normalize(rows):
    out = []
    for row in rows:
        out.append(
            tuple(
                round(v, 6) if isinstance(v, float) else v for v in row
            )
        )
    return sorted(out, key=repr)


class TestDifferentialFuzz:
    @given(select_queries())
    @settings(max_examples=60, deadline=None)
    def test_shark_and_hive_agree(self, systems, query):
        shark, hive = systems
        shark_rows = shark.sql(query).rows
        hive_rows = hive.execute(query).rows
        assert _normalize(shark_rows) == _normalize(hive_rows), query

    @given(where_clauses())
    @settings(max_examples=30, deadline=None)
    def test_codegen_and_interpreter_agree(self, systems, where):
        from dataclasses import replace

        shark, __ = systems
        query = f"SELECT k, x FROM f WHERE {where}"
        compiled_rows = _normalize(shark.sql(query).rows)
        original = shark.session.config
        try:
            shark.session.config = replace(original, enable_codegen=False)
            interpreted_rows = _normalize(shark.sql(query).rows)
        finally:
            shark.session.config = original
        assert compiled_rows == interpreted_rows, where

"""The shared type system."""

from datetime import date, datetime

import pytest

from repro.datatypes import (
    ArrayType,
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    Field,
    INT,
    MapType,
    STRING,
    Schema,
    StructType,
    TIMESTAMP,
    infer_type,
    is_numeric,
    promote,
    type_by_name,
)
from repro.errors import AnalysisError


class TestTypeLookup:
    def test_aliases(self):
        assert type_by_name("INT") == INT
        assert type_by_name("integer") == INT
        assert type_by_name("varchar") == STRING
        assert type_by_name("long") == BIGINT
        assert type_by_name("float") == DOUBLE
        assert type_by_name("bool") == BOOLEAN

    def test_unknown_type(self):
        with pytest.raises(AnalysisError):
            type_by_name("geometry")


class TestPromotion:
    def test_numeric_ladder(self):
        assert promote(INT, INT) == INT
        assert promote(INT, BIGINT) == BIGINT
        assert promote(BIGINT, DOUBLE) == DOUBLE
        assert promote(INT, DOUBLE) == DOUBLE

    def test_same_type_identity(self):
        assert promote(STRING, STRING) == STRING

    def test_incompatible_rejected(self):
        with pytest.raises(AnalysisError):
            promote(STRING, INT)

    def test_is_numeric(self):
        assert is_numeric(INT) and is_numeric(DOUBLE) and is_numeric(BIGINT)
        assert not is_numeric(STRING)
        assert not is_numeric(BOOLEAN)


class TestInference:
    def test_primitives(self):
        assert infer_type(True) == BOOLEAN
        assert infer_type(5) == INT
        assert infer_type(2**40) == BIGINT
        assert infer_type(1.5) == DOUBLE
        assert infer_type("s") == STRING
        assert infer_type(date(2000, 1, 1)) == DATE
        assert infer_type(datetime(2000, 1, 1)) == TIMESTAMP

    def test_complex(self):
        array = infer_type(["a"])
        assert isinstance(array, ArrayType)
        assert array.element_type == STRING
        mapping = infer_type({"k": 1})
        assert isinstance(mapping, MapType)
        assert mapping.value_type == INT

    def test_empty_containers_default(self):
        assert infer_type([]).element_type == STRING
        assert infer_type({}).key_type == STRING

    def test_uninferable(self):
        with pytest.raises(AnalysisError):
            infer_type(object())


class TestValidation:
    def test_validate_per_type(self):
        assert INT.validate(3)
        assert not INT.validate(True)  # bool is not an INT
        assert DOUBLE.validate(3) and DOUBLE.validate(3.5)
        assert BOOLEAN.validate(False)
        assert DATE.validate(date(2020, 1, 1))
        assert not DATE.validate(datetime(2020, 1, 1, 1))
        assert TIMESTAMP.validate(datetime(2020, 1, 1, 1))

    def test_str_forms(self):
        assert str(INT) == "INT"
        assert str(ArrayType(element_type=INT)) == "ARRAY<INT>"
        assert str(MapType(key_type=STRING, value_type=INT)) == (
            "MAP<STRING,INT>"
        )
        struct = StructType(
            field_names=("a",), field_types=(INT,)
        )
        assert "a:INT" in str(struct)


class TestSchema:
    def test_of_and_lookup(self):
        schema = Schema.of(("A", INT), ("b", STRING))
        assert schema.index_of("a") == 0
        assert schema.index_of("B") == 1
        assert "a" in schema and "missing" not in schema
        assert schema.field("b").data_type == STRING

    def test_duplicate_names_rejected(self):
        with pytest.raises(AnalysisError):
            Schema.of(("x", INT), ("X", STRING))

    def test_unknown_column_error_lists_names(self):
        schema = Schema.of(("a", INT))
        with pytest.raises(AnalysisError, match="available"):
            schema.index_of("zz")

    def test_select_subset(self):
        schema = Schema.of(("a", INT), ("b", STRING), ("c", DOUBLE))
        narrowed = schema.select(["c", "a"])
        assert narrowed.names == ["c", "a"]
        assert narrowed.types == [DOUBLE, INT]

    def test_from_rows_inference(self):
        schema = Schema.from_rows(["x", "y"], [(1, "s")])
        assert schema.types == [INT, STRING]

    def test_from_rows_empty_defaults_string(self):
        schema = Schema.from_rows(["x"], [])
        assert schema.types == [STRING]

    def test_from_rows_width_mismatch(self):
        with pytest.raises(AnalysisError):
            Schema.from_rows(["x", "y"], [(1,)])

    def test_equality_and_iteration(self):
        left = Schema.of(("a", INT))
        right = Schema.of(("a", INT))
        assert left == right
        assert len(left) == 1
        assert [f.name for f in left] == ["a"]

"""Smoke: every example script runs to completion and prints its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

EXPECTED_MARKERS = {
    "quickstart.py": ["traffic by country", "slow requests"],
    "sql_ml_pipeline.py": ["training accuracy", "k-means centers"],
    "warehouse_analytics.py": ["map pruning reduced data scanned"],
    "chaos_demo.py": [
        "OK: every query returned results identical to the fault-free run",
    ],
    "concurrent_queries_demo.py": [
        "admission control:",
        "cancelled: cancelled, deadlined: deadline",
        "OK: survivors identical to serial",
    ],
    "fault_tolerance_demo.py": [
        "answer still correct: True",
        "final answer still matches baseline: True",
    ],
    "pde_join_demo.py": [
        "results identical across strategies: True",
        "strategy: shuffle",
        "strategy: broadcast",
    ],
}


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.name for path in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
        cwd=str(script.parent.parent),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in EXPECTED_MARKERS.get(script.name, []):
        assert marker in result.stdout, (
            f"{script.name} output missing {marker!r}"
        )


def test_all_examples_covered():
    assert {path.name for path in EXAMPLES} == set(EXPECTED_MARKERS)

"""Row accessors."""

import pytest

from repro.core import Row
from repro.datatypes import DOUBLE, INT, STRING, Schema

SCHEMA = Schema.of(("age", INT), ("country", STRING), ("score", DOUBLE))


@pytest.fixture
def row():
    return Row((30, "US", 9.5), SCHEMA)


class TestAccess:
    def test_get_by_name(self, row):
        assert row.get("age") == 30
        assert row["country"] == "US"
        assert row[2] == 9.5

    def test_case_insensitive_names(self, row):
        assert row.get("AGE") == 30

    def test_typed_accessors(self, row):
        assert row.get_int("age") == 30
        assert row.get_str("country") == "US"
        assert row.get_double("score") == 9.5
        assert isinstance(row.get_double("age"), float)

    def test_paper_camel_case_aliases(self, row):
        assert row.getInt("age") == 30
        assert row.getStr("country") == "US"
        assert row.getDouble("score") == 9.5

    def test_null_passthrough(self):
        row = Row((None, None, None), SCHEMA)
        assert row.get_int("age") is None
        assert row.get_str("country") is None

    def test_unknown_column(self, row):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            row.get("missing")


class TestProtocols:
    def test_len_iter(self, row):
        assert len(row) == 3
        assert list(row) == [30, "US", 9.5]

    def test_as_dict(self, row):
        assert row.as_dict() == {"age": 30, "country": "US", "score": 9.5}

    def test_equality_with_tuple(self, row):
        assert row == (30, "US", 9.5)
        assert row == Row((30, "US", 9.5), SCHEMA)
        assert hash(row) == hash((30, "US", 9.5))

    def test_repr_readable(self, row):
        assert "age=30" in repr(row)

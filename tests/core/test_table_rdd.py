"""TableRDD: the sql2rdd result wrapper."""

import pytest

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema


@pytest.fixture
def shark_table():
    shark = SharkContext(num_workers=2)
    shark.create_table(
        "t", Schema.of(("k", INT), ("name", STRING), ("v", DOUBLE)),
        cached=True,
    )
    shark.load_rows(
        "t", [(i, f"n{i % 3}", float(i) * 1.5) for i in range(30)]
    )
    return shark


class TestSql2Rdd:
    def test_returns_lazy_rdd(self, shark_table):
        table = shark_table.sql2rdd("SELECT k, v FROM t WHERE k > 10")
        assert table.column_names == ["k", "v"]
        rows = table.collect()
        assert len(rows) == 19

    def test_rejects_non_select(self, shark_table):
        with pytest.raises(ValueError):
            shark_table.sql2rdd("DROP TABLE t")

    def test_count_and_take(self, shark_table):
        table = shark_table.sql2rdd("SELECT k FROM t")
        assert table.count() == 30
        assert len(table.take(5)) == 5

    def test_cache_flag(self, shark_table):
        table = shark_table.sql2rdd("SELECT k FROM t").cache()
        assert table.rdd.is_cached


class TestRowOperations:
    def test_map_rows_receives_schema(self, shark_table):
        table = shark_table.sql2rdd("SELECT k, name, v FROM t")
        doubled = table.map_rows(lambda row: row.get_double("v") * 2)
        assert doubled.collect()[:3] == [0.0, 3.0, 6.0]

    def test_camel_case_alias(self, shark_table):
        table = shark_table.sql2rdd("SELECT k FROM t")
        assert table.mapRows(lambda r: r.get_int("k")).take(1) == [0]

    def test_filter_rows(self, shark_table):
        table = shark_table.sql2rdd("SELECT k, name, v FROM t")
        filtered = table.filter_rows(lambda row: row.get_str("name") == "n0")
        assert filtered.count() == 10

    def test_select_reorders_columns(self, shark_table):
        table = shark_table.sql2rdd("SELECT k, name, v FROM t")
        projected = table.select("v", "k")
        assert projected.column_names == ["v", "k"]
        first = projected.take(1)[0]
        assert first == (0.0, 0)

    def test_column_extraction(self, shark_table):
        table = shark_table.sql2rdd("SELECT k, name FROM t")
        names = table.column("name").collect()
        assert set(names) == {"n0", "n1", "n2"}

    def test_collect_rows(self, shark_table):
        table = shark_table.sql2rdd("SELECT k FROM t LIMIT 2")
        rows = table.collect_rows()
        assert rows[0].get_int("k") == 0


class TestChainingIntoEngine:
    def test_rdd_algebra_after_sql(self, shark_table):
        table = shark_table.sql2rdd("SELECT name, v FROM t")
        totals = dict(
            table.rdd.map(lambda r: (r[0], r[1]))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert set(totals) == {"n0", "n1", "n2"}

    def test_fault_tolerance_spans_sql_and_engine(self, shark_table):
        table = shark_table.sql2rdd("SELECT name, v FROM t")
        keyed = table.rdd.map(lambda r: (r[0], r[1])).cache()
        before = sorted(
            keyed.reduce_by_key(lambda a, b: a + b).collect()
        )
        shark_table.kill_worker(0)
        after = sorted(
            keyed.reduce_by_key(lambda a, b: a + b).collect()
        )
        assert before == after

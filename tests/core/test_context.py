"""SharkContext public API."""

import pytest

from repro import SharkContext
from repro.datatypes import BOOLEAN, INT, STRING, Schema
from repro.errors import CatalogError


@pytest.fixture
def shark():
    shark = SharkContext(num_workers=3)
    shark.create_table(
        "t", Schema.of(("a", INT), ("b", STRING)), cached=True
    )
    shark.load_rows("t", [(1, "x"), (2, "y"), (3, "x")])
    return shark


class TestTables:
    def test_table_returns_table_rdd(self, shark):
        table = shark.table("t")
        assert table.column_names == ["a", "b"]
        assert table.count() == 3

    def test_table_entry_metadata(self, shark):
        entry = shark.table_entry("t")
        assert entry.is_cached
        assert entry.row_count == 3

    def test_drop_table(self, shark):
        shark.drop_table("t")
        with pytest.raises(CatalogError):
            shark.table_entry("t")

    def test_drop_missing_with_if_exists(self, shark):
        shark.drop_table("ghost")  # if_exists defaults True
        with pytest.raises(CatalogError):
            shark.drop_table("ghost", if_exists=False)

    def test_create_table_with_properties(self, shark):
        shark.create_table(
            "p", Schema.of(("x", INT)), cached=True,
            properties={"owner": "tests"},
        )
        entry = shark.table_entry("p")
        assert entry.properties["owner"] == "tests"
        assert entry.properties["shark.cache"] == "true"

    def test_external_table_backed_by_store(self, shark):
        shark.create_table("ext", Schema.of(("x", INT)), cached=False)
        shark.load_rows("ext", [(5,)])
        entry = shark.table_entry("ext")
        assert shark.store.exists(entry.path)
        assert shark.sql("SELECT x FROM ext").rows == [(5,)]


class TestQueries:
    def test_sql_and_last_report(self, shark):
        result = shark.sql("SELECT COUNT(*) FROM t WHERE b = 'x'")
        assert result.scalar() == 2
        assert shark.last_report is result.report

    def test_explain_text(self, shark):
        text = shark.explain("SELECT a FROM t WHERE b = 'x'")
        assert "Scan(t" in text

    def test_register_udf_visible_in_sql(self, shark):
        shark.register_udf("flag", lambda a: a >= 2, return_type=BOOLEAN)
        assert shark.sql("SELECT COUNT(*) FROM t WHERE flag(a)").scalar() == 2


class TestEnginePassthroughs:
    def test_parallelize_and_broadcast(self, shark):
        rdd = shark.parallelize(range(10), 4)
        lookup = shark.broadcast({1: "one"})
        assert rdd.map(lambda x: lookup.value.get(x, "?")).take(2) == [
            "?", "one",
        ]

    def test_num_workers_and_kill(self, shark):
        assert shark.num_workers == 3
        shark.kill_worker(0)
        assert len(shark.engine.cluster.live_workers()) == 2

    def test_inject_failure_returns_injector(self, shark):
        injector = shark.inject_failure(worker_id=1, after_tasks=10**9)
        assert not injector.fired

    def test_repr_names_tables(self, shark):
        assert "t" in repr(shark)

"""Property-based tests: RDD operators vs Python list semantics.

Each property checks a core engine invariant over randomized inputs:
transformations agree with their sequential-list equivalents regardless of
partitioning, and shuffles neither lose nor duplicate records.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.engine import EngineContext

#: Fresh context per example keeps shuffle/cache state isolated.
def _ctx():
    return EngineContext(num_workers=3, cores_per_worker=2)


ints = st.lists(st.integers(-1000, 1000), max_size=120)
partitions = st.integers(1, 9)
pairs = st.lists(
    st.tuples(st.integers(0, 12), st.integers(-50, 50)), max_size=120
)


class TestListEquivalence:
    @given(ints, partitions)
    @settings(max_examples=40, deadline=None)
    def test_collect_preserves_order(self, data, num_partitions):
        assert _ctx().parallelize(data, num_partitions).collect() == data

    @given(ints, partitions)
    @settings(max_examples=40, deadline=None)
    def test_map_matches_builtin(self, data, num_partitions):
        rdd = _ctx().parallelize(data, num_partitions)
        assert rdd.map(lambda x: x * 3 + 1).collect() == [
            x * 3 + 1 for x in data
        ]

    @given(ints, partitions)
    @settings(max_examples=40, deadline=None)
    def test_filter_matches_comprehension(self, data, num_partitions):
        rdd = _ctx().parallelize(data, num_partitions)
        assert rdd.filter(lambda x: x % 2 == 0).collect() == [
            x for x in data if x % 2 == 0
        ]

    @given(ints, partitions)
    @settings(max_examples=40, deadline=None)
    def test_count_and_sum(self, data, num_partitions):
        rdd = _ctx().parallelize(data, num_partitions)
        assert rdd.count() == len(data)
        assert rdd.sum() == sum(data)

    @given(ints, partitions)
    @settings(max_examples=30, deadline=None)
    def test_sort_matches_sorted(self, data, num_partitions):
        rdd = _ctx().parallelize(data, num_partitions)
        assert rdd.sort_by(lambda x: x).collect() == sorted(data)

    @given(ints, partitions)
    @settings(max_examples=30, deadline=None)
    def test_distinct_matches_set(self, data, num_partitions):
        rdd = _ctx().parallelize(data, num_partitions)
        assert sorted(rdd.distinct().collect()) == sorted(set(data))

    @given(ints, partitions, st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_take_is_prefix(self, data, num_partitions, n):
        rdd = _ctx().parallelize(data, num_partitions)
        assert rdd.take(n) == data[:n]


class TestShuffleInvariants:
    @given(pairs, partitions)
    @settings(max_examples=40, deadline=None)
    def test_reduce_by_key_matches_counter(self, data, num_partitions):
        rdd = _ctx().parallelize(data, num_partitions)
        got = dict(rdd.reduce_by_key(lambda a, b: a + b).collect())
        want: dict = {}
        for key, value in data:
            want[key] = want.get(key, 0) + value
        assert got == want

    @given(pairs, partitions, st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_partition_by_preserves_multiset(
        self, data, num_partitions, reducers
    ):
        from repro.engine.partitioner import HashPartitioner

        rdd = _ctx().parallelize(data, num_partitions)
        shuffled = rdd.partition_by(HashPartitioner(reducers))
        assert Counter(shuffled.collect()) == Counter(data)

    @given(pairs, partitions)
    @settings(max_examples=30, deadline=None)
    def test_group_by_key_collects_all_values(self, data, num_partitions):
        rdd = _ctx().parallelize(data, num_partitions)
        grouped = {
            key: sorted(values)
            for key, values in rdd.group_by_key().collect()
        }
        want: dict = {}
        for key, value in data:
            want.setdefault(key, []).append(value)
        assert grouped == {key: sorted(v) for key, v in want.items()}

    @given(pairs, pairs)
    @settings(max_examples=30, deadline=None)
    def test_join_matches_nested_loop(self, left_data, right_data):
        ctx = _ctx()
        left = ctx.parallelize(left_data, 3)
        right = ctx.parallelize(right_data, 2)
        got = sorted(left.join(right).collect())
        want = sorted(
            (lk, (lv, rv))
            for lk, lv in left_data
            for rk, rv in right_data
            if lk == rk
        )
        assert got == want


class TestRecoveryInvariants:
    @given(pairs)
    @settings(max_examples=15, deadline=None)
    def test_worker_loss_never_changes_results(self, data):
        ctx = _ctx()
        rdd = ctx.parallelize(data, 4).cache()
        reduced = rdd.reduce_by_key(lambda a, b: a + b)
        before = sorted(reduced.collect())
        ctx.kill_worker(0)
        assert sorted(reduced.collect()) == before

    @given(pairs, st.integers(1, 10))
    @settings(max_examples=15, deadline=None)
    def test_mid_query_injection_never_changes_results(self, data, delay):
        ctx = _ctx()
        rdd = ctx.parallelize(data, 4).map(lambda kv: (kv[0], kv[1]))
        expected: dict = {}
        for key, value in data:
            expected[key] = expected.get(key, 0) + value
        ctx.inject_failure(worker_id=1, after_tasks=delay)
        got = dict(rdd.reduce_by_key(lambda a, b: a + b).collect())
        assert got == expected

"""Task cost model: per-component charges and engine deltas."""

import pytest

from repro.costmodel import (
    DEFAULT_HARDWARE,
    HADOOP_BINARY,
    HADOOP_TEXT,
    HIVE,
    MPP,
    SHARK_DISK,
    SHARK_MEM,
    TaskCostVector,
    estimate_task_seconds,
)
from repro.costmodel.constants import MB, profile_by_name
from repro.costmodel.models import (
    SOURCE_DISK,
    SOURCE_GENERATED,
    SOURCE_MEMORY,
)


class TestProfiles:
    def test_lookup_by_name(self):
        assert profile_by_name("shark") is SHARK_MEM
        assert profile_by_name("hive") is HIVE
        with pytest.raises(KeyError):
            profile_by_name("impala")

    def test_paper_constants(self):
        # Section 2.1 / 7.1: 5 ms Spark launch, 5-10 s Hadoop launch.
        assert SHARK_MEM.task_launch_overhead_s == pytest.approx(0.005)
        assert 5.0 <= HIVE.task_launch_overhead_s <= 10.0
        # Section 3.2: ~200 MB/s/core deserialization.
        assert DEFAULT_HARDWARE.deserialization_mb_s == 200.0
        # Section 6.1: m2.4xlarge - 8 cores, 68 GB.
        assert DEFAULT_HARDWARE.cores_per_node == 8
        assert DEFAULT_HARDWARE.memory_per_node_mb == 68 * 1024

    def test_text_slower_than_binary(self):
        assert HADOOP_TEXT.cpu_per_record_us > HADOOP_BINARY.cpu_per_record_us

    def test_mpp_lacks_fine_grained_recovery(self):
        assert not MPP.fine_grained_recovery
        assert SHARK_MEM.fine_grained_recovery


class TestTaskCostVector:
    def test_invalid_source_rejected(self):
        with pytest.raises(ValueError):
            TaskCostVector(source="tape")

    def test_scaled_multiplies_volumes(self):
        vector = TaskCostVector(records_in=10, bytes_in=100, source=SOURCE_DISK)
        scaled = vector.scaled(3.0)
        assert scaled.records_in == 30
        assert scaled.bytes_in == 300
        assert scaled.source == SOURCE_DISK


class TestEstimation:
    def test_launch_overhead_dominates_tiny_tasks(self):
        tiny = TaskCostVector(records_in=1, bytes_in=100, source=SOURCE_MEMORY)
        shark = estimate_task_seconds(tiny, SHARK_MEM, DEFAULT_HARDWARE)
        hive = estimate_task_seconds(tiny, HIVE, DEFAULT_HARDWARE)
        assert shark < 0.01
        assert hive > 5.0

    def test_memory_scan_faster_than_disk(self):
        volume = TaskCostVector(
            records_in=10**6, bytes_in=128 * MB, source=SOURCE_MEMORY
        )
        disk_volume = TaskCostVector(
            records_in=10**6, bytes_in=128 * MB, source=SOURCE_DISK
        )
        mem_s = estimate_task_seconds(
            volume, SHARK_MEM, DEFAULT_HARDWARE, include_launch=False
        )
        disk_s = estimate_task_seconds(
            disk_volume, SHARK_DISK, DEFAULT_HARDWARE, include_launch=False
        )
        assert disk_s > mem_s * 3

    def test_generated_source_free_input(self):
        vector = TaskCostVector(bytes_in=10**9, source=SOURCE_GENERATED)
        assert estimate_task_seconds(
            vector, SHARK_MEM, DEFAULT_HARDWARE, include_launch=False
        ) == pytest.approx(0.0)

    def test_sort_charged_only_for_sorting_engines(self):
        vector = TaskCostVector(
            records_in=10**6,
            records_out=10**6,
            shuffle_write_bytes=64 * MB,
            source=SOURCE_MEMORY,
        )
        hive_s = estimate_task_seconds(
            vector, HIVE, DEFAULT_HARDWARE, include_launch=False
        )
        no_sort = estimate_task_seconds(
            vector, SHARK_MEM, DEFAULT_HARDWARE, include_launch=False
        )
        assert hive_s > no_sort

    def test_materialization_charged_with_replication(self):
        base = TaskCostVector(
            bytes_out=128 * MB, source=SOURCE_MEMORY,
        )
        materialized = TaskCostVector(
            bytes_out=128 * MB, source=SOURCE_MEMORY, materialized_output=True,
        )
        plain = estimate_task_seconds(
            base, HIVE, DEFAULT_HARDWARE, include_launch=False
        )
        with_hdfs = estimate_task_seconds(
            materialized, HIVE, DEFAULT_HARDWARE, include_launch=False
        )
        assert with_hdfs > plain + 1.0

    def test_shark_never_materializes(self):
        materialized = TaskCostVector(
            bytes_out=128 * MB, source=SOURCE_MEMORY, materialized_output=True,
        )
        assert estimate_task_seconds(
            materialized, SHARK_MEM, DEFAULT_HARDWARE, include_launch=False
        ) == pytest.approx(0.0)

    def test_shuffle_read_charged_at_network_rate(self):
        vector = TaskCostVector(
            shuffle_read_bytes=110 * MB, source="shuffle"
        )
        seconds = estimate_task_seconds(
            vector, SHARK_MEM, DEFAULT_HARDWARE, include_launch=False
        )
        # 110 MB at (110/8) MB/s per core = 8 s.
        assert seconds == pytest.approx(8.0, rel=0.05)

    def test_extra_cpu_passthrough(self):
        vector = TaskCostVector(extra_cpu_s=2.5, source=SOURCE_GENERATED)
        assert estimate_task_seconds(
            vector, SHARK_MEM, DEFAULT_HARDWARE, include_launch=False
        ) == pytest.approx(2.5)

"""Bridge: executed metrics -> scaled cluster stages."""

import pytest

from repro import SharkContext
from repro.baselines import HiveExecutor
from repro.costmodel import ClusterSimulator, HIVE, SHARK_MEM
from repro.costmodel.bridge import (
    BLOCK_BYTES,
    combined_scale,
    split_stage,
    stages_from_jobs,
    stages_from_profiles,
)
from repro.costmodel.models import TaskCostVector
from repro.datatypes import INT, STRING, Schema
from repro.workloads import pavlo


class TestSplitStage:
    def test_divides_volumes(self):
        totals = TaskCostVector(records_in=100, bytes_in=1000)
        stage = split_stage("s", totals, 10)
        assert len(stage.tasks) == 10
        assert stage.tasks[0].records_in == 10
        assert stage.tasks[0].bytes_in == 100

    def test_clamps_task_count(self):
        stage = split_stage("s", TaskCostVector(), 0)
        assert len(stage.tasks) == 1


class TestCombinedScale:
    def test_blends_multiple_datasets(self):
        rankings = pavlo.generate_rankings(100)
        visits = pavlo.generate_uservisits(200, num_pages=100)
        scale = combined_scale([rankings, visits])
        assert scale > 1000  # local KBs represent TBs

    def test_single_dataset_matches_own_factor(self):
        rankings = pavlo.generate_rankings(100)
        assert combined_scale([rankings]) == pytest.approx(
            rankings.scale_factor
        )


@pytest.fixture(scope="module")
def executed():
    shark = SharkContext(num_workers=4)
    schema = Schema.of(("k", STRING), ("v", INT))
    shark.create_table("t", schema, cached=True)
    # Enough rows that the map-side combine ratio (groups x maps / rows)
    # resembles cluster reality; tiny samples overstate shuffle volume.
    shark.load_rows("t", [(f"k{i % 50}", i) for i in range(20000)])

    def table_rows(entry):
        rdd = shark.session._scan_rdd(entry)
        return shark.engine.run_job(rdd, list)

    hive = HiveExecutor(
        shark.session.catalog, shark.store, shark.session.registry,
        table_rows=table_rows,
    )
    return shark, hive


class TestProfileScaling:
    def test_stage_counts_follow_volume(self, executed):
        shark, __ = executed
        shark.engine.reset_profiles()
        shark.sql("SELECT k, SUM(v) FROM t GROUP BY k")
        small = stages_from_profiles(shark.engine.profiles, scale=1.0)
        large = stages_from_profiles(shark.engine.profiles, scale=1e6)
        assert sum(len(s.tasks) for s in large) > sum(
            len(s.tasks) for s in small
        )

    def test_map_tasks_sized_by_block_and_rows(self, executed):
        import math

        from repro.costmodel.bridge import RECORDS_PER_TASK

        shark, __ = executed
        shark.engine.reset_profiles()
        shark.sql("SELECT COUNT(*) FROM t WHERE v > 0")
        profiles = shark.engine.profiles
        total_bytes = sum(
            stage.bytes_in
            for profile in profiles
            for stage in profile.stages
        )
        total_records = sum(
            stage.records_in
            for profile in profiles
            for stage in profile.stages
        )
        scale = 100 * BLOCK_BYTES / max(total_bytes, 1)
        stages = stages_from_profiles(profiles, scale)
        scan = stages[0]
        expected = max(
            math.ceil(total_bytes * scale / BLOCK_BYTES),
            math.ceil(total_records * scale / RECORDS_PER_TASK),
        )
        assert len(scan.tasks) == pytest.approx(expected, rel=0.1)

    def test_simulated_times_ordered_sanely(self, executed):
        shark, hive = executed
        query = "SELECT k, SUM(v) FROM t GROUP BY k"
        scale = 5e5
        shark.engine.reset_profiles()
        shark.sql(query)
        shark_stages = stages_from_profiles(shark.engine.profiles, scale)
        hive_run = hive.execute(query)
        hive_stages = stages_from_jobs(hive_run.jobs, scale, reduce_tasks=400)
        shark_s = ClusterSimulator(100, SHARK_MEM).simulate(
            shark_stages
        ).total_seconds
        hive_s = ClusterSimulator(100, HIVE).simulate(
            hive_stages
        ).total_seconds
        assert hive_s > shark_s * 5  # the paper's headline direction


class TestJobScaling:
    def test_map_and_reduce_stages_emitted(self, executed):
        __, hive = executed
        run = hive.execute("SELECT k, COUNT(*) FROM t GROUP BY k")
        stages = stages_from_jobs(run.jobs, scale=1.0)
        names = [stage.name for stage in stages]
        assert any("map" in name for name in names)
        assert any("reduce" in name for name in names)

    def test_map_only_job_single_stage(self, executed):
        __, hive = executed
        run = hive.execute("SELECT k FROM t WHERE v > 1999")
        stages = stages_from_jobs(run.jobs, scale=1.0)
        assert len(stages) == 1

    def test_reduce_override(self, executed):
        __, hive = executed
        run = hive.execute("SELECT k, COUNT(*) FROM t GROUP BY k")
        stages = stages_from_jobs(run.jobs, scale=1.0, reduce_tasks=123)
        reduce_stage = next(s for s in stages if "reduce" in s.name)
        assert len(reduce_stage.tasks) == 123

"""Cluster makespan simulation."""

import pytest

from repro.costmodel import (
    ClusterSimulator,
    HIVE,
    SHARK_MEM,
    StageCost,
    TaskCostVector,
)
from repro.costmodel.constants import MB, replace


def _stage(num_tasks, bytes_per_task=MB, source="memory"):
    return StageCost.uniform(
        "s",
        num_tasks,
        TaskCostVector(
            records_in=1000, bytes_in=bytes_per_task, source=source
        ),
    )


class TestMakespan:
    def test_single_wave_parallelism(self):
        sim = ClusterSimulator(num_nodes=10, engine=SHARK_MEM, seed=1)
        one = sim.simulate([_stage(1)]).total_seconds
        eighty = sim.simulate([_stage(80)]).total_seconds
        # 80 tasks on 80 slots: one wave, similar to one task (straggler
        # noise aside).
        assert eighty < one * 3

    def test_waves_add_up(self):
        sim = ClusterSimulator(
            num_nodes=1, engine=SHARK_MEM, seed=1, speculation=False
        )
        profile = replace(SHARK_MEM, straggler_fraction=0.0)
        sim = ClusterSimulator(1, profile, seed=1)
        one_wave = sim.simulate([_stage(8)]).total_seconds
        two_waves = sim.simulate([_stage(16)]).total_seconds
        assert two_waves == pytest.approx(2 * one_wave, rel=0.01)

    def test_stages_sequential(self):
        profile = replace(SHARK_MEM, straggler_fraction=0.0)
        sim = ClusterSimulator(10, profile, seed=1)
        single = sim.simulate([_stage(10)]).total_seconds
        double = sim.simulate([_stage(10), _stage(10)]).total_seconds
        assert double == pytest.approx(2 * single, rel=0.01)

    def test_deterministic_given_seed(self):
        sim = ClusterSimulator(10, SHARK_MEM, seed=5)
        assert (
            sim.simulate([_stage(100)]).total_seconds
            == sim.simulate([_stage(100)]).total_seconds
        )

    def test_empty_stage(self):
        sim = ClusterSimulator(4)
        cost = sim.simulate([StageCost("empty", [])])
        assert cost.total_seconds == 0.0

    def test_rejects_bad_cluster(self):
        with pytest.raises(ValueError):
            ClusterSimulator(0)

    def test_stage_uniform_validation(self):
        with pytest.raises(ValueError):
            StageCost.uniform("s", 0, TaskCostVector())


class TestEngineContrasts:
    def test_hive_task_overhead_visible(self):
        shark_sim = ClusterSimulator(10, SHARK_MEM, seed=2)
        hive_sim = ClusterSimulator(10, HIVE, seed=2)
        stage = [_stage(400, bytes_per_task=MB, source="disk")]
        shark_s = shark_sim.simulate(stage).total_seconds
        hive_s = hive_sim.simulate(stage).total_seconds
        # 400 tiny tasks on 80 slots: Hadoop pays ~5 waves x launch+heartbeat.
        assert hive_s > shark_s * 10

    def test_heartbeat_quantizes_hive_waves(self):
        profile = replace(
            HIVE, straggler_fraction=0.0, task_launch_overhead_s=0.0
        )
        sim = ClusterSimulator(1, profile, seed=1)
        cost = sim.simulate([_stage(16, bytes_per_task=1000, source="disk")])
        # Second wave starts on a 3 s heartbeat boundary.
        assert cost.total_seconds >= 3.0

    def test_speculation_caps_stragglers(self):
        always_slow = replace(
            SHARK_MEM, straggler_fraction=1.0, straggler_slowdown=100.0
        )
        with_spec = ClusterSimulator(
            2, always_slow, seed=3, speculation=True
        ).simulate([_stage(16, bytes_per_task=64 * MB)])
        without = ClusterSimulator(
            2, always_slow, seed=3, speculation=False
        ).simulate([_stage(16, bytes_per_task=64 * MB)])
        assert with_spec.total_seconds < without.total_seconds / 10

    def test_describe_output(self):
        sim = ClusterSimulator(4, SHARK_MEM, seed=1)
        cost = sim.simulate([_stage(4)])
        text = cost.describe()
        assert "engine=shark" in text
        assert "stage" in text

"""The interactive SQL shell."""

import pytest

from repro import SharkContext
from repro.shell import Shell, format_table, run


@pytest.fixture
def session():
    shark = SharkContext(num_workers=2)
    output: list[str] = []
    shell = Shell(shark=shark, write=output.append)
    return shell, output


def drive(shell, *lines):
    for line in lines:
        shell.feed(line)


class TestFormatTable:
    def test_alignment_and_nulls(self):
        text = format_table(
            ["name", "n"], [("alice", 1), (None, 12345)]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert any("NULL" in line for line in lines[2:])
        assert all(len(line) == len(lines[0]) for line in lines[:2])

    def test_float_formatting(self):
        text = format_table(["x"], [(1.5,), (2.0,)])
        assert "1.5" in text
        assert "2" in text


class TestStatements:
    def test_create_load_query(self, session):
        shell, output = session
        drive(
            shell,
            "CREATE TABLE t (a INT, b STRING) "
            "TBLPROPERTIES ('shark.cache'='true');",
            "INSERT INTO t VALUES (1, 'x'), (2, 'y');",
            "SELECT b, a FROM t ORDER BY a;",
        )
        text = "\n".join(output)
        assert "inserted 2 rows" in text
        assert "2 row(s)" in text
        assert "x" in text and "y" in text

    def test_multiline_statement(self, session):
        shell, output = session
        drive(shell, "SELECT 1 + 1", "AS answer;")
        assert any("answer" in line for line in output)
        assert any("2" in line for line in output)

    def test_prompt_reflects_buffer(self, session):
        shell, __ = session
        assert shell.prompt.strip() == "shark>"
        shell.feed("SELECT 1")
        assert shell.prompt.strip() == "->"

    def test_error_reported_not_raised(self, session):
        shell, output = session
        drive(shell, "SELECT nope FROM missing;")
        assert any("error:" in line for line in output)
        assert shell.running

    def test_truncation_notice(self, session):
        shell, output = session
        drive(
            shell,
            "CREATE TABLE big (n INT) TBLPROPERTIES ('shark.cache'='true');",
        )
        shell.shark.load_rows("big", [(i,) for i in range(100)])
        drive(shell, "SELECT n FROM big;")
        assert any("showing first" in line for line in output)


class TestDotCommands:
    def test_tables_and_describe(self, session):
        shell, output = session
        drive(
            shell,
            "CREATE TABLE t (a INT) TBLPROPERTIES ('shark.cache'='true');",
            ".tables",
            ".describe t",
        )
        text = "\n".join(output)
        assert "t" in text
        assert "columnar memstore" in text

    def test_explain(self, session):
        shell, output = session
        drive(
            shell,
            "CREATE TABLE t (a INT) TBLPROPERTIES ('shark.cache'='true');",
            ".explain SELECT COUNT(*) FROM t WHERE a > 1",
        )
        assert any("Aggregate" in line for line in output)

    def test_workers_and_kill(self, session):
        shell, output = session
        drive(shell, ".workers")
        assert sum("alive" in line for line in output) == 2
        drive(shell, ".kill 0", ".workers")
        assert any("DEAD" in line for line in output)

    def test_kill_then_query_recovers(self, session):
        shell, output = session
        drive(
            shell,
            "CREATE TABLE t (a INT) TBLPROPERTIES ('shark.cache'='true');",
        )
        shell.shark.load_rows("t", [(i,) for i in range(20)])
        drive(shell, "SELECT COUNT(*) FROM t;", ".kill 1",
              "SELECT COUNT(*) FROM t;")
        tables = [entry for entry in output if "\n20" in entry]
        assert len(tables) == 2  # same answer before and after the kill

    def test_help_quit_unknown(self, session):
        shell, output = session
        drive(shell, ".help", ".bogus", ".quit")
        text = "\n".join(output)
        assert "dot-commands" in text.lower() or "Dot-commands" in text
        assert "unknown command" in text
        assert not shell.running

    def test_notes_after_query(self, session):
        shell, output = session
        drive(
            shell,
            "CREATE TABLE t (a INT) TBLPROPERTIES ('shark.cache'='true');",
        )
        shell.shark.load_rows("t", [(i,) for i in range(40)], 8)
        drive(shell, "SELECT COUNT(*) FROM t WHERE a = 3;", ".notes")
        assert any("map pruning" in line for line in output)

    def test_submit_queries_drain(self, session):
        shell, output = session
        drive(shell, "CREATE TABLE t (a INT);")
        shell.shark.load_rows("t", [(i,) for i in range(40)], 4)
        drive(
            shell,
            ".submit SELECT COUNT(*) FROM t",
            ".submit SELECT a, COUNT(*) FROM t GROUP BY a",
            ".queries",
            ".drain",
        )
        text = "\n".join(output)
        # First .submit lazily enables the lifecycle manager.
        assert "submitted query 0" in text
        assert "submitted query 1" in text
        assert "lifecycle: 2 submitted" in text
        assert "done" in text

    def test_cancel_submitted_query(self, session):
        shell, output = session
        drive(shell, "CREATE TABLE t (a INT);")
        shell.shark.load_rows("t", [(i,) for i in range(40)], 4)
        drive(
            shell,
            ".submit SELECT COUNT(*) FROM t",
            ".cancel 0",
            ".cancel 99",
            ".drain",
        )
        text = "\n".join(output)
        assert "cancellation requested for query 0" in text
        assert "no submitted query '99'" in text
        assert "cancelled" in text

    def test_queries_without_lifecycle(self, session):
        shell, output = session
        drive(shell, ".queries", ".drain")
        assert output.count("(no submitted queries)") == 2

    def test_doctor_usage_and_diff(self, session, tmp_path):
        shell, output = session
        drive(shell, ".doctor one-arg")
        assert any("usage: .doctor" in line for line in output)
        # Two tiny logs of the same one-query corpus: the second run is
        # identical, so the doctor reports zero regressions.
        drive(
            shell,
            "CREATE TABLE t (a INT) TBLPROPERTIES ('shark.cache'='true');",
        )
        shell.shark.load_rows("t", [(i,) for i in range(20)])
        paths = []
        for index in range(2):
            path = tmp_path / f"run{index}.jsonl"
            shell.shark.enable_event_log(path, source="shell-test")
            drive(shell, "SELECT COUNT(*) FROM t;")
            shell.shark.close_event_log()
            paths.append(path)
        drive(shell, f".doctor {paths[0]} {paths[1]}")
        text = "\n".join(output)
        assert "query doctor:" in text
        assert "1 paired query, 0 regressed" in text

    def test_doctor_missing_log_errors(self, session, tmp_path):
        shell, output = session
        drive(shell, f".doctor {tmp_path}/a.jsonl {tmp_path}/b.jsonl")
        assert any(line.startswith("error:") for line in output)


class TestRunHelper:
    def test_run_stops_at_quit(self):
        output: list[str] = []
        shell = run(
            ["SELECT 1;", ".quit", "SELECT 2;"],
            shark=SharkContext(num_workers=2),
            write=output.append,
        )
        assert not shell.running
        text = "\n".join(output)
        assert "1" in text


class TestServingCommands:
    def _start(self, shell):
        drive(
            shell,
            "CREATE TABLE t (a INT, b STRING) "
            "TBLPROPERTIES ('shark.cache'='true');",
            "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x');",
            ".server start",
        )

    def test_server_requires_start(self, session):
        shell, output = session
        drive(shell, ".server")
        assert "no server" in output[-1]
        drive(shell, ".tenants")
        assert "no tenants" in output[-1]

    def test_server_start_is_idempotent(self, session):
        shell, output = session
        self._start(shell)
        assert any("server started" in line for line in output)
        drive(shell, ".server start")
        assert "server already running" in output[-1]

    def test_tenant_lifecycle_and_submit_drain(self, session):
        shell, output = session
        self._start(shell)
        drive(shell, ".tenants add dash interactive")
        assert "tenant dash registered [interactive, weight 8]" in output[-1]
        drive(shell, ".tenants add crawl best_effort")
        drive(shell, ".tenants")
        text = "\n".join(output)
        assert "tenant dash [interactive, w8]" in text
        assert "tenant crawl [best_effort, w1]" in text

        drive(shell, ".server submit dash SELECT COUNT(*) FROM t;")
        assert "accepted query 0 for tenant dash (interactive)" in output[-1]
        drive(shell, ".server drain")
        text = "\n".join(output)
        assert "served 0" in text and "done" in text
        assert "1 completed" in text

    def test_bad_tenant_inputs_report_errors(self, session):
        shell, output = session
        self._start(shell)
        drive(shell, ".tenants add vip platinum")
        assert output[-1].startswith("error:")
        drive(shell, ".server submit nobody SELECT 1;")
        assert "unknown tenant" in output[-1]
        drive(shell, ".server submit onlytenant")
        assert "usage: .server submit" in output[-1]
        drive(shell, ".server bounce")
        assert "unknown server subcommand" in output[-1]

    def test_metrics_show_serving_section(self, session):
        shell, output = session
        self._start(shell)
        drive(shell, ".tenants add dash interactive")
        drive(shell, ".server submit dash SELECT COUNT(*) FROM t;")
        drive(shell, ".server drain", ".metrics")
        text = "\n".join(output)
        assert "== serving ==" in text
        assert "server.admitted = 1" in text

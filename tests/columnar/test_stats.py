"""Partition statistics and the map-pruning predicates they answer."""

from datetime import date

from repro.columnar.stats import (
    ColumnStats,
    DISTINCT_LIMIT,
    PartitionStats,
)


class TestColumnStats:
    def test_min_max_tracking(self):
        stats = ColumnStats.from_values([5, 1, 9, 3])
        assert stats.minimum == 1
        assert stats.maximum == 9
        assert stats.row_count == 4

    def test_null_counting(self):
        stats = ColumnStats.from_values([1, None, 2, None])
        assert stats.null_count == 2
        assert stats.minimum == 1

    def test_distinct_set_kept_while_small(self):
        stats = ColumnStats.from_values(["a", "b", "a"])
        assert stats.distinct_values == {"a", "b"}

    def test_distinct_set_dropped_over_limit(self):
        stats = ColumnStats.from_values(list(range(DISTINCT_LIMIT + 5)))
        assert stats.distinct_values is None

    def test_dates_are_comparable(self):
        stats = ColumnStats.from_values(
            [date(2000, 1, 10), date(2000, 1, 20)]
        )
        assert stats.minimum == date(2000, 1, 10)
        assert stats.may_overlap(
            low=date(2000, 1, 15), high=date(2000, 1, 22)
        )
        assert not stats.may_overlap(low=date(2000, 2, 1))


class TestMayContain:
    def test_exact_with_distinct_set(self):
        stats = ColumnStats.from_values(["US", "BR"])
        assert stats.may_contain("US")
        assert not stats.may_contain("DE")

    def test_range_fallback_without_distinct_set(self):
        stats = ColumnStats.from_values(list(range(100)))
        assert stats.may_contain(50)
        assert not stats.may_contain(500)

    def test_distinct_set_answers_exactly_for_foreign_values(self):
        # With an exact distinct set, a value of a type that can never
        # compare equal is provably absent — pruning is exact, not guessy.
        stats = ColumnStats.from_values([1, 2, 3])
        assert not stats.may_contain(object())

    def test_range_fallback_conservative_for_foreign_values(self):
        stats = ColumnStats.from_values(list(range(100)))  # no distinct set
        assert stats.may_contain(object())


class TestMayOverlap:
    def test_disjoint_below(self):
        stats = ColumnStats.from_values([10, 20])
        assert not stats.may_overlap(low=25)

    def test_disjoint_above(self):
        stats = ColumnStats.from_values([10, 20])
        assert not stats.may_overlap(high=5)

    def test_overlapping_window(self):
        stats = ColumnStats.from_values([10, 20])
        assert stats.may_overlap(low=15, high=30)

    def test_exclusive_bounds(self):
        stats = ColumnStats.from_values([10, 20])
        assert not stats.may_overlap(low=20, low_inclusive=False)
        assert stats.may_overlap(low=20, low_inclusive=True)
        assert not stats.may_overlap(high=10, high_inclusive=False)

    def test_open_ended(self):
        stats = ColumnStats.from_values([10, 20])
        assert stats.may_overlap()

    def test_mixed_types_conservative(self):
        stats = ColumnStats.from_values([10, 20])
        assert stats.may_overlap(low="not-a-number")


class TestMerge:
    def test_ranges_merge(self):
        left = ColumnStats.from_values([1, 5])
        right = ColumnStats.from_values([10, 20])
        merged = left.merge(right)
        assert merged.minimum == 1
        assert merged.maximum == 20
        assert merged.row_count == 4

    def test_distinct_union_or_drop(self):
        left = ColumnStats.from_values(["a"])
        right = ColumnStats.from_values(["b"])
        assert left.merge(right).distinct_values == {"a", "b"}
        big = ColumnStats.from_values(list(range(DISTINCT_LIMIT)))
        assert big.merge(ColumnStats.from_values([999])).distinct_values is None


class TestPartitionStats:
    def test_column_lookup_case_insensitive(self):
        stats = PartitionStats.from_columns(
            ["Day", "Country"], [[1, 2], ["US", "BR"]]
        )
        assert stats.column("day").maximum == 2
        assert stats.column("COUNTRY").may_contain("US")
        assert stats.column("missing") is None
        assert "day" in stats

    def test_merge_partitions(self):
        left = PartitionStats.from_columns(["x"], [[1, 2]])
        right = PartitionStats.from_columns(["x"], [[5, 9]])
        merged = left.merge(right)
        assert merged.column("x").maximum == 9

"""Compression schemes: lossless roundtrips, footprints, auto-selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.columnar import ColumnarPartition
from repro.columnar.compression import (
    BITPACK,
    BITSET,
    BLOB,
    DICTIONARY,
    PLAIN,
    RLE,
    choose_scheme,
)
from repro.datatypes import (
    ArrayType,
    BOOLEAN,
    DOUBLE,
    INT,
    BIGINT,
    STRING,
    Schema,
)
from repro.errors import CompressionError


def _decode_list(encoded):
    decoded = encoded.decode()
    if isinstance(decoded, np.ndarray):
        return decoded.tolist()
    return list(decoded)


class TestPlain:
    def test_int_roundtrip_as_array(self):
        values = [5, -3, 7, 0]
        encoded = PLAIN.encode(values, INT)
        assert _decode_list(encoded) == values
        assert encoded.compressed_bytes == 4 * 4

    def test_string_roundtrip_with_arena_accounting(self):
        values = ["hello", "", "world"]
        encoded = PLAIN.encode(values, STRING)
        assert _decode_list(encoded) == values
        assert encoded.compressed_bytes == len("helloworld") + 4 * 3

    def test_nullable_int_falls_back_to_list(self):
        values = [1, None, 3]
        encoded = PLAIN.encode(values, INT)
        assert _decode_list(encoded) == values


class TestRunLength:
    def test_roundtrip(self):
        values = [1, 1, 1, 2, 2, 3] * 10
        encoded = RLE.encode(values, INT)
        assert _decode_list(encoded) == values

    def test_compresses_long_runs(self):
        values = [7] * 1000
        encoded = RLE.encode(values, INT)
        assert encoded.num_runs == 1
        assert encoded.compressed_bytes < PLAIN.encode(values, INT).compressed_bytes

    def test_string_runs(self):
        values = ["a"] * 5 + ["b"] * 5
        encoded = RLE.encode(values, STRING)
        assert _decode_list(encoded) == values
        assert encoded.num_runs == 2

    def test_length_preserved(self):
        values = [1, 2, 2, 3]
        assert len(RLE.encode(values, INT)) == 4


class TestDictionary:
    def test_roundtrip_strings(self):
        values = ["AIR", "SHIP", "AIR", "RAIL"] * 50
        encoded = DICTIONARY.encode(values, STRING)
        assert _decode_list(encoded) == values
        assert encoded.cardinality == 3

    def test_code_width_grows_with_cardinality(self):
        small = DICTIONARY.encode([str(i % 4) for i in range(100)], STRING)
        large = DICTIONARY.encode([str(i) for i in range(300)], STRING)
        assert small._codes.dtype == np.uint8
        assert large._codes.dtype == np.uint16

    def test_beats_plain_on_enum_column(self):
        values = ["CANCELLED", "SHIPPED", "PENDING"] * 1000
        dict_bytes = DICTIONARY.encode(values, STRING).compressed_bytes
        plain_bytes = PLAIN.encode(values, STRING).compressed_bytes
        assert dict_bytes < plain_bytes / 2

    def test_numeric_dictionary(self):
        values = [100, 200, 100, 300] * 10
        encoded = DICTIONARY.encode(values, INT)
        assert _decode_list(encoded) == values


class TestBitPacking:
    def test_roundtrip_small_range(self):
        values = [3, 7, 0, 5, 2]
        encoded = BITPACK.encode(values, INT)
        assert _decode_list(encoded) == values
        assert encoded.bit_width == 3

    def test_offset_handles_negatives(self):
        values = [-10, -8, -9]
        encoded = BITPACK.encode(values, INT)
        assert _decode_list(encoded) == values

    def test_single_value_width_one(self):
        encoded = BITPACK.encode([42, 42, 42], INT)
        assert encoded.bit_width == 1
        assert _decode_list(encoded) == [42, 42, 42]

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            BITPACK.encode([], INT)

    def test_packs_tighter_than_plain(self):
        values = [i % 16 for i in range(10000)]
        packed = BITPACK.encode(values, INT).compressed_bytes
        plain = PLAIN.encode(values, INT).compressed_bytes
        assert packed < plain / 6


class TestBitset:
    def test_roundtrip(self):
        values = [True, False, True, True, False]
        encoded = BITSET.encode(values, BOOLEAN)
        assert _decode_list(encoded) == values

    def test_one_bit_per_value(self):
        encoded = BITSET.encode([True] * 800, BOOLEAN)
        assert encoded.compressed_bytes == 100


class TestBlob:
    def test_complex_roundtrip(self):
        values = [["a", "b"], [], ["c"]]
        encoded = BLOB.encode(values, ArrayType(element_type=STRING))
        assert _decode_list(encoded) == values

    def test_dict_values(self):
        values = [{"k": 1}, {"j": 2, "k": 3}]
        encoded = BLOB.encode(values, STRING)
        assert _decode_list(encoded) == values


class TestChooseScheme:
    def test_boolean_gets_bitset(self):
        assert choose_scheme([True, False], BOOLEAN) is BITSET

    def test_clustered_column_gets_rle(self):
        values = [1] * 100 + [2] * 100
        assert choose_scheme(values, INT).name == "rle"

    def test_enum_strings_get_dictionary(self):
        values = ["AIR", "SHIP", "RAIL", "TRUCK"] * 100
        assert choose_scheme(values, STRING).name == "dictionary"

    def test_small_range_ints_get_bitpack(self):
        # Too many distinct values for a dictionary, but a narrow range.
        values = [i % 3000 for i in range(1, 20000, 7)]
        assert choose_scheme(values, INT).name == "bitpack"

    def test_wide_unique_values_stay_plain(self):
        values = [i * 10**9 for i in range(1000)]
        assert choose_scheme(values, BIGINT).name == "plain"

    def test_doubles_never_bitpacked(self):
        values = [float(i % 10) for i in range(1, 1000, 3)]
        assert choose_scheme(values, DOUBLE).name in ("plain", "dictionary")

    def test_nulls_force_plain_for_primitives(self):
        values = [1, None] * 100
        assert choose_scheme(values, INT).name == "plain"

    def test_complex_types_get_blob(self):
        values = [["x"], ["y"]] * 10
        assert choose_scheme(values, ArrayType(element_type=STRING)).name in (
            "blob", "rle",
        )

    def test_empty_column_plain(self):
        assert choose_scheme([], INT) is PLAIN


class TestPropertyRoundtrips:
    @given(st.lists(st.integers(-2**31, 2**31 - 1), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_int_roundtrip_any_scheme(self, values):
        scheme = choose_scheme(values, INT)
        assert _decode_list(scheme.encode(values, INT)) == values

    @given(st.lists(st.text(max_size=20), min_size=0, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_string_roundtrip_any_scheme(self, values):
        scheme = choose_scheme(values, STRING)
        assert _decode_list(scheme.encode(values, STRING)) == values

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_bool_roundtrip(self, values):
        assert _decode_list(BITSET.encode(values, BOOLEAN)) == values

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_double_roundtrip(self, values):
        values = [float(v) for v in values]
        scheme = choose_scheme(values, DOUBLE)
        decoded = _decode_list(scheme.encode(values, DOUBLE))
        assert decoded == pytest.approx(values)


class TestAdversarialRoundtrips:
    """Adversarial inputs the auto-selector must survive losslessly.

    These are the loading-task edge cases: empty partitions, columns
    that are entirely NULL, degenerate single-value runs, integers
    spanning every width class in one column, and non-ASCII strings.
    Each case round-trips both through ``choose_scheme`` directly and
    through a full :class:`ColumnarPartition` load.
    """

    def _roundtrip(self, values, data_type):
        scheme = choose_scheme(values, data_type)
        encoded = scheme.encode(values, data_type)
        assert len(encoded) == len(values)
        assert _decode_list(encoded) == values

    def _partition_roundtrip(self, values, data_type, compress=True):
        schema = Schema.of(("c", data_type))
        part = ColumnarPartition.from_rows(
            schema, [(value,) for value in values], compress=compress
        )
        assert [row[0] for row in part.iter_rows()] == values

    def test_empty_partition(self):
        for data_type in (INT, BIGINT, DOUBLE, STRING, BOOLEAN):
            self._roundtrip([], data_type)
            self._partition_roundtrip([], data_type)
            self._partition_roundtrip([], data_type, compress=False)

    def test_all_null_column(self):
        values = [None] * 64
        for data_type in (INT, DOUBLE, STRING):
            self._roundtrip(values, data_type)
            self._partition_roundtrip(values, data_type)
            self._partition_roundtrip(values, data_type, compress=False)

    def test_single_value_runs(self):
        self._roundtrip([7] * 500, INT)
        self._roundtrip(["only"] * 500, STRING)
        self._partition_roundtrip([7] * 500, INT)
        self._partition_roundtrip(["only"] * 500, STRING)

    def test_mixed_int_widths(self):
        values = [0, 1, -1, 127, -128, 2**15, -(2**15), 2**31 - 1,
                  -(2**31), 2**62, -(2**62)]
        self._roundtrip(values, BIGINT)
        self._partition_roundtrip(values, BIGINT)
        self._partition_roundtrip(values, BIGINT, compress=False)

    def test_unicode_strings(self):
        values = ["", "über", "naïve", "日本語", "🦈" * 10, "a\x00b",
                  " line", "ﬀ ligature"]
        self._roundtrip(values, STRING)
        self._partition_roundtrip(values, STRING)
        self._partition_roundtrip(values, STRING, compress=False)

    @given(
        st.lists(
            st.one_of(
                st.none(),
                st.integers(-(2**62), 2**62),
            ),
            max_size=150,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_nullable_bigint_partition_roundtrip(self, values):
        self._partition_roundtrip(values, BIGINT)

    @given(
        st.lists(
            st.one_of(st.none(), st.text(max_size=12)),
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_nullable_unicode_partition_roundtrip(self, values):
        self._partition_roundtrip(values, STRING)

    @given(
        st.lists(st.integers(-5, 5), max_size=120),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_runs_and_narrow_ints_partition_roundtrip(
        self, values, compress
    ):
        # Small domains drive the selector toward RLE/dictionary/bitpack.
        self._partition_roundtrip(values, INT, compress=compress)

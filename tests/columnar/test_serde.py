"""Text and binary row serdes."""

from datetime import date, datetime

import pytest
from hypothesis import given, settings, strategies as st

from repro.columnar.serde import BinarySerde, TextSerde
from repro.datatypes import (
    ArrayType,
    BOOLEAN,
    DATE,
    DOUBLE,
    INT,
    BIGINT,
    MapType,
    STRING,
    TIMESTAMP,
    Schema,
)
from repro.errors import StorageError

FULL_SCHEMA = Schema.of(
    ("i", INT),
    ("l", BIGINT),
    ("d", DOUBLE),
    ("s", STRING),
    ("b", BOOLEAN),
    ("dt", DATE),
    ("arr", ArrayType(element_type=INT)),
    ("m", MapType(key_type=STRING, value_type=INT)),
)

SAMPLE_ROWS = [
    (1, 2**40, 3.5, "hello", True, date(2000, 1, 15), [1, 2], {"k": 1}),
    (-7, 0, -0.25, "", False, date(1999, 12, 31), [], {}),
    (None, None, None, None, None, None, None, None),
]


class TestTextSerde:
    def test_roundtrip_full_schema(self):
        serde = TextSerde(FULL_SCHEMA)
        assert serde.decode(serde.encode(SAMPLE_ROWS)) == SAMPLE_ROWS

    def test_empty(self):
        serde = TextSerde(FULL_SCHEMA)
        assert serde.decode(serde.encode([])) == []

    def test_width_mismatch_rejected(self):
        narrow = Schema.of(("a", INT), ("b", INT))
        serde = TextSerde(narrow)
        payload = serde.encode([(1, 2)])
        wrong = TextSerde(Schema.of(("a", INT)))
        with pytest.raises(StorageError):
            wrong.decode(payload)

    def test_boolean_tokens(self):
        serde = TextSerde(Schema.of(("b", BOOLEAN)))
        text = serde.encode([(True,), (False,)]).decode("utf-8")
        assert "true" in text and "false" in text

    def test_timestamp_roundtrip(self):
        serde = TextSerde(Schema.of(("t", TIMESTAMP)))
        rows = [(datetime(2012, 11, 27, 13, 45, 30),)]
        assert serde.decode(serde.encode(rows)) == rows


class TestBinarySerde:
    def test_roundtrip_full_schema(self):
        serde = BinarySerde(FULL_SCHEMA)
        assert serde.decode(serde.encode(SAMPLE_ROWS)) == SAMPLE_ROWS

    def test_empty(self):
        serde = BinarySerde(FULL_SCHEMA)
        assert serde.decode(serde.encode([])) == []

    def test_binary_smaller_than_text_for_numbers(self):
        schema = Schema.of(("a", DOUBLE), ("b", DOUBLE), ("c", BIGINT))
        rows = [
            (1234567.8912345, 2345678.9123456, 123456789012345)
            for __ in range(100)
        ]
        text_size = len(TextSerde(schema).encode(rows))
        binary_size = len(BinarySerde(schema).encode(rows))
        assert binary_size < text_size


class TestPropertyRoundtrips:
    simple_schema = Schema.of(("i", INT), ("s", STRING), ("d", DOUBLE))

    @given(
        st.lists(
            st.tuples(
                st.integers(-2**31 + 1, 2**31 - 1),
                st.text(
                    alphabet=st.characters(
                        blacklist_characters="\x01\n", blacklist_categories=("Cs",)
                    ),
                    max_size=30,
                ),
                st.floats(allow_nan=False, allow_infinity=False),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_text_roundtrip(self, rows):
        serde = TextSerde(self.simple_schema)
        decoded = serde.decode(serde.encode(rows))
        assert len(decoded) == len(rows)
        for got, want in zip(decoded, rows):
            assert got[0] == want[0]
            assert got[1] == want[1]
            assert got[2] == pytest.approx(want[2], nan_ok=True)

    @given(
        st.lists(
            st.tuples(
                st.integers(-2**31 + 1, 2**31 - 1),
                st.text(max_size=30),
                st.floats(allow_nan=False, allow_infinity=False),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_binary_roundtrip(self, rows):
        serde = BinarySerde(self.simple_schema)
        assert serde.decode(serde.encode(rows)) == rows

"""ColumnarPartition: marshalling, late materialization, footprints."""

import random

import pytest

from repro.columnar import (
    ColumnarPartition,
    jvm_object_footprint,
    serialized_footprint,
)
from repro.datatypes import (
    ArrayType,
    BOOLEAN,
    DOUBLE,
    INT,
    STRING,
    Schema,
)

SCHEMA = Schema.of(
    ("id", INT),
    ("mode", STRING),
    ("price", DOUBLE),
    ("flag", BOOLEAN),
)


def _rows(n=500, seed=0):
    rng = random.Random(seed)
    modes = ["AIR", "SHIP", "RAIL"]
    return [
        (i, rng.choice(modes), round(rng.uniform(1, 100), 2), i % 2 == 0)
        for i in range(n)
    ]


class TestRoundtrip:
    def test_rows_roundtrip_exactly(self):
        rows = _rows()
        part = ColumnarPartition.from_rows(SCHEMA, rows)
        assert part.to_rows() == rows
        assert part.num_rows == len(rows)

    def test_empty_partition(self):
        part = ColumnarPartition.from_rows(SCHEMA, [])
        assert part.to_rows() == []
        assert part.num_rows == 0

    def test_rows_are_python_scalars(self):
        part = ColumnarPartition.from_rows(SCHEMA, _rows(10))
        row = part.to_rows()[0]
        assert type(row[0]) is int
        assert type(row[2]) is float
        assert type(row[3]) is bool

    def test_complex_column_roundtrip(self):
        schema = Schema.of(("id", INT), ("tags", ArrayType(element_type=STRING)))
        rows = [(1, ["a", "b"]), (2, []), (3, ["c"])]
        part = ColumnarPartition.from_rows(schema, rows)
        assert part.to_rows() == rows


class TestColumns:
    def test_column_by_name(self):
        rows = _rows(20)
        part = ColumnarPartition.from_rows(SCHEMA, rows)
        assert list(part.column_by_name("mode")) == [r[1] for r in rows]

    def test_decoded_column_cached(self):
        part = ColumnarPartition.from_rows(SCHEMA, _rows(20))
        first = part.column(0)
        second = part.column(0)
        assert first is second

    def test_compression_schemes_reported(self):
        part = ColumnarPartition.from_rows(SCHEMA, _rows())
        schemes = part.compression_schemes()
        assert len(schemes) == 4
        assert schemes[1] == "dictionary"  # 3-value mode column
        assert schemes[3] == "bitset"

    def test_compress_false_uses_plain(self):
        part = ColumnarPartition.from_rows(SCHEMA, _rows(), compress=False)
        assert set(part.compression_schemes()) == {"plain"}


class TestStats:
    def test_stats_collected_per_column(self):
        rows = _rows(100)
        part = ColumnarPartition.from_rows(SCHEMA, rows)
        id_stats = part.stats.column("id")
        assert id_stats.minimum == 0
        assert id_stats.maximum == 99
        mode_stats = part.stats.column("mode")
        assert mode_stats.distinct_values == {"AIR", "SHIP", "RAIL"}


class TestFootprints:
    def test_columnar_beats_serialized_beats_jvm(self):
        rows = _rows(2000)
        columnar = ColumnarPartition.from_rows(SCHEMA, rows)
        col_bytes = columnar.memory_footprint_bytes()
        ser_bytes = serialized_footprint(SCHEMA, rows)
        jvm_bytes = jvm_object_footprint(SCHEMA, rows)
        assert col_bytes < ser_bytes < jvm_bytes

    def test_jvm_overhead_factor_plausible(self):
        # The paper reports ~3.4x (971 MB vs 289 MB) for lineitem.
        rows = _rows(2000)
        ratio = jvm_object_footprint(SCHEMA, rows) / serialized_footprint(
            SCHEMA, rows
        )
        assert 2.0 < ratio < 12.0

    def test_compression_reduces_footprint(self):
        rows = _rows(2000)
        compressed = ColumnarPartition.from_rows(SCHEMA, rows)
        plain = ColumnarPartition.from_rows(SCHEMA, rows, compress=False)
        assert (
            compressed.memory_footprint_bytes()
            < plain.memory_footprint_bytes()
        )

    def test_footprint_used_by_block_store(self):
        from repro.cluster.worker import approximate_size_bytes

        part = ColumnarPartition.from_rows(SCHEMA, _rows(50))
        assert approximate_size_bytes(part) == part.memory_footprint_bytes()


class TestValidation:
    def test_type_error_on_foreign_block(self, ctx):
        from repro.sql.physical import MemstoreScanRDD

        bad = ctx.parallelize([["not a partition"]], 1).glom()
        scan = MemstoreScanRDD(bad, SCHEMA)
        with pytest.raises(Exception):
            scan.collect()

"""Error hierarchy and error-path behaviour across the public API."""

import pytest

from repro import SharkContext
from repro.datatypes import INT, STRING, Schema
from repro.errors import (
    AdmissionRejected,
    AnalysisError,
    BlockLostError,
    CatalogError,
    EngineError,
    FetchFailedError,
    MLError,
    ParseError,
    QueryCancelledError,
    QueryCircuitOpenError,
    QueryDeadlineExceeded,
    QueryLifecycleError,
    ReproError,
    SqlError,
    StorageError,
    TaskError,
    TypeMismatchError,
    UnsupportedFeatureError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            EngineError, SqlError, StorageError, MLError,
            AnalysisError, CatalogError, ParseError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_sql_subtree(self):
        assert issubclass(AnalysisError, SqlError)
        assert issubclass(TypeMismatchError, AnalysisError)
        assert issubclass(UnsupportedFeatureError, SqlError)
        assert issubclass(CatalogError, SqlError)

    def test_engine_subtree(self):
        assert issubclass(TaskError, EngineError)
        assert issubclass(FetchFailedError, EngineError)
        assert issubclass(BlockLostError, EngineError)

    def test_lifecycle_subtree(self):
        assert issubclass(QueryLifecycleError, EngineError)
        for exc_type in (
            AdmissionRejected,
            QueryCancelledError,
            QueryCircuitOpenError,
        ):
            assert issubclass(exc_type, QueryLifecycleError)
        # A deadline expiry IS a cancellation: one handler catches both.
        assert issubclass(QueryDeadlineExceeded, QueryCancelledError)

    def test_lifecycle_messages_carry_context(self):
        rejected = AdmissionRejected(
            "q1", running=2, queued=3, retry_after_s=1.5
        )
        assert rejected.retry_after_s == 1.5
        assert "retry after" in str(rejected)
        deadline = QueryDeadlineExceeded("q2", deadline_s=0.5, elapsed_s=0.7)
        assert deadline.deadline_s == 0.5
        assert "deadline" in str(deadline)
        circuit = QueryCircuitOpenError(
            "SELECT 1", failures=2, retry_after_completions=4
        )
        assert circuit.failures == 2
        assert "circuit open" in str(circuit)

    def test_messages_carry_context(self):
        fetch = FetchFailedError(shuffle_id=3, map_partition=7, worker_id=1)
        assert "shuffle 3" in str(fetch)
        assert fetch.map_partition == 7
        task = TaskError(stage_id=2, partition=5, cause=ValueError("boom"))
        assert "stage 2" in str(task) and "boom" in str(task)
        parse = ParseError("bad token", position=10, line=2)
        assert "line 2" in str(parse)


class TestApiErrorPaths:
    @pytest.fixture
    def shark(self):
        shark = SharkContext(num_workers=2)
        shark.create_table("t", Schema.of(("a", INT), ("b", STRING)))
        shark.load_rows("t", [(1, "x")])
        return shark

    def test_one_base_class_catches_everything(self, shark):
        bad_inputs = [
            "SELECT FROM WHERE",            # parse error
            "SELECT nope FROM t",           # unknown column
            "SELECT * FROM ghost",          # unknown table
            "SELECT frob(a) FROM t",        # unknown function
            "SELECT a FROM t GROUP BY 9",   # bad position
        ]
        for text in bad_inputs:
            with pytest.raises(ReproError):
                shark.sql(text)

    def test_udf_exception_surfaces_as_task_error(self, shark):
        shark.register_udf("explode", lambda v: 1 // 0)
        with pytest.raises(TaskError, match="division"):
            shark.sql("SELECT explode(a) FROM t")

    def test_failed_statement_leaves_catalog_consistent(self, shark):
        with pytest.raises(ReproError):
            shark.sql("CREATE TABLE t2 AS SELECT missing FROM t")
        assert not shark.session.catalog.exists("t2")
        # And the session still works afterwards.
        assert shark.sql("SELECT COUNT(*) FROM t").scalar() == 1

    def test_type_mismatch_at_analysis_time(self, shark):
        with pytest.raises(ReproError):
            shark.sql("SELECT b + b FROM t")  # '+' on strings

    def test_arity_error_names_function(self, shark):
        with pytest.raises(AnalysisError, match="SUBSTR"):
            shark.sql("SELECT SUBSTR(b) FROM t")

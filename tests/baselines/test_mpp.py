"""MPP baseline: coordinator-merge aggregation, coarse-grained recovery."""

import pytest

from repro import SharkContext
from repro.baselines import MppExecutor
from repro.datatypes import INT, STRING, Schema
from repro.errors import QueryAbortedError


@pytest.fixture
def shark():
    shark = SharkContext(num_workers=4)
    shark.create_table(
        "t", Schema.of(("k", STRING), ("v", INT)), cached=True
    )
    shark.load_rows("t", [(f"k{i % 10}", i) for i in range(200)])
    return shark


class TestExecution:
    def test_rows_match_shark(self, shark):
        mpp = MppExecutor(shark.session)
        query = "SELECT k, SUM(v) FROM t GROUP BY k"
        assert sorted(mpp.execute(query).rows) == sorted(
            shark.sql(query).rows
        )

    def test_single_coordinator_merge(self, shark):
        mpp = MppExecutor(shark.session)
        run = mpp.execute("SELECT k, COUNT(*) FROM t GROUP BY k")
        # All groups merged on one coordinator (one reduce partition).
        assert run.coordinator_merge_records == 10

    def test_select_only(self, shark):
        mpp = MppExecutor(shark.session)
        with pytest.raises(QueryAbortedError):
            mpp.execute("DROP TABLE t")


class TestCoarseGrainedRecovery:
    def test_failure_mid_query_restarts(self, shark):
        mpp = MppExecutor(shark.session)
        base = shark.engine.cluster.total_tasks_completed
        shark.inject_failure(worker_id=1, after_tasks=base + 4)
        run = mpp.execute("SELECT k, SUM(v) FROM t GROUP BY k")
        assert run.restarts == 1
        assert sorted(run.rows) == sorted(
            shark.sql("SELECT k, SUM(v) FROM t GROUP BY k").rows
        )

    def test_no_failure_no_restart(self, shark):
        mpp = MppExecutor(shark.session)
        run = mpp.execute("SELECT COUNT(*) FROM t")
        assert run.restarts == 0

    def test_gives_up_when_restarts_exhausted(self, shark):
        mpp = MppExecutor(shark.session, max_restarts=0)
        base = shark.engine.cluster.total_tasks_completed
        shark.inject_failure(worker_id=1, after_tasks=base + 2)
        with pytest.raises(QueryAbortedError):
            mpp.execute("SELECT k, SUM(v) FROM t GROUP BY k")

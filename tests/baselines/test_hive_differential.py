"""Hive baseline: differential correctness vs Shark + job-shape checks.

Shark and the Hive baseline share the front end but differ in execution;
identical rows are the strongest correctness signal both ways (the paper
leans on exactly this property — Shark answers Hive queries unchanged).
"""

import random

import pytest

from repro import SharkContext
from repro.baselines import HiveExecutor
from repro.datatypes import DOUBLE, INT, STRING, Schema


@pytest.fixture(scope="module")
def systems():
    shark = SharkContext(num_workers=4)
    rng = random.Random(13)
    shark.create_table(
        "sales",
        Schema.of(
            ("sale_id", INT), ("region", STRING),
            ("product", STRING), ("amount", DOUBLE),
        ),
        cached=True,
    )
    sales = [
        (
            i,
            rng.choice(["n", "s", "e", "w"]),
            f"p{rng.randint(0, 15)}",
            round(rng.uniform(1, 100), 2),
        )
        for i in range(500)
    ]
    shark.load_rows("sales", sales)
    shark.create_table(
        "products", Schema.of(("product", STRING), ("cat", STRING))
    )
    shark.load_rows(
        "products", [(f"p{i}", ["a", "b"][i % 2]) for i in range(12)]
    )

    def table_rows(entry):
        rdd = shark.session._scan_rdd(entry)
        return shark.engine.run_job(rdd, list)

    hive = HiveExecutor(
        shark.session.catalog,
        shark.store,
        shark.session.registry,
        table_rows=table_rows,
    )
    return shark, hive


DIFFERENTIAL_QUERIES = [
    "SELECT sale_id, amount FROM sales WHERE amount > 50",
    "SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region",
    "SELECT COUNT(*) FROM sales",
    "SELECT product, AVG(amount) FROM sales WHERE region <> 'n' "
    "GROUP BY product HAVING COUNT(*) > 5",
    "SELECT region, COUNT(DISTINCT product) FROM sales GROUP BY region",
    "SELECT s.region, p.cat, SUM(s.amount) FROM sales s "
    "JOIN products p ON s.product = p.product GROUP BY s.region, p.cat",
    "SELECT sale_id FROM sales ORDER BY amount DESC LIMIT 12",
    "SELECT DISTINCT region FROM sales",
    "SELECT region FROM sales WHERE amount > 90 "
    "UNION ALL SELECT region FROM sales WHERE amount < 10",
    "SELECT cat, COUNT(*) FROM sales s LEFT JOIN products p "
    "ON s.product = p.product GROUP BY cat",
]


def _normalize(rows):
    out = []
    for row in rows:
        out.append(
            tuple(
                round(v, 6) if isinstance(v, float) else v for v in row
            )
        )
    return sorted(out, key=repr)


class TestDifferential:
    @pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
    def test_rows_match_shark(self, systems, query):
        shark, hive = systems
        shark_rows = shark.sql(query).rows
        hive_rows = hive.execute(query).rows
        if "LIMIT" in query and "ORDER BY" not in query:
            assert len(shark_rows) == len(hive_rows)
        else:
            assert _normalize(shark_rows) == _normalize(hive_rows), query


class TestJobShapes:
    def test_selection_is_single_map_only_job(self, systems):
        __, hive = systems
        run = hive.execute("SELECT sale_id FROM sales WHERE amount > 50")
        assert len(run.jobs) == 1
        assert run.jobs[0].reduce_tasks == 0

    def test_aggregation_is_one_mapreduce_job(self, systems):
        __, hive = systems
        run = hive.execute(
            "SELECT region, SUM(amount) FROM sales GROUP BY region"
        )
        assert len(run.jobs) == 1
        assert run.jobs[0].reduce_tasks > 0

    def test_global_aggregate_single_reducer(self, systems):
        __, hive = systems
        run = hive.execute("SELECT COUNT(*) FROM sales")
        assert run.jobs[0].reduce_tasks == 1

    def test_join_then_aggregate_is_two_jobs_with_materialization(
        self, systems
    ):
        __, hive = systems
        run = hive.execute(
            "SELECT p.cat, SUM(s.amount) FROM sales s "
            "JOIN products p ON s.product = p.product GROUP BY p.cat"
        )
        assert run.num_jobs == 2
        assert run.jobs[0].materialized_output
        assert run.materialized_bytes > 0

    def test_order_by_runs_single_reducer(self, systems):
        __, hive = systems
        run = hive.execute(
            "SELECT sale_id FROM sales ORDER BY amount LIMIT 5"
        )
        sort_jobs = [j for j in run.jobs if j.name == "order_by"]
        assert sort_jobs and sort_jobs[0].reduce_tasks == 1

    def test_sorted_shuffle_recorded(self, systems):
        __, hive = systems
        run = hive.execute(
            "SELECT region, COUNT(*) FROM sales GROUP BY region"
        )
        assert run.jobs[0].shuffle_bytes > 0

    def test_select_statement_only(self, systems):
        from repro.errors import UnsupportedFeatureError

        __, hive = systems
        with pytest.raises(UnsupportedFeatureError):
            hive.execute("DROP TABLE sales")

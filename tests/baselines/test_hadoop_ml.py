"""Hadoop ML baselines: per-iteration re-reads, result parity with Shark."""

import numpy as np
import pytest

from repro.baselines import HadoopKMeans, HadoopLogisticRegression
from repro.columnar.serde import BinarySerde, TextSerde
from repro.datatypes import Schema
from repro.storage import DistributedFileStore
from repro.workloads import mlgen


@pytest.fixture(scope="module")
def stored():
    data = mlgen.generate_points(400, seed=21)
    text_store = DistributedFileStore()
    blocks = 4
    per_block = len(data.rows) // blocks
    text_serde = TextSerde(data.schema)
    binary_serde = BinarySerde(data.schema)
    text_store.write_file(
        "/ml/points.txt",
        [
            text_serde.encode(data.rows[i * per_block:(i + 1) * per_block])
            for i in range(blocks)
        ],
        format="text",
    )
    text_store.write_file(
        "/ml/points.bin",
        [
            binary_serde.encode(data.rows[i * per_block:(i + 1) * per_block])
            for i in range(blocks)
        ],
        format="binary",
    )
    return text_store, data


class TestLogisticRegression:
    def test_text_and_binary_same_model(self, stored):
        store, data = stored
        text_model, __ = HadoopLogisticRegression(
            store, "/ml/points.txt", data.schema, format="text"
        ).fit(iterations=3, learning_rate=0.05, seed=4)
        binary_model, __ = HadoopLogisticRegression(
            store, "/ml/points.bin", data.schema, format="binary"
        ).fit(iterations=3, learning_rate=0.05, seed=4)
        assert np.allclose(text_model.weights, binary_model.weights)

    def test_matches_shark_trainer(self, stored, ctx):
        from repro.ml import LabeledPoint, LogisticRegression

        store, data = stored
        hadoop_model, __ = HadoopLogisticRegression(
            store, "/ml/points.txt", data.schema, format="text"
        ).fit(iterations=3, learning_rate=0.05, seed=4)
        points = ctx.parallelize(
            [
                LabeledPoint(float(r[0]), np.asarray(r[1:], dtype=float))
                for r in data.rows
            ],
            4,
        )
        shark_model = LogisticRegression(
            iterations=3, learning_rate=0.05, seed=4
        ).fit(points)
        assert np.allclose(hadoop_model.weights, shark_model.weights)

    def test_rereads_input_every_iteration(self, stored):
        store, data = stored
        before = store.counters.bytes_read
        __, trace = HadoopLogisticRegression(
            store, "/ml/points.txt", data.schema, format="text"
        ).fit(iterations=4, seed=4)
        read = store.counters.bytes_read - before
        file_size = store.file("/ml/points.txt").size_bytes
        assert read >= 4 * file_size
        assert trace.num_iterations == 4

    def test_text_input_larger_than_binary(self, stored):
        store, data = stored
        __, text_trace = HadoopLogisticRegression(
            store, "/ml/points.txt", data.schema, format="text"
        ).fit(iterations=1, seed=4)
        __, binary_trace = HadoopLogisticRegression(
            store, "/ml/points.bin", data.schema, format="binary"
        ).fit(iterations=1, seed=4)
        assert text_trace.mean_input_bytes > binary_trace.mean_input_bytes

    def test_bad_format_rejected(self, stored):
        from repro.errors import MLError

        store, data = stored
        with pytest.raises(MLError):
            HadoopLogisticRegression(
                store, "/ml/points.txt", data.schema, format="orc"
            )


class TestKMeans:
    def test_converges_and_traces(self, stored):
        store, data = stored
        feature_schema = Schema(data.schema.fields[1:])
        serde = TextSerde(feature_schema)
        features = [row[1:] for row in data.rows]
        store.write_file(
            "/ml/features.txt", [serde.encode(features)], format="text"
        )
        model, trace = HadoopKMeans(
            store, "/ml/features.txt", feature_schema, format="text"
        ).fit(k=2, iterations=3, seed=6)
        assert model.centers.shape == (2, mlgen.NUM_FEATURES)
        assert trace.num_iterations == 3
        assert np.isfinite(model.inertia)

"""Hive lowering: job shapes for the remaining operators."""

import pytest

from repro import SharkContext
from repro.baselines import HiveExecutor
from repro.datatypes import DOUBLE, INT, STRING, Schema


@pytest.fixture(scope="module")
def systems():
    shark = SharkContext(num_workers=3)
    shark.create_table(
        "t", Schema.of(("k", INT), ("g", STRING), ("v", DOUBLE)),
        cached=True,
    )
    shark.load_rows(
        "t",
        [(i % 10, f"g{i % 3}", float(i)) for i in range(120)],
    )

    def table_rows(entry):
        rdd = shark.session._scan_rdd(entry)
        return shark.engine.run_job(rdd, list)

    hive = HiveExecutor(
        shark.session.catalog, shark.store, shark.session.registry,
        table_rows=table_rows,
    )
    return shark, hive


class TestOperatorJobShapes:
    def test_distinct_is_one_shuffle_job(self, systems):
        shark, hive = systems
        run = hive.execute("SELECT DISTINCT g FROM t")
        shuffle_jobs = [j for j in run.jobs if j.reduce_tasks > 0]
        assert len(shuffle_jobs) == 1
        assert shuffle_jobs[0].name == "distinct"
        assert sorted(run.rows) == sorted(shark.sql(
            "SELECT DISTINCT g FROM t"
        ).rows)

    def test_union_branches_run_separately(self, systems):
        shark, hive = systems
        query = (
            "SELECT k FROM t WHERE v > 100 "
            "UNION ALL SELECT k FROM t WHERE v < 10"
        )
        run = hive.execute(query)
        assert sorted(run.rows) == sorted(shark.sql(query).rows)

    def test_distribute_by_is_shuffle(self, systems):
        shark, hive = systems
        run = hive.execute("SELECT k, v FROM t DISTRIBUTE BY k")
        assert any(j.name == "distribute_by" for j in run.jobs)
        assert len(run.rows) == 120

    def test_limit_caps_rows(self, systems):
        shark, hive = systems
        run = hive.execute("SELECT k FROM t LIMIT 7")
        assert len(run.rows) == 7

    def test_order_by_total_order(self, systems):
        shark, hive = systems
        run = hive.execute("SELECT v FROM t ORDER BY v DESC LIMIT 5")
        values = [row[0] for row in run.rows]
        assert values == sorted(values, reverse=True)
        assert values == [
            row[0]
            for row in shark.sql(
                "SELECT v FROM t ORDER BY v DESC LIMIT 5"
            ).rows
        ]

    def test_scan_input_bytes_are_on_storage_sizes(self, systems):
        shark, hive = systems
        run = hive.execute("SELECT g, COUNT(*) FROM t GROUP BY g")
        # Hive reads the full encoded table regardless of projection.
        from repro.columnar.serde import TextSerde

        entry = shark.table_entry("t")
        rdd = shark.session._scan_rdd(entry)
        blocks = shark.engine.run_job(rdd, list)
        expected = sum(
            len(TextSerde(entry.schema).encode(block)) for block in blocks
        )
        assert run.jobs[0].input_bytes == expected

    def test_combiner_flag_set_for_aggregations(self, systems):
        __, hive = systems
        run = hive.execute("SELECT g, SUM(v) FROM t GROUP BY g")
        assert run.jobs[0].used_combiner

    def test_subquery_fused_into_outer_job(self, systems):
        shark, hive = systems
        query = (
            "SELECT g, COUNT(*) FROM "
            "(SELECT g, v FROM t WHERE v > 20) sub GROUP BY g"
        )
        run = hive.execute(query)
        # Filter + projection fuse into the aggregate job's map phase.
        assert run.num_jobs == 1
        assert sorted(run.rows) == sorted(shark.sql(query).rows)

"""The miniature MapReduce engine."""

import pytest

from repro.baselines import MapReduceEngine


@pytest.fixture
def engine():
    return MapReduceEngine(num_reducers=4)


def word_blocks():
    return [
        ["the quick brown fox", "the lazy dog"],
        ["the fox jumps"],
    ]


class TestWordCount:
    def test_classic_word_count(self, engine):
        run = engine.run_job(
            word_blocks(),
            mapper=lambda line: [(w, 1) for w in line.split()],
            reducer=lambda word, counts: [(word, sum(counts))],
            name="wordcount",
        )
        counts = dict(run.rows)
        assert counts["the"] == 3
        assert counts["fox"] == 2
        assert counts["dog"] == 1

    def test_combiner_shrinks_shuffle(self, engine):
        without = engine.run_job(
            word_blocks(),
            mapper=lambda line: [(w, 1) for w in line.split()],
            reducer=lambda word, counts: [(word, sum(counts))],
        )
        with_combiner = engine.run_job(
            word_blocks(),
            mapper=lambda line: [(w, 1) for w in line.split()],
            reducer=lambda word, counts: [(word, sum(counts))],
            combiner=lambda word, counts: [(word, sum(counts))],
        )
        assert dict(with_combiner.rows) == dict(without.rows)
        assert (
            with_combiner.jobs[0].map_output_records
            < without.jobs[0].map_output_records
        )


class TestJobStats:
    def test_task_counts(self, engine):
        run = engine.run_job(
            word_blocks(),
            mapper=lambda line: [(len(line), line)],
            reducer=lambda k, vs: vs,
            num_reducers=2,
        )
        stats = run.jobs[0]
        assert stats.map_tasks == 2
        assert stats.reduce_tasks == 2
        assert stats.input_records == 3

    def test_map_only_job_has_no_shuffle(self, engine):
        run = engine.run_job(
            word_blocks(),
            mapper=lambda line: [line.upper()],
            name="upper",
        )
        stats = run.jobs[0]
        assert stats.reduce_tasks == 0
        assert stats.shuffle_bytes == 0
        assert run.rows == [
            "THE QUICK BROWN FOX", "THE LAZY DOG", "THE FOX JUMPS",
        ]

    def test_shuffle_bytes_recorded(self, engine):
        run = engine.run_job(
            word_blocks(),
            mapper=lambda line: [(w, 1) for w in line.split()],
            reducer=lambda word, counts: [(word, sum(counts))],
        )
        assert run.jobs[0].shuffle_bytes > 0
        assert run.jobs[0].output_bytes > 0

    def test_materialize_flag_passthrough(self, engine):
        run = engine.run_job(
            word_blocks(),
            mapper=lambda line: [(1, line)],
            reducer=lambda k, vs: vs,
            materialize_output=True,
        )
        assert run.jobs[0].materialized_output


class TestPartitioningSemantics:
    def test_same_key_same_reducer(self, engine):
        run = engine.run_job(
            [[("k", i) for i in range(10)]],
            mapper=lambda pair: [pair],
            reducer=lambda key, values: [(key, sorted(values))],
            num_reducers=4,
        )
        # All 10 values reduced together.
        assert dict(run.rows) == {"k": list(range(10))}

    def test_heterogeneous_keys_sort(self, engine):
        run = engine.run_job(
            [[(None, 1), ("a", 2), (3, 4), (("t", 1), 5)]],
            mapper=lambda pair: [pair],
            reducer=lambda key, values: [(key, values)],
            num_reducers=1,
        )
        assert len(run.rows) == 4

    def test_rejects_bad_reducer_count(self):
        with pytest.raises(ValueError):
            MapReduceEngine(num_reducers=0)

    def test_empty_input(self, engine):
        run = engine.run_job(
            [],
            mapper=lambda x: [x],
            reducer=lambda k, vs: vs,
        )
        assert run.rows == []

"""Workload generators: determinism, distributions, paper-scale metadata."""

from datetime import date

import pytest

from repro.workloads import mlgen, pavlo, tpch, warehouse
from repro.workloads.base import GB, TB


class TestPavlo:
    def test_rankings_shape(self):
        data = pavlo.generate_rankings(500)
        assert len(data.rows) == 500
        assert data.schema.names == ["pageURL", "pageRank", "avgDuration"]
        assert all(0 <= r[1] <= 100 for r in data.rows)
        urls = {r[0] for r in data.rows}
        assert len(urls) == 500  # unique pages

    def test_uservisits_dates_cover_filter_window(self):
        data = pavlo.generate_uservisits(2000, num_pages=500)
        dates = [r[2] for r in data.rows]
        assert min(dates) >= date(2000, 1, 1)
        in_window = [
            d for d in dates if date(2000, 1, 15) <= d <= date(2000, 1, 22)
        ]
        assert 0 < len(in_window) < len(dates)

    def test_zipfian_url_popularity(self):
        data = pavlo.generate_uservisits(5000, num_pages=1000)
        from collections import Counter

        counts = Counter(r[1] for r in data.rows)
        top = counts.most_common(10)
        head = sum(c for __, c in top)
        assert head > 0.2 * len(data.rows)  # heavy head

    def test_deterministic(self):
        assert (
            pavlo.generate_rankings(100).rows
            == pavlo.generate_rankings(100).rows
        )

    def test_represented_scale(self):
        rankings = pavlo.generate_rankings(100)
        visits = pavlo.generate_uservisits(100)
        assert rankings.represented_bytes == 100 * GB
        assert visits.represented_bytes == 2 * TB
        assert rankings.scale_factor > 1000

    def test_queries_parse(self):
        from repro.sql.parser import parse

        parse(pavlo.SELECTION_QUERY.format(cutoff=10))
        parse(pavlo.AGGREGATION_FULL_QUERY)
        parse(pavlo.AGGREGATION_SUBSTR_QUERY)
        parse(pavlo.JOIN_QUERY)


class TestTpch:
    def test_lineitem_cardinalities(self):
        data = tpch.generate_lineitem(8000)
        shipmodes = {r[12] for r in data.rows}
        assert shipmodes <= set(tpch.SHIP_MODES)
        assert len(shipmodes) == 7
        receipt_dates = {r[11] for r in data.rows}
        assert len(receipt_dates) > 500
        orders = {r[0] for r in data.rows}
        # ~4 lines per order.
        assert len(orders) == pytest.approx(2000, rel=0.2)

    def test_supplier_ratio(self):
        lineitem = tpch.generate_lineitem(6000)
        suppliers = {r[2] for r in lineitem.rows}
        assert len(suppliers) <= 6000 // tpch.LINEITEM_TO_SUPPLIER_RATIO

    def test_supplier_table(self):
        data = tpch.generate_supplier(100)
        assert len(data.rows) == 100
        assert all(r[0] == i + 1 for i, r in enumerate(data.rows))

    def test_orders_and_customer(self):
        orders = tpch.generate_orders(200)
        customers = tpch.generate_customer(100)
        assert len(orders.rows) == 200
        assert len(customers.rows) == 100

    def test_scales(self):
        small = tpch.generate_lineitem(100, represented=tpch.SCALE_100GB)
        big = tpch.generate_lineitem(100, represented=tpch.SCALE_1TB)
        # 1 TB vs 100 GB (binary units: x10.24).
        assert big.represented_bytes == pytest.approx(
            10 * small.represented_bytes, rel=0.05
        )

    def test_queries_parse(self):
        from repro.sql.parser import parse

        for query in tpch.AGGREGATION_QUERIES.values():
            parse(query)
        parse(tpch.PDE_JOIN_QUERY)


class TestWarehouse:
    def test_schema_has_103_columns(self):
        assert len(warehouse.SESSIONS_SCHEMA) == warehouse.TOTAL_COLUMNS

    def test_rows_clustered_by_day(self):
        data = warehouse.generate_sessions(num_days=5, rows_per_day=20)
        days = [r[1] for r in data.rows]
        assert days == sorted(days)

    def test_country_clustered_within_day(self):
        data = warehouse.generate_sessions(num_days=2, rows_per_day=30)
        day0 = [r[3] for r in data.rows if r[1] == 0]
        assert day0 == sorted(day0)

    def test_complex_types_present(self):
        data = warehouse.generate_sessions(num_days=1, rows_per_day=5)
        row = data.rows[0]
        events = row[data.schema.index_of("events")]
        tags = row[data.schema.index_of("tags")]
        assert isinstance(events, list)
        assert isinstance(tags, dict)

    def test_trace_statistics_from_paper(self):
        assert warehouse.TRACE_TOTAL_QUERIES == 3833
        assert warehouse.TRACE_PRUNABLE_QUERIES == 3277

    def test_queries_parse(self):
        from repro.sql.parser import parse

        for query in warehouse.representative_queries().values():
            parse(query)


class TestMlgen:
    def test_separable_classes(self):
        data = mlgen.generate_points(500, separation=3.0)
        positives = [r for r in data.rows if r[0] == 1]
        negatives = [r for r in data.rows if r[0] == -1]
        assert positives and negatives
        mean_pos = sum(r[1] for r in positives) / len(positives)
        mean_neg = sum(r[1] for r in negatives) / len(negatives)
        assert mean_pos > 1.0 > -1.0 > mean_neg

    def test_ten_features(self):
        data = mlgen.generate_points(10)
        assert len(data.rows[0]) == 1 + mlgen.NUM_FEATURES
        assert len(data.schema) == 1 + mlgen.NUM_FEATURES

    def test_deterministic(self):
        assert (
            mlgen.generate_points(50).rows == mlgen.generate_points(50).rows
        )

    def test_paper_scale(self):
        data = mlgen.generate_points(10)
        assert data.represented_bytes == 100 * GB
        assert data.represented_rows == 10**9


class TestDatasetContainer:
    def test_local_bytes_and_scale(self):
        data = pavlo.generate_rankings(100)
        assert data.local_bytes > 0
        assert data.scale_factor == pytest.approx(
            data.represented_bytes / data.local_bytes
        )
        assert data.row_scale_factor == pytest.approx(
            data.represented_rows / 100
        )

    def test_repr_mentions_scale(self):
        assert "representing" in repr(pavlo.generate_rankings(10))

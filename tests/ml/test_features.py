"""Feature extraction from SQL results (the sql2rdd -> mapRows pipeline)."""

import numpy as np
import pytest

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.errors import MLError
from repro.ml import (
    LabeledPoint,
    LogisticRegression,
    label_feature_extractor,
    vectorize_rows,
)


@pytest.fixture
def shark_users():
    shark = SharkContext(num_workers=2)
    shark.create_table(
        "users",
        Schema.of(
            ("uid", INT), ("age", INT), ("income", DOUBLE), ("label", INT)
        ),
        cached=True,
    )
    rows = [
        (i, 20 + i % 40, 1000.0 * (i % 7), 1 if i % 2 else -1)
        for i in range(100)
    ]
    shark.load_rows("users", rows)
    return shark, rows


class TestLabeledPoint:
    def test_rejects_matrix_features(self):
        with pytest.raises(MLError):
            LabeledPoint(1.0, np.zeros((2, 2)))

    def test_holds_vector(self):
        point = LabeledPoint(-1.0, np.array([1.0, 2.0]))
        assert point.label == -1.0
        assert point.features.shape == (1, 2)[1:]


class TestExtractors:
    def test_label_feature_extractor(self, shark_users):
        shark, rows = shark_users
        table = shark.sql2rdd("SELECT age, income, label FROM users")
        extract = label_feature_extractor("label", ["age", "income"])
        points = table.map_rows(extract).collect()
        assert len(points) == 100
        assert points[0].features.shape == (2,)
        assert points[0].label in (-1.0, 1.0)

    def test_vectorize_rows(self, shark_users):
        shark, rows = shark_users
        table = shark.sql2rdd("SELECT age, income FROM users")
        vectors = vectorize_rows(table, ["income", "age"]).collect()
        assert vectors[0].shape == (2,)
        # Column order follows the requested feature list.
        assert vectors[0][0] == rows[0][2]
        assert vectors[0][1] == rows[0][1]


class TestListingOnePipeline:
    """The paper's Listing 1: SQL -> mapRows -> logistic regression."""

    def test_end_to_end(self, shark_users):
        shark, rows = shark_users
        users = shark.sql2rdd(
            "SELECT age, income, label FROM users WHERE uid >= 0"
        )

        def extract(row):
            return LabeledPoint(
                float(row.get_int("label")),
                np.array(
                    [row.get_int("age") / 60.0,
                     row.get_double("income") / 7000.0,
                     1.0]
                ),
            )

        features = users.map_rows(extract).cache()
        model = LogisticRegression(iterations=3, learning_rate=0.1).fit(
            features
        )
        assert np.all(np.isfinite(model.weights))
        assert features.count() == 100

"""Linear regression on RDDs."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml import LabeledPoint, LinearRegression


def _linear_rdd(ctx, slope=2.0, intercept=1.0, noise=0.01, n=300, seed=8):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0, 1, size=n)
    ys = slope * xs + intercept + rng.normal(0, noise, size=n)
    points = [
        LabeledPoint(float(y), np.array([float(x)])) for x, y in zip(xs, ys)
    ]
    return ctx.parallelize(points, 6)


class TestFitting:
    def test_recovers_line(self, ctx):
        points = _linear_rdd(ctx)
        model = LinearRegression(iterations=300, learning_rate=0.5).fit(points)
        assert model.weights[0] == pytest.approx(2.0, abs=0.1)
        assert model.intercept == pytest.approx(1.0, abs=0.1)

    def test_without_intercept(self, ctx):
        points = _linear_rdd(ctx, intercept=0.0)
        model = LinearRegression(
            iterations=300, learning_rate=0.5, fit_intercept=False
        ).fit(points)
        assert model.intercept == 0.0
        assert model.weights[0] == pytest.approx(2.0, abs=0.1)

    def test_multidimensional(self, ctx):
        rng = np.random.default_rng(1)
        true_w = np.array([1.0, -2.0, 0.5])
        xs = rng.uniform(-1, 1, size=(400, 3))
        ys = xs @ true_w + 0.3
        points = ctx.parallelize(
            [LabeledPoint(float(y), x) for x, y in zip(xs, ys)], 8
        )
        model = LinearRegression(iterations=400, learning_rate=0.5).fit(points)
        assert np.allclose(model.weights, true_w, atol=0.1)
        assert model.intercept == pytest.approx(0.3, abs=0.1)

    def test_loss_decreases(self, ctx):
        points = _linear_rdd(ctx)
        model = LinearRegression(
            iterations=50, learning_rate=0.5, track_loss=True
        ).fit(points)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_mse_small_after_fit(self, ctx):
        points = _linear_rdd(ctx)
        model = LinearRegression(iterations=300, learning_rate=0.5).fit(points)
        local = points.collect()
        assert model.mean_squared_error(local) < 0.01

    def test_empty_rejected(self, ctx):
        with pytest.raises(MLError):
            LinearRegression(iterations=1).fit(ctx.parallelize([], 1))

    def test_validation(self):
        with pytest.raises(MLError):
            LinearRegression(iterations=0)


class TestModel:
    def test_predict(self, ctx):
        points = _linear_rdd(ctx)
        model = LinearRegression(iterations=200, learning_rate=0.5).fit(points)
        assert model.predict(np.array([0.5])) == pytest.approx(2.0, abs=0.2)

    def test_mse_requires_points(self, ctx):
        points = _linear_rdd(ctx, n=50)
        model = LinearRegression(iterations=5).fit(points)
        with pytest.raises(MLError):
            model.mean_squared_error([])

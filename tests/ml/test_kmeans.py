"""k-means on RDDs."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml import KMeans


def _clustered_rdd(ctx, centers, points_per_center=80, seed=11):
    rng = np.random.default_rng(seed)
    points = []
    for center in centers:
        cluster = rng.normal(0.0, 0.3, size=(points_per_center, len(center)))
        points.extend(np.asarray(center) + row for row in cluster)
    rng.shuffle(points)
    return ctx.parallelize(points, 6)


class TestClustering:
    def test_recovers_true_centers(self, ctx):
        true_centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 5.0)]
        points = _clustered_rdd(ctx, true_centers)
        best = min(
            (
                KMeans(k=3, iterations=12, seed=seed).fit(points)
                for seed in (1, 2, 3)
            ),
            key=lambda model: model.inertia,
        )
        for expected in true_centers:
            distances = [
                float(np.linalg.norm(np.asarray(expected) - center))
                for center in best.centers
            ]
            assert min(distances) < 1.0, (expected, best.centers)

    def test_inertia_decreases_with_iterations(self, ctx):
        points = _clustered_rdd(ctx, [(0, 0), (8, 8)])
        early = KMeans(k=2, iterations=1, seed=2).fit(points)
        late = KMeans(k=2, iterations=10, seed=2).fit(points)
        assert late.inertia <= early.inertia + 1e-9

    def test_deterministic(self, ctx):
        points = _clustered_rdd(ctx, [(0, 0), (5, 5)])
        first = KMeans(k=2, iterations=4, seed=9).fit(points)
        second = KMeans(k=2, iterations=4, seed=9).fit(points)
        assert np.allclose(first.centers, second.centers)

    def test_predict_assigns_nearest(self, ctx):
        points = _clustered_rdd(ctx, [(0, 0), (10, 10)])
        model = KMeans(k=2, iterations=5).fit(points)
        near_origin = model.predict(np.array([0.1, -0.2]))
        near_far = model.predict(np.array([9.8, 10.1]))
        assert near_origin != near_far

    def test_k_larger_than_data_rejected(self, ctx):
        points = ctx.parallelize([np.array([1.0]), np.array([2.0])], 1)
        with pytest.raises(MLError):
            KMeans(k=5, iterations=1).fit(points)

    def test_parameter_validation(self):
        with pytest.raises(MLError):
            KMeans(k=0)
        with pytest.raises(MLError):
            KMeans(k=2, iterations=0)

    def test_survives_worker_loss(self, ctx):
        points = _clustered_rdd(ctx, [(0, 0), (10, 10)]).cache()
        points.count()
        baseline = KMeans(k=2, iterations=5, seed=4).fit(points)
        ctx.kill_worker(0)
        recovered = KMeans(k=2, iterations=5, seed=4).fit(points)
        assert np.allclose(baseline.centers, recovered.centers)

"""Logistic regression on RDDs: convergence, determinism, fault tolerance."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml import LabeledPoint, LogisticRegression
from repro.workloads import mlgen


def _points_rdd(ctx, num_rows=600, separation=2.5, seed=3):
    data = mlgen.generate_points(num_rows, separation=separation, seed=seed)
    rows = data.rows

    def to_point(row):
        return LabeledPoint(float(row[0]), np.asarray(row[1:], dtype=float))

    return ctx.parallelize(rows, 8).map(to_point), rows


class TestTraining:
    def test_converges_on_separable_data(self, ctx):
        points, rows = _points_rdd(ctx)
        model = LogisticRegression(iterations=8, learning_rate=0.05).fit(
            points.cache()
        )
        labeled = [
            LabeledPoint(float(r[0]), np.asarray(r[1:], dtype=float))
            for r in rows
        ]
        assert model.accuracy(labeled) > 0.95

    def test_deterministic_given_seed(self, ctx):
        points, __ = _points_rdd(ctx)
        first = LogisticRegression(iterations=3, seed=7).fit(points)
        second = LogisticRegression(iterations=3, seed=7).fit(points)
        assert np.allclose(first.weights, second.weights)

    def test_different_seed_different_start(self, ctx):
        points, __ = _points_rdd(ctx)
        first = LogisticRegression(iterations=1, seed=1).fit(points)
        second = LogisticRegression(iterations=1, seed=2).fit(points)
        assert not np.allclose(first.weights, second.weights)

    def test_loss_decreases(self, ctx):
        points, __ = _points_rdd(ctx)
        model = LogisticRegression(
            iterations=6, learning_rate=0.05, track_loss=True
        ).fit(points.cache())
        assert model.loss_history[-1] < model.loss_history[0]

    def test_dimensions_inferred(self, ctx):
        points, __ = _points_rdd(ctx)
        model = LogisticRegression(iterations=1).fit(points)
        assert len(model.weights) == mlgen.NUM_FEATURES

    def test_empty_rdd_rejected(self, ctx):
        empty = ctx.parallelize([], 1)
        with pytest.raises(MLError):
            LogisticRegression(iterations=1).fit(empty)

    def test_invalid_iterations(self):
        with pytest.raises(MLError):
            LogisticRegression(iterations=0)


class TestModel:
    def test_predict_signs(self, ctx):
        points, rows = _points_rdd(ctx)
        model = LogisticRegression(iterations=8, learning_rate=0.05).fit(
            points
        )
        positive = next(r for r in rows if r[0] == 1)
        negative = next(r for r in rows if r[0] == -1)
        assert model.predict(np.asarray(positive[1:], dtype=float)) == 1
        assert model.predict(np.asarray(negative[1:], dtype=float)) == -1

    def test_probability_bounds(self, ctx):
        points, rows = _points_rdd(ctx, num_rows=100)
        model = LogisticRegression(iterations=2).fit(points)
        p = model.predict_probability(np.asarray(rows[0][1:], dtype=float))
        assert 0.0 <= p <= 1.0

    def test_accuracy_requires_points(self, ctx):
        points, __ = _points_rdd(ctx, num_rows=100)
        model = LogisticRegression(iterations=1).fit(points)
        with pytest.raises(MLError):
            model.accuracy([])


class TestFaultTolerance:
    def test_training_survives_worker_loss(self, ctx):
        points, rows = _points_rdd(ctx)
        cached = points.cache()
        cached.count()
        baseline = LogisticRegression(iterations=4, seed=5).fit(cached)
        ctx.kill_worker(1)
        recovered = LogisticRegression(iterations=4, seed=5).fit(cached)
        # Deterministic lineage recomputation: identical weights.
        assert np.allclose(baseline.weights, recovered.weights)

    def test_mid_training_injected_failure(self, ctx):
        points, __ = _points_rdd(ctx)
        cached = points.cache()
        cached.count()
        ctx.inject_failure(worker_id=2, after_tasks=5)
        model = LogisticRegression(iterations=3, seed=5).fit(cached)
        assert np.all(np.isfinite(model.weights))

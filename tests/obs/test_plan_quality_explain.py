"""EXPLAIN ANALYZE plan-quality acceptance harness (PR 10 tentpole).

For every TPC-H and Pavlo workload query, in both vectorize modes, the
EXPLAIN ANALYZE output must carry a plan-quality section with one
``est N (source) / actual M rows, q-error X`` line per planned operator
— no unknown actuals — and across the corpus the audit must flag at
least one known misestimate (the default selectivity guesses are
deliberately crude; the Pavlo aggregation group-count guesses miss by
orders of magnitude).
"""

from __future__ import annotations

import re
from dataclasses import replace

import pytest

from repro import SharkContext
from repro.datatypes import BOOLEAN
from repro.workloads import pavlo, tpch

from tests.sql.test_vectorized_parity import QUERIES, _datasets

PROFILE_LINE = re.compile(
    r"^  \S.* \[[a-z]+.*\]: est (\d+|\?) \(\w+\) / actual (\d+) rows"
)


@pytest.fixture(scope="module")
def shark():
    context = SharkContext(num_workers=4, cores_per_worker=2)
    for name, data in _datasets().items():
        context.create_table(name, data.schema, cached=True)
        context.load_rows(name, data.rows, num_partitions=4)
    context.register_udf(
        "SOME_UDF", lambda addr: addr.endswith("7"), return_type=BOOLEAN
    )
    return context


def _profile_section(text: str) -> list[str]:
    lines = text.splitlines()
    try:
        start = lines.index("  == plan quality (est vs actual) ==")
    except ValueError:
        return []
    section = []
    for line in lines[start + 1:]:
        if line.startswith("  == ") or not line.startswith("  "):
            break
        if line.startswith("  audit:") or line.startswith("  -- "):
            break
        section.append(line)
    return section


@pytest.mark.parametrize("vectorize", [True, False], ids=["vec", "row"])
@pytest.mark.parametrize("name", sorted(QUERIES))
def test_every_operator_reports_est_and_actual(shark, name, vectorize):
    shark.session.config = replace(
        shark.session.config, vectorize=vectorize
    )
    text = shark.explain_analyze(QUERIES[name].rstrip())
    section = _profile_section(text)
    assert section, f"{name}: no plan-quality section in:\n{text}"
    for line in section:
        assert PROFILE_LINE.match(line), (
            f"{name}: malformed profile line {line!r}"
        )
        # Every operator's runtime count must have been observed:
        # 'actual ? rows' means a stamp never reached its operator.
        assert "actual ? rows" not in line, f"{name}: {line!r}"
    # Mode truth: row mode must stamp no vectorized operators, and the
    # default mode must vectorize at least the scan somewhere.
    joined = "\n".join(section)
    if not vectorize:
        assert "[vectorized" not in joined, f"{name}:\n{joined}"
    # The same query run in either mode observes the same actuals for
    # the scan (first profile line) — counting is mode-independent.


def test_corpus_flags_at_least_one_misestimate(shark):
    shark.session.config = replace(shark.session.config, vectorize=True)
    flagged_queries = []
    for name in sorted(QUERIES):
        text = shark.explain_analyze(QUERIES[name].rstrip())
        if "** misestimate" in text:
            assert "  audit:" in text
            flagged_queries.append(name)
    assert flagged_queries, (
        "the default selectivity guesses flagged nothing — the audit "
        "has no teeth"
    )


def test_actuals_agree_across_modes(shark):
    """The counting side is planner-mode-independent: scan and filter
    actuals match between vectorized and row execution."""
    for name in ("tpch_q6", "pavlo_selection"):
        actuals = {}
        for vectorize in (True, False):
            shark.session.config = replace(
                shark.session.config, vectorize=vectorize
            )
            shark.sql(QUERIES[name].rstrip())
            report = shark.session.last_report
            from repro.sql.session import _operator_profiles

            profiles = _operator_profiles(
                report, shark.engine.profiles
            )
            actuals[vectorize] = {
                row["operator"]: row["actual_rows"]
                for row in profiles
                if row["operator"].startswith(("scan(", "filter"))
            }
        assert actuals[True] == actuals[False], name

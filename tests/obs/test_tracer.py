"""Tracer, VirtualClock, and Chrome-trace export unit tests."""

from __future__ import annotations

import json

from repro.costmodel.models import TaskCostVector
from repro.obs import Tracer, VirtualClock
from repro.obs.clock import DRIVER_LANE


class TestVirtualClock:
    def test_lanes_advance_independently(self):
        clock = VirtualClock()
        start0, end0 = clock.advance_lane(0, 2.0)
        start1, end1 = clock.advance_lane(1, 1.0)
        assert (start0, end0) == (0.0, 2.0)
        assert (start1, end1) == (0.0, 1.0)
        assert clock.now() == 2.0

    def test_not_before_delays_start(self):
        clock = VirtualClock()
        start, end = clock.advance_lane(0, 1.0, not_before=5.0)
        assert (start, end) == (5.0, 6.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance_lane(0, 3.0)
        clock.reset()
        assert clock.now() == 0.0
        assert clock.lane_time(0) == 0.0


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        span = tracer.begin_span("job", "job")
        tracer.end_span(span)
        tracer.task_span("t", lane=0, seconds=1.0)
        tracer.instant("e", "cluster")
        assert span is None
        assert len(tracer.trace) == 0

    def test_metrics_live_while_disabled(self):
        tracer = Tracer()
        tracer.metrics.inc("tasks.launched")
        assert tracer.metrics.value("tasks.launched") == 1

    def test_span_nesting(self):
        tracer = Tracer(enabled=True)
        job = tracer.begin_span("job 0", "job")
        stage = tracer.begin_span("stage 0", "stage")
        tracer.end_span(stage)
        tracer.end_span(job)
        assert stage.parent_id == job.span_id
        assert job.parent_id is None
        assert tracer.trace.children_of(job) == [stage]

    def test_task_span_advances_lane_and_times_nest(self):
        tracer = Tracer(enabled=True)
        with tracer.span("stage 0", "stage") as stage:
            first = tracer.task_span("t0", lane=0, seconds=2.0)
            second = tracer.task_span("t1", lane=0, seconds=1.0)
        assert first.start == stage.start
        assert second.start == first.end  # same lane: serialized
        assert stage.end >= second.end

    def test_task_span_cost_vector_duration(self):
        tracer = Tracer(enabled=True)
        vector = TaskCostVector(records_in=1000.0, bytes_in=1 << 20)
        span = tracer.task_span("t", lane=0, vector=vector)
        assert span.duration > 0.0
        assert span.duration == tracer.estimate_seconds(vector)

    def test_end_span_heals_unbalanced_exits(self):
        tracer = Tracer(enabled=True)
        outer = tracer.begin_span("outer", "job")
        inner = tracer.begin_span("inner", "stage")
        # An exception path skipped inner's end_span.
        tracer.end_span(outer)
        assert inner.end is not None
        assert tracer.begin_span("next", "job").parent_id is None

    def test_reset_keeps_metrics(self):
        tracer = Tracer(enabled=True)
        tracer.metrics.inc("x")
        with tracer.span("s", "stage"):
            pass
        tracer.reset()
        assert len(tracer.trace) == 0
        assert tracer.metrics.value("x") == 1


class TestChromeTrace:
    def _traced(self) -> Tracer:
        tracer = Tracer(enabled=True)
        with tracer.span("job 0", "job"):
            tracer.task_span("task", lane=0, seconds=1.0)
            tracer.task_span("task", lane=1, seconds=1.0)
            tracer.instant("worker.kill", "cluster", lane=1, worker_id=1)
        return tracer

    def test_document_structure(self):
        document = self._traced().trace.to_chrome_trace(
            metadata={"demo": "unit"}
        )
        assert document["displayTimeUnit"] == "ms"
        assert document["metadata"] == {"demo": "unit"}
        phases = {event["ph"] for event in document["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_one_thread_per_lane_driver_first(self):
        document = self._traced().trace.to_chrome_trace()
        threads = [
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        ]
        assert threads == ["driver", "worker 0", "worker 1"]

    def test_timestamps_are_simulated_microseconds(self):
        document = self._traced().trace.to_chrome_trace()
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        task_spans = [e for e in spans if e["name"] == "task"]
        assert all(e["dur"] == 1e6 for e in task_spans)  # 1 sim-second

    def test_json_serializable(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced().trace.write_chrome_trace(str(path))
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) > 0

"""S2: every emitted metric/instant name matches the canonical registry."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.obs import names

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_metric_names import emitted_names, find_drift  # noqa: E402


class TestRegistry:
    def test_is_declared(self):
        assert names.is_declared("tasks.launched", "counter")
        assert names.is_declared("task.seconds", "histogram")
        assert names.is_declared("eventlog.queries", "gauge")
        assert names.is_declared("flight.dump", "instant")
        assert not names.is_declared("tasks.launched", "instant")
        with pytest.raises(ValueError, match="unknown metric kind"):
            names.is_declared("tasks.launched", "meter")

    def test_kinds_are_disjoint(self):
        kinds = list(names.all_names().values())
        for index, left in enumerate(kinds):
            for right in kinds[index + 1 :]:
                assert not (left & right)


class TestNoDrift:
    def test_src_repro_matches_registry(self):
        assert find_drift() == []

    def test_scanner_sees_the_known_emitters(self):
        """Guard against the scanner regex silently matching nothing."""
        emitted = emitted_names()
        assert "tasks.launched" in emitted["counter"]
        assert "task.seconds" in emitted["histogram"]
        assert "eventlog.queries" in emitted["gauge"]
        assert "flight.dump" in emitted["instant"]

    def test_checker_catches_undeclared_emission(self, tmp_path):
        rogue = tmp_path / "rogue.py"
        rogue.write_text(
            'metrics.inc("tasks.launched")\n'
            'metrics.inc("totally.new.counter")\n'
        )
        problems = find_drift(src=tmp_path)
        assert any(
            "totally.new.counter" in problem and "not declared" in problem
            for problem in problems
        )
        # The declared-but-unemitted direction also fires on this tiny
        # tree (almost nothing is emitted there).
        assert any("never emitted" in problem for problem in problems)

"""MetricsRegistry primitives and the engine-metrics rollups."""

from __future__ import annotations

import pytest

from repro.engine.metrics import QueryProfile, StageProfile, TaskMetrics
from repro.obs import MetricsRegistry


class TestMetricsRegistry:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.inc("tasks.launched")
        registry.inc("tasks.launched", 4)
        assert registry.value("tasks.launched") == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("tasks.launched", -1)

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("workers.live", 4)
        registry.set_gauge("workers.live", 3)
        assert registry.value("workers.live") == 3

    def test_histogram_summarizes(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("stage.seconds", value)
        histogram = registry.histogram("stage.seconds")
        assert histogram.count == 3
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == pytest.approx(2.0)

    def test_missing_metric_reads_default(self):
        registry = MetricsRegistry()
        assert registry.value("never.recorded") == 0.0
        assert registry.value("never.recorded", default=-1.0) == -1.0

    def test_snapshot_is_sorted_and_detached(self):
        registry = MetricsRegistry()
        registry.inc("z.last")
        registry.inc("a.first")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.first", "z.last"]
        registry.inc("a.first")
        assert snapshot["counters"]["a.first"] == 1.0

    def test_describe_empty(self):
        assert "no metrics" in MetricsRegistry().describe()

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("x")
        registry.set_gauge("y", 1)
        registry.observe("z", 1.0)
        registry.reset()
        assert len(registry) == 0


def _task(**kwargs) -> TaskMetrics:
    metrics = TaskMetrics(stage_id=0, partition=0, worker_id=0)
    for key, value in kwargs.items():
        setattr(metrics, key, value)
    return metrics


class TestProfileRollups:
    def test_stage_shuffle_bytes_and_attempts(self):
        stage = StageProfile(stage_id=0, name="s", is_shuffle_map=True)
        stage.tasks.append(
            _task(shuffle_write_bytes=100, shuffle_read_bytes=10)
        )
        stage.tasks.append(
            _task(shuffle_write_bytes=50, shuffle_read_bytes=5, attempts=3)
        )
        assert stage.shuffle_write_bytes == 150
        assert stage.shuffle_read_bytes == 15
        assert stage.total_attempts == 4

    def test_query_profile_rolls_up_stages(self):
        profile = QueryProfile(job_id=7)
        for stage_id, write in ((0, 100), (1, 20)):
            stage = StageProfile(
                stage_id=stage_id, name=f"s{stage_id}", is_shuffle_map=True
            )
            stage.tasks.append(
                _task(shuffle_write_bytes=write, shuffle_read_bytes=write // 2)
            )
            profile.stages.append(stage)
        assert profile.shuffle_write_bytes == 120
        assert profile.shuffle_read_bytes == 60
        assert profile.total_attempts == 2

    def test_describe_includes_shuffle_bytes_and_attempts(self):
        profile = QueryProfile(job_id=1)
        stage = StageProfile(stage_id=3, name="agg", is_shuffle_map=True)
        stage.tasks.append(
            _task(
                records_in=10,
                records_out=4,
                shuffle_write_bytes=256,
                shuffle_read_bytes=64,
                attempts=2,
            )
        )
        profile.stages.append(stage)
        text = profile.describe()
        assert "shuffle read 64 B" in text
        assert "shuffle write 256 B" in text
        assert "(2 attempts)" in text

    def test_describe_lists_operator_rows_in_stamp_order(self):
        """PR 10 satellite: per-operator actual row counts surface in
        ``describe()`` for row-mode queries, ordered by stamp id (not
        alphabetically — ``#10`` sorts after ``#9``)."""
        profile = QueryProfile(job_id=0)
        stage = StageProfile(stage_id=0, name="s", is_shuffle_map=False)
        stage.tasks.append(
            _task(operator_rows={"filter#9": 40, "project#10": 40})
        )
        stage.tasks.append(_task(operator_rows={"scan(t)#0": 100}))
        profile.stages.append(stage)
        assert stage.operator_rows == {
            "scan(t)#0": 100, "filter#9": 40, "project#10": 40,
        }
        text = profile.describe()
        assert "operator rows:" in text
        line = next(
            l for l in text.splitlines() if "operator rows:" in l
        )
        assert line.index("scan(t)#0=100") < line.index("filter#9=40")
        assert line.index("filter#9=40") < line.index("project#10=40")

    def test_describe_omits_operator_rows_when_absent(self):
        profile = QueryProfile(job_id=0)
        stage = StageProfile(stage_id=0, name="s", is_shuffle_map=False)
        stage.tasks.append(_task(records_in=5))
        profile.stages.append(stage)
        assert "operator rows" not in profile.describe()

"""Query-doctor tests: taxonomy checks, ranking, pairing, and the CLI.

Synthetic :class:`QueryRecord` pairs exercise each root-cause check in
isolation; a live two-run diff (vectorize on vs off over the same tiny
corpus) proves the end-to-end contract the CI smoke job greps for — the
deliberate vectorization regression is attributed to ``mode-flip``
first, not to the generic stage-slowdown fallback.
"""

from __future__ import annotations

import pytest

from repro import SharkContext
from repro.obs import doctor
from repro.obs.doctor import (
    DoctorReport,
    QueryDiagnosis,
    diagnose,
    diagnose_logs,
    diagnose_pair,
)
from repro.obs.history import HistoryStore, QueryRecord
from repro.sql.planner import PlannerConfig
from repro.workloads import tpch


def _record(**kwargs) -> QueryRecord:
    base = dict(query_id="q0000", name="q", status="ok", sim_seconds=1.0)
    base.update(kwargs)
    return QueryRecord(**base)


class TestTaxonomy:
    def test_mode_flip_detected_and_ranked_first(self):
        baseline = _record(
            operator_modes=[
                ("scan(t)", "vectorized"),
                ("filter", "vectorized (codegen)"),
            ],
            stage_sim=[
                {"stage_id": 0, "name": "scan", "sim_seconds": 0.1}
            ],
        )
        current = _record(
            operator_modes=[("scan(t)", "row"), ("filter", "row")],
            stage_sim=[
                {"stage_id": 0, "name": "scan", "sim_seconds": 0.4}
            ],
        )
        findings = diagnose_pair(baseline, current)
        assert findings[0].category == "mode-flip"
        assert "2 operator(s)" in findings[0].summary
        # The generic fallback still reports, but ranked below.
        assert findings[-1].category == "stage-slowdown"

    def test_spill_appeared(self):
        baseline = _record()
        current = _record(
            spills=[{"owner": "sort", "events": 1, "bytes": 4096, "runs": 1}]
        )
        findings = diagnose_pair(baseline, current)
        assert findings[0].category == "spill-appeared"
        assert "4096" in findings[0].summary
        # Symmetric runs produce no spill finding.
        assert diagnose_pair(current, current) == []

    def test_cache_hit_to_miss(self):
        baseline = _record(
            cache_lookups=[{"layer": "result", "outcome": "hit"}]
        )
        current = _record(
            cache_lookups=[{"layer": "result", "outcome": "miss"}]
        )
        findings = diagnose_pair(baseline, current)
        assert findings[0].category == "cache-miss"
        # The opposite direction (miss -> hit) is an improvement, not a
        # root cause.
        assert diagnose_pair(current, baseline) == []

    def test_skew_growth(self):
        baseline = _record(
            skew_records=[
                {"shuffle_id": 0, "row_skew": 1.1, "heavy_keys": []}
            ]
        )
        current = _record(
            skew_records=[
                {
                    "shuffle_id": 0,
                    "row_skew": 3.8,
                    "straggler_partition": 2,
                    "heavy_keys": [["'A'", 900]],
                }
            ]
        )
        findings = diagnose_pair(baseline, current)
        assert findings[0].category == "skew-growth"
        assert "straggler partition 2" in findings[0].evidence[0]
        assert "'A'=900" in findings[0].evidence[0]
        assert diagnose_pair(baseline, baseline) == []

    def test_plan_shape_change(self):
        baseline = _record(
            operator_modes=[("scan(t)", "row"), ("join.broadcast", "row")]
        )
        current = _record(
            operator_modes=[("scan(t)", "row"), ("join.shuffle", "row")]
        )
        findings = diagnose_pair(baseline, current)
        assert findings[0].category == "plan-change"
        assert "join.broadcast" in findings[0].evidence[0]

    def test_estimate_drift(self):
        baseline = _record(
            operator_profiles=[
                {"operator": "filter", "q_error": 1.5, "est_rows": 10,
                 "est_source": "guess", "actual_rows": 15}
            ]
        )
        current = _record(
            operator_profiles=[
                {"operator": "filter", "q_error": 40.0, "est_rows": 10,
                 "est_source": "guess", "actual_rows": 400}
            ]
        )
        findings = diagnose_pair(baseline, current)
        assert findings[0].category == "estimate-drift"
        assert "x40.0" in findings[0].summary

    def test_stage_slowdown_is_the_fallback(self):
        baseline = _record(
            stage_sim=[
                {"stage_id": 0, "name": "scan", "sim_seconds": 0.1},
                {"stage_id": 1, "name": "agg", "sim_seconds": 0.1},
            ]
        )
        current = _record(
            stage_sim=[
                {"stage_id": 0, "name": "scan", "sim_seconds": 0.1},
                {"stage_id": 1, "name": "agg", "sim_seconds": 0.9},
            ]
        )
        findings = diagnose_pair(baseline, current)
        assert [f.category for f in findings] == ["stage-slowdown"]
        assert "stage 1 (agg)" in findings[0].summary


class TestReport:
    def _store(self, records) -> HistoryStore:
        store = HistoryStore()
        store.queries.extend(records)
        return store

    def test_pairs_by_name_and_reports_unmatched(self):
        baseline = self._store(
            [_record(name="a"), _record(name="only-baseline")]
        )
        current = self._store(
            [_record(name="a", sim_seconds=2.0),
             _record(name="only-current")]
        )
        report = diagnose(baseline, current)
        assert [d.name for d in report.diagnoses] == ["a"]
        assert set(report.unmatched) == {"only-baseline", "only-current"}
        assert report.regressed()[0].slowdown == pytest.approx(1.0)

    def test_top_cause_votes_by_regressed_queries(self):
        report = DoctorReport(
            baseline_path="a", current_path="b",
            regression_threshold=0.25,
        )
        for index in range(3):
            diagnosis = QueryDiagnosis(
                name=f"q{index}", baseline_seconds=1.0,
                current_seconds=2.0,
            )
            diagnosis.findings = diagnose_pair(
                _record(operator_modes=[("scan(t)", "vectorized")]),
                _record(operator_modes=[("scan(t)", "row")]),
            )
            report.diagnoses.append(diagnosis)
        # One non-regressed query must not vote.
        report.diagnoses.append(
            QueryDiagnosis(
                name="ok", baseline_seconds=1.0, current_seconds=1.0
            )
        )
        assert report.top_cause() == ("mode-flip", 3)
        rendered = report.render()
        assert "top root cause across corpus: mode-flip (3 queries)" in (
            rendered
        )
        assert "[REGRESSED]" in rendered and "[ok]" in rendered

    def test_findings_counter_feeds_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        baseline = self._store(
            [_record(name="a", operator_modes=[("scan(t)", "vectorized")])]
        )
        current = self._store(
            [_record(name="a", sim_seconds=2.0,
                     operator_modes=[("scan(t)", "row")])]
        )
        metrics = MetricsRegistry()
        diagnose(baseline, current, metrics=metrics)
        assert metrics.value("doctor.findings") >= 1


class TestLiveDiff:
    """The CI smoke contract, at unit-test scale: diff a vectorize-on
    log against a vectorize-off log of the same corpus."""

    QUERIES = (
        "SELECT COUNT(*) FROM lineitem",
        tpch.TPCH_QUERIES["Q6"],
    )

    def _run(self, tmp_path, vectorize: bool):
        shark = SharkContext(
            num_workers=2,
            cores_per_worker=2,
            config=PlannerConfig(vectorize=vectorize),
        )
        data = tpch.generate_lineitem(4000)
        shark.create_table("lineitem", data.schema, cached=True)
        shark.load_rows("lineitem", data.rows)
        path = tmp_path / f"vec_{vectorize}.jsonl"
        shark.enable_event_log(path, source="test")
        for text in self.QUERIES:
            shark.sql(text)
        shark.close_event_log()
        return path

    def test_vectorize_flip_is_top_root_cause(self, tmp_path):
        log_on = self._run(tmp_path, True)
        log_off = self._run(tmp_path, False)
        report = diagnose_logs(log_on, log_off, regression_threshold=0.0)
        assert len(report.diagnoses) == len(self.QUERIES)
        regressed = report.regressed()
        assert regressed, "vectorize off must cost simulated seconds"
        for diagnosis in regressed:
            assert diagnosis.top_category == "mode-flip"
        top = report.top_cause()
        assert top is not None and top[0] == "mode-flip"

    def test_cli_writes_report(self, tmp_path, capsys):
        log_on = self._run(tmp_path, True)
        log_off = self._run(tmp_path, False)
        out = tmp_path / "doctor.txt"
        code = doctor.main(
            [str(log_on), str(log_off), "--threshold", "0.0",
             "--report", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "query doctor:" in printed
        assert "mode-flip" in printed
        assert out.read_text().strip() == printed.strip()

    def test_cli_missing_log_errors(self, tmp_path, capsys):
        code = doctor.main(
            [str(tmp_path / "nope.jsonl"), str(tmp_path / "nope2.jsonl")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

"""Event-log writer, flight recorder, and the round-trip property.

The acceptance bar: a TPC-H query executed with event logging enabled
must produce a log from which the HistoryStore reproduces the same
stage/task/shuffle aggregates as the live QueryProfile — exact
simulated-clock equality, across vectorize on/off and a chaos run —
and a killed/cancelled query must leave a flight-recorder dump with
tracing disabled.
"""

from __future__ import annotations

import json

import pytest

from repro import SharkContext
from repro.faults import FaultInjector
from repro.obs.events import (
    EventLogSchemaError,
    EventLogWriter,
    FlightRecorder,
    SCHEMA_VERSION,
    read_event_log,
    validate_record,
)
from repro.obs.history import HistoryStore
from repro.sql.planner import PlannerConfig
from repro.workloads import tpch


def _tpch_shark(vectorize=True, fault_injector=None) -> SharkContext:
    shark = SharkContext(
        num_workers=4,
        cores_per_worker=2,
        config=PlannerConfig(vectorize=vectorize),
        fault_injector=fault_injector,
    )
    for name, data in (
        ("lineitem", tpch.generate_lineitem(2000)),
        ("orders", tpch.generate_orders(500)),
        ("customer", tpch.generate_customer(50)),
    ):
        shark.create_table(name, data.schema, cached=True)
        shark.load_rows(name, data.rows)
    return shark


class TestSchemaValidation:
    def test_unknown_record_type_rejected(self):
        with pytest.raises(EventLogSchemaError, match="unknown"):
            validate_record({"type": "telemetry"})

    def test_missing_fields_rejected(self):
        with pytest.raises(EventLogSchemaError, match="missing"):
            validate_record({"type": "query_begin", "query_id": "q0"})

    def test_writer_refuses_malformed_record(self, tmp_path):
        with EventLogWriter(tmp_path / "log.jsonl", 2, 2) as log:
            with pytest.raises(EventLogSchemaError):
                log.write({"type": "span", "query_id": "q0"})

    def test_closed_writer_refuses_writes(self, tmp_path):
        log = EventLogWriter(tmp_path / "log.jsonl", 2, 2)
        log.close()
        with pytest.raises(EventLogSchemaError, match="closed"):
            log.write(
                {"type": "counters", "query_id": "q0", "deltas": {}}
            )


class TestWriter:
    def test_header_first_and_seq_monotonic(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with EventLogWriter(path, 4, 2, source="test") as log:
            log.write_query(name="q", sim_seconds=1.0)
        records = read_event_log(path)
        assert records[0]["type"] == "header"
        assert records[0]["version"] == SCHEMA_VERSION
        assert records[0]["workers"] == 4
        assert records[0]["source"] == "test"
        assert [r["seq"] for r in records] == list(range(len(records)))

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl.gz"
        with EventLogWriter(path, 2, 1) as log:
            log.write_query(name="q", status="ok", sim_seconds=0.5)
        records = read_event_log(path)
        assert records[-1]["type"] == "query_end"
        assert records[-1]["sim_seconds"] == 0.5

    def test_deterministic_bytes(self, tmp_path):
        """Two identical runs produce byte-identical logs (simulated
        clock, sorted keys, writer-stamped seq)."""
        paths = []
        for index in range(2):
            shark = _tpch_shark()
            path = tmp_path / f"run{index}.jsonl"
            shark.enable_event_log(path)
            shark.sql(tpch.TPCH_QUERIES["Q6"])
            shark.close_event_log()
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        flight = FlightRecorder(capacity=4)
        for i in range(10):
            flight.record({"type": "instant", "n": i})
        assert len(flight) == 4
        assert [e["n"] for e in flight.events()] == [6, 7, 8, 9]

    def test_dump_to_directory(self, tmp_path):
        flight = FlightRecorder(capacity=4)
        flight.dump_dir = str(tmp_path)
        flight.record({"type": "instant", "name": "task"})
        record = flight.dump("cancelled", query="q7")
        assert record["reason"] == "cancelled"
        dumped = read_event_log(tmp_path / "flight-0000.jsonl")
        assert dumped[0]["type"] == "flight_dump"
        assert dumped[0]["query_id"] == "q7"
        assert len(dumped[0]["events"]) == 1

    def test_dump_prefers_sink(self, tmp_path):
        flight = FlightRecorder()
        sunk = []
        flight.sink = sunk.append
        flight.dump_dir = str(tmp_path)
        flight.dump("error")
        assert len(sunk) == 1
        assert not list(tmp_path.iterdir())  # sink won, no file

    def test_live_with_tracing_disabled(self):
        shark = _tpch_shark()
        assert not shark.tracer.enabled
        shark.sql("SELECT COUNT(*) FROM lineitem")
        assert len(shark.tracer.flight) > 0
        assert len(shark.trace) == 0  # tracing stayed off

    def test_failed_query_dumps_with_tracing_disabled(self, tmp_path):
        shark = _tpch_shark()
        shark.register_udf("boom", lambda value: 1 / 0)
        path = tmp_path / "log.jsonl"
        shark.enable_event_log(path)
        with pytest.raises(Exception):
            shark.sql("SELECT boom(L_ORDERKEY) FROM lineitem")
        shark.close_event_log()
        records = read_event_log(path)
        dumps = [r for r in records if r["type"] == "flight_dump"]
        assert len(dumps) == 1
        assert dumps[0]["reason"] == "error"
        assert dumps[0]["events"]  # partial timeline captured
        ends = [r for r in records if r["type"] == "query_end"]
        assert ends[-1]["status"] == "error"
        assert ends[-1]["error"]


class TestRoundTrip:
    """Live QueryProfile aggregates == HistoryStore reconstruction."""

    def _assert_round_trip(self, shark, query, path):
        shark.enable_event_log(path)
        shark.engine.reset_profiles()
        shark.sql(query)
        live = shark.engine.profiles
        shark.close_event_log()

        store = HistoryStore.load(path)
        assert len(store.queries) == 1
        rebuilt = store.queries[0].rebuild_profiles()

        assert [p.job_id for p in rebuilt] == [p.job_id for p in live]
        for mine, theirs in zip(rebuilt, live):
            assert mine.num_stages == theirs.num_stages
            assert mine.total_tasks == theirs.total_tasks
            assert mine.total_attempts == theirs.total_attempts
            assert mine.shuffle_read_bytes == theirs.shuffle_read_bytes
            assert mine.shuffle_write_bytes == theirs.shuffle_write_bytes
            assert mine.recovered_tasks == theirs.recovered_tasks
            assert mine.retried_tasks == theirs.retried_tasks
            assert mine.speculative_tasks == theirs.speculative_tasks
            for s_mine, s_theirs in zip(mine.stages, theirs.stages):
                assert s_mine.stage_id == s_theirs.stage_id
                assert s_mine.name == s_theirs.name
                assert s_mine.num_tasks == s_theirs.num_tasks
                assert s_mine.records_in == s_theirs.records_in
                assert s_mine.records_out == s_theirs.records_out
                assert s_mine.bytes_in == s_theirs.bytes_in
                assert (
                    s_mine.shuffle_write_bytes
                    == s_theirs.shuffle_write_bytes
                )
                assert (
                    s_mine.shuffle_read_bytes
                    == s_theirs.shuffle_read_bytes
                )

        # Exact simulated-clock equality: the history store recomputes
        # the same simulated seconds the writer recorded.
        from repro.obs.analyze import analyze_profiles

        live_analysis = analyze_profiles(
            "", live, num_workers=4, cores_per_worker=2
        )
        record = store.queries[0]
        assert record.sim_seconds == live_analysis.total_sim_seconds
        assert (
            record.analyze().total_sim_seconds
            == live_analysis.total_sim_seconds
        )

    @pytest.mark.parametrize("vectorize", [True, False])
    @pytest.mark.parametrize("key", ["Q1", "Q3", "Q6"])
    def test_tpch_round_trip(self, tmp_path, vectorize, key):
        shark = _tpch_shark(vectorize=vectorize)
        self._assert_round_trip(
            shark, tpch.TPCH_QUERIES[key], tmp_path / "log.jsonl"
        )

    def test_chaos_round_trip(self, tmp_path):
        injector = FaultInjector(
            seed=11,
            transient_failure_rate=0.10,
            stragglers_per_stage=1,
            straggler_slowdown=8.0,
        )
        shark = _tpch_shark(fault_injector=injector)
        self._assert_round_trip(
            shark, tpch.TPCH_QUERIES["Q1"], tmp_path / "log.jsonl"
        )

    def test_traced_timeline_round_trips(self, tmp_path):
        shark = _tpch_shark()
        shark.enable_tracing()
        path = tmp_path / "log.jsonl"
        shark.enable_event_log(path)
        shark.sql(tpch.TPCH_QUERIES["Q6"])
        shark.close_event_log()
        live_spans = len(shark.trace.spans)
        live_events = len(shark.trace.events)
        store = HistoryStore.load(path)
        trace = store.queries[0].to_query_trace()
        assert len(trace.spans) == live_spans
        assert len(trace.events) == live_events
        # The export is valid Chrome-trace JSON.
        document = trace.to_chrome_trace()
        json.dumps(document)
        assert document["traceEvents"]


class TestServingFieldsV4:
    """Schema v4: optional tenant/priority/shed_reason fields.  They are
    written only when set and never appear in ``_REQUIRED``, so v2/v3
    logs stay loadable and tenantless queries round-trip unchanged."""

    def test_serving_fields_round_trip_exactly(self, tmp_path):
        path = tmp_path / "serving.jsonl"
        with EventLogWriter(path, 2, 2) as log:
            log.write_query(
                name="tagged",
                status="shed",
                started=1.0,
                ended=2.5,
                sim_seconds=0.0,
                tenant="crawler",
                priority="best_effort",
                shed_reason="brownout",
            )
            log.write_query(name="plain", started=3.0, ended=4.0)
        store = HistoryStore.load(path)
        tagged = store.query("tagged")
        assert tagged.tenant == "crawler"
        assert tagged.priority == "best_effort"
        assert tagged.shed_reason == "brownout"
        assert tagged.status == "shed"
        plain = store.query("plain")
        assert plain.tenant is None
        assert plain.priority is None
        assert plain.shed_reason is None

    def test_untagged_records_omit_the_fields_entirely(self, tmp_path):
        path = tmp_path / "plain.jsonl"
        with EventLogWriter(path, 2, 2) as log:
            log.write_query(name="plain")
        raw = path.read_text()
        assert '"tenant"' not in raw
        assert '"priority"' not in raw
        assert '"shed_reason"' not in raw

    def test_v3_log_loads_with_serving_fields_none(self, tmp_path):
        path = tmp_path / "v3.jsonl"
        records = [
            {
                "seq": 0,
                "type": "header",
                "version": 3,
                "workers": 2,
                "cores_per_worker": 2,
            },
            {
                "seq": 1,
                "type": "query_begin",
                "query_id": "q0000",
                "name": "legacy",
                "kind": "sql",
                "text": "SELECT 1",
                "ts": 0.0,
            },
            {
                "seq": 2,
                "type": "query_end",
                "query_id": "q0000",
                "status": "ok",
                "ts": 1.0,
                "sim_seconds": 1.0,
            },
        ]
        path.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )
        store = HistoryStore.load(path)
        legacy = store.query("legacy")
        assert legacy.status == "ok"
        assert legacy.tenant is None
        assert legacy.priority is None
        assert legacy.shed_reason is None
        # A v3 log contributes nothing to the serving aggregates.
        assert store.tenant_rows() == []
        assert store.tier_latencies() == {}

    def test_v2_style_log_still_loads(self, tmp_path):
        path = tmp_path / "v2.jsonl"
        records = [
            {
                "seq": 0,
                "type": "header",
                "version": 2,
                "workers": 2,
                "cores_per_worker": 2,
            },
            {
                "seq": 1,
                "type": "query_begin",
                "query_id": "q0000",
                "name": "old",
                "kind": "sql",
                "text": None,
                "ts": 0.0,
            },
            {
                "seq": 2,
                "type": "memory_watermark",
                "query_id": "q0000",
                "worker": 0,
                "pool": "execution",
                "peak_bytes": 64,
                "ts": 0.5,
            },
            {
                "seq": 3,
                "type": "query_end",
                "query_id": "q0000",
                "status": "ok",
                "ts": 1.0,
                "sim_seconds": 1.0,
            },
        ]
        path.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )
        store = HistoryStore.load(path)
        old = store.query("old")
        assert old.status == "ok"
        assert old.tenant is None
        assert old.memory[0]["peak_bytes"] == 64

    def test_current_schema_version_is_v6(self):
        # v6 added operator_profile and shuffle_skew records (plan
        # quality observability).
        assert SCHEMA_VERSION == 6


class TestCacheLookupsV5:
    def test_cache_lookups_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        lookups = [
            {"layer": "result", "outcome": "miss"},
            {"layer": "plan", "outcome": "hit"},
            {"layer": "fragment", "outcome": "hit", "hits": 3, "misses": 1},
        ]
        with EventLogWriter(path, 2, 2) as log:
            log.write_query(name="probed", cache_lookups=lookups)
        store = HistoryStore.load(path)
        record = store.query("probed")
        assert [r["layer"] for r in record.cache_lookups] == [
            "result", "plan", "fragment",
        ]
        assert record.cache_lookups[2]["hits"] == 3
        report = store.cache_report()
        assert "sql cache report" in report
        assert "plan" in report and "fragment" in report

    def test_cache_off_emits_no_lookup_records(self, tmp_path):
        # The byte-identity guarantee for cache-off logs: no
        # cache_lookup record, not even an empty list.
        path = tmp_path / "log.jsonl"
        with EventLogWriter(path, 2, 2) as log:
            log.write_query(name="plain")
            log.write_query(name="empty", cache_lookups=[])
        assert '"cache_lookup"' not in path.read_text()

    def test_v4_log_loads_with_empty_cache_lookups(self, tmp_path):
        path = tmp_path / "v4.jsonl"
        records = [
            {
                "seq": 0,
                "type": "header",
                "version": 4,
                "workers": 2,
                "cores_per_worker": 2,
            },
            {
                "seq": 1,
                "type": "query_begin",
                "query_id": "q0000",
                "name": "legacy",
                "kind": "sql",
                "text": "SELECT 1",
                "ts": 0.0,
            },
            {
                "seq": 2,
                "type": "query_end",
                "query_id": "q0000",
                "status": "ok",
                "ts": 1.0,
                "sim_seconds": 1.0,
            },
        ]
        path.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )
        store = HistoryStore.load(path)
        assert store.query("legacy").cache_lookups == []
        assert "0 probed" in store.cache_report()

    def test_legacy_fixture_logs_still_load(self):
        """Satellite of PR 10: one committed fixture log per historical
        schema version.  ``HistoryStore.load`` must keep parsing every
        one of them as the schema moves forward."""
        import pathlib

        fixtures = pathlib.Path(__file__).parent / "fixtures"
        for version in (2, 3, 4, 5):
            store = HistoryStore.load(fixtures / f"log_v{version}.jsonl")
            assert store.queries, f"v{version} fixture loaded no queries"
            first = store.queries[0]
            assert first.status in ("ok", "shed")
            # Pre-v6 logs have no plan-quality records — the new
            # accessors must degrade to empty, not raise.
            assert store.operator_profiles() == []
            assert first.skew_records == []
            assert "predates schema v6" in store.plan_quality_report()
        # Version-specific signatures survive the trip.
        v3 = HistoryStore.load(fixtures / "log_v3.jsonl")
        assert v3.queries[0].spills[0]["owner"] == "sort"
        v4 = HistoryStore.load(fixtures / "log_v4.jsonl")
        assert v4.query("v4 fixture").tenant == "analytics"
        assert v4.query("v4 shed").shed_reason == "brownout"
        v5 = HistoryStore.load(fixtures / "log_v5.jsonl")
        assert v5.query("v5 warm").cache_lookups[0]["outcome"] == "hit"

    def test_live_query_streams_lookup_outcomes(self, tmp_path):
        path = tmp_path / "live.jsonl"
        shark = _tpch_shark()
        shark.enable_sql_cache()
        shark.enable_event_log(path, source="test", seed=1)
        text = "SELECT COUNT(*) FROM lineitem"
        shark.sql(text)  # cold: result miss, plan miss
        shark.sql(text)  # warm: result hit
        shark.close_event_log()
        store = HistoryStore.load(path)
        cold, warm = store.queries[-2], store.queries[-1]
        outcomes = {
            (r["layer"], r["outcome"]) for r in cold.cache_lookups
        }
        assert ("result", "miss") in outcomes
        assert ("plan", "miss") in outcomes
        assert ("result", "hit") in {
            (r["layer"], r["outcome"]) for r in warm.cache_lookups
        }
        assert "result" in store.cache_report()


class TestPlanQualityV6:
    """Schema v6: operator_profile + shuffle_skew records."""

    def test_synthetic_records_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        profiles = [
            {
                "operator": "scan(lineitem)",
                "op_id": 0,
                "mode": "vectorized",
                "est_rows": 2000,
                "est_source": "catalog",
                "actual_rows": 2000,
                "q_error": 1.0,
            },
            {
                "operator": "filter",
                "op_id": 1,
                "mode": "vectorized",
                "est_rows": 600,
                "est_source": "guess",
                "actual_rows": 50,
                "q_error": 12.0,
                "detail": "(L_QUANTITY < 24)",
            },
        ]
        skew = [
            {
                "shuffle_id": 0,
                "num_maps": 2,
                "num_reduces": 4,
                "rows": [90, 4, 3, 3],
                "bytes": [900, 40, 30, 30],
                "total_rows": 100,
                "total_bytes": 1000,
                "row_skew": 3.6,
                "byte_skew": 3.6,
                "straggler_partition": 0,
                "heavy_keys": [["'A'", 88], ["'B'", 6]],
            }
        ]
        with EventLogWriter(path, 2, 2) as log:
            log.write_query(
                name="profiled",
                operator_profiles=profiles,
                shuffle_skew=skew,
            )
        store = HistoryStore.load(path)
        record = store.query("profiled")
        # Loaded records keep the log envelope (type/seq/query_id), like
        # every other record list; the payload fields round-trip exactly.
        assert len(record.operator_profiles) == 2
        for sent, loaded in zip(profiles, record.operator_profiles):
            assert sent == {
                key: loaded[key] for key in sent
            }
        assert record.skew_records[0]["heavy_keys"] == [["'A'", 88], ["'B'", 6]]
        assert record.skew_records[0]["rows"] == [90, 4, 3, 3]
        assert len(store.operator_profiles()) == 2
        report = store.plan_quality_report()
        assert "filter" in report and "q-error 12.00" in report
        priors = store.cardinality_priors()
        assert {p["operator"] for p in priors} == {
            "scan(lineitem)", "filter",
        }

    def test_unprofiled_query_emits_no_v6_records(self, tmp_path):
        # Byte-identity for plan-quality-free queries: no empty
        # operator_profile/shuffle_skew records, no empty
        # operator_rows on tasks.
        path = tmp_path / "log.jsonl"
        with EventLogWriter(path, 2, 2) as log:
            log.write_query(name="plain")
            log.write_query(
                name="empty", operator_profiles=[], shuffle_skew=[]
            )
        raw = path.read_text()
        assert '"operator_profile"' not in raw
        assert '"shuffle_skew"' not in raw
        assert '"operator_rows"' not in raw

    @pytest.mark.parametrize("vectorize", [True, False])
    def test_live_query_streams_profiles(self, tmp_path, vectorize):
        path = tmp_path / "live.jsonl"
        shark = _tpch_shark(vectorize=vectorize)
        shark.enable_event_log(path, source="test")
        shark.sql(tpch.TPCH_QUERIES["Q1"])
        shark.close_event_log()
        store = HistoryStore.load(path)
        record = store.queries[0]
        operators = [row["operator"] for row in record.operator_profiles]
        assert any(op.startswith("scan(") for op in operators)
        expected_mode = "row" if not vectorize else "vectorized"
        assert any(
            row["mode"].startswith(expected_mode)
            for row in record.operator_profiles
        )
        for row in record.operator_profiles:
            assert row["actual_rows"] is not None
        # Q1 groups by (returnflag, linestatus): one shuffle, skewed
        # toward the common flag values, with labelled heavy keys.
        assert record.skew_records
        first = record.skew_records[0]
        assert first["shuffle_id"] == 0
        assert sum(first["rows"]) == first["total_rows"]
        assert first["heavy_keys"]
        # Rebuilt task metrics carry the per-operator row counts.
        rebuilt = record.rebuild_profiles()
        assert any(
            task.operator_rows
            for profile in rebuilt
            for stage in profile.stages
            for task in stage.tasks
        )

"""Perf-regression sentinel: comparison logic and the CLI contract."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs import sentinel


@pytest.fixture(autouse=True)
def small_suite(monkeypatch):
    """Shrink the suite so unit tests stay fast; the committed baseline
    (seeded by the CLI at full size) is not used here."""
    monkeypatch.setattr(sentinel, "LINEITEM_ROWS", 2000)
    monkeypatch.setattr(sentinel, "ORDERS_ROWS", 500)
    monkeypatch.setattr(sentinel, "CUSTOMER_ROWS", 50)


@pytest.fixture(scope="module")
def measured():
    """One suite run at the shrunken size (module-cached: ~seconds)."""
    import copy as _copy

    from repro.obs import sentinel as s

    saved = (s.LINEITEM_ROWS, s.ORDERS_ROWS, s.CUSTOMER_ROWS)
    s.LINEITEM_ROWS, s.ORDERS_ROWS, s.CUSTOMER_ROWS = 2000, 500, 50
    try:
        return _copy.deepcopy(s.run_suite(s.build_warehouse()))
    finally:
        s.LINEITEM_ROWS, s.ORDERS_ROWS, s.CUSTOMER_ROWS = saved


class TestSuite:
    def test_covers_aggregation_and_tpch(self):
        names = list(sentinel.suite_queries())
        assert "agg_1" in names and "agg_max" in names
        assert {"Q1", "Q3", "Q6"} <= set(names)

    def test_run_is_deterministic(self, measured):
        again = sentinel.run_suite(sentinel.build_warehouse())
        assert again == measured

    def test_entries_have_stages_and_counters(self, measured):
        for entry in measured.values():
            assert entry["sim_seconds"] > 0
            assert entry["stages"]
            assert entry["counters"]["tasks.launched"] > 0


class TestCompare:
    def test_identical_run_passes(self, measured):
        baseline = sentinel.baseline_document(measured)
        regressions, info = sentinel.compare(baseline, measured, 0.25)
        assert regressions == []
        assert all(line.startswith("ok ") for line in info)

    def test_regression_flagged_with_attribution(self, measured):
        baseline = sentinel.baseline_document(copy.deepcopy(measured))
        current = copy.deepcopy(measured)
        entry = current["agg_7"]
        entry["sim_seconds"] *= 2.0
        entry["stages"][0]["sim_seconds"] += entry["sim_seconds"] / 2
        entry["stages"][0]["records_in"] *= 3
        regressions, __ = sentinel.compare(baseline, current, 0.25)
        assert len(regressions) == 1
        line = regressions[0]
        assert line.startswith("REGRESSION agg_7 +100%")
        assert "stage" in line and "sim-s" in line  # attribution
        assert "rows in x3.0" in line

    def test_improvement_and_new_query_are_informational(self, measured):
        baseline = sentinel.baseline_document(copy.deepcopy(measured))
        current = copy.deepcopy(measured)
        current["agg_1"]["sim_seconds"] /= 2.0
        current["extra"] = copy.deepcopy(current["agg_1"])
        regressions, info = sentinel.compare(baseline, current, 0.25)
        assert regressions == []
        assert any(line.startswith("IMPROVED agg_1") for line in info)
        assert any(line.startswith("new extra") for line in info)

    def test_missing_query_fails(self, measured):
        baseline = sentinel.baseline_document(measured)
        current = {
            name: entry
            for name, entry in measured.items()
            if name != "Q6"
        }
        regressions, __ = sentinel.compare(baseline, current, 0.25)
        assert any(line.startswith("MISSING Q6") for line in regressions)


class TestCli:
    def test_write_then_pass_then_regress(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            sentinel.main(["--write-baseline", "--baseline", str(baseline)])
            == 0
        )
        document = json.loads(baseline.read_text())
        assert document["version"] == sentinel.BASELINE_VERSION
        assert len(document["queries"]) == 7

        assert sentinel.main(["--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "all queries within threshold" in out

        # A tightened threshold plus a doctored baseline must fail with
        # a per-stage attribution line and nonzero exit.
        for entry in document["queries"].values():
            entry["sim_seconds"] *= 0.5
            for stage in entry["stages"]:
                stage["sim_seconds"] *= 0.5
        baseline.write_text(json.dumps(document))
        assert sentinel.main(["--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "stage" in out

    def test_missing_baseline_is_distinct_exit(self, tmp_path, capsys):
        code = sentinel.main(
            ["--baseline", str(tmp_path / "nope.json")]
        )
        assert code == 2

    def test_bad_version_is_distinct_exit(self, tmp_path, capsys):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 0, "queries": {}}))
        assert sentinel.main(["--baseline", str(path)]) == 2

    def test_vectorize_off_regression_gets_doctor_attribution(
        self, tmp_path, capsys, monkeypatch
    ):
        """PR 10: a failing sentinel run ends with query-doctor root
        causes, and the seeded vectorize-off regression is attributed to
        the mode flip — not just to a slower stage.

        Runs at full suite size (overriding the autouse shrink): at 2K
        rows the fixed per-task launch overhead hides the row-mode CPU
        cost under the 25% gate, exactly as the sentinel's sizing
        docstring explains."""
        monkeypatch.setattr(sentinel, "LINEITEM_ROWS", 100_000)
        monkeypatch.setattr(sentinel, "ORDERS_ROWS", 25_000)
        monkeypatch.setattr(sentinel, "CUSTOMER_ROWS", 2_500)
        baseline = tmp_path / "baseline.json"
        assert (
            sentinel.main(["--write-baseline", "--baseline", str(baseline)])
            == 0
        )
        capsys.readouterr()
        code = sentinel.main(
            ["--baseline", str(baseline), "--vectorize", "off"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out  # the CI grep contract survives
        assert "== query doctor" in out
        assert "[mode-flip]" in out
        assert "top root cause across corpus: mode-flip" in out

    def test_event_log_out_streams_suite(self, tmp_path):
        from repro.obs.history import HistoryStore

        baseline = tmp_path / "baseline.json"
        log = tmp_path / "suite.jsonl"
        sentinel.main(
            [
                "--write-baseline",
                "--baseline",
                str(baseline),
                "--event-log-out",
                str(log),
            ]
        )
        store = HistoryStore.load(log)
        assert len(store.queries) == 7

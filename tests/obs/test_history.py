"""HistoryStore: loading, reports, flight-only queries, Perfetto export."""

from __future__ import annotations

import json

import pytest

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.obs.history import HistoryStore, main as history_main
from repro.obs.events import EventLogSchemaError


def _shark() -> SharkContext:
    shark = SharkContext(num_workers=4, cores_per_worker=2)
    shark.create_table(
        "readings",
        Schema.of(("bucket", STRING), ("day", INT), ("value", DOUBLE)),
        cached=True,
    )
    shark.load_rows(
        "readings",
        [(f"b{i % 5}", i % 10, float(i)) for i in range(600)],
        num_partitions=6,
    )
    return shark


@pytest.fixture
def logged(tmp_path):
    """A two-query event log (one traced) and its SharkContext."""
    shark = _shark()
    path = tmp_path / "events.jsonl"
    shark.enable_event_log(path, source="test")
    shark.sql("SELECT bucket, COUNT(*) FROM readings GROUP BY bucket")
    shark.enable_tracing()
    shark.sql("SELECT COUNT(*) FROM readings WHERE value > 100")
    shark.disable_tracing()
    shark.close_event_log()
    return shark, path


class TestLoading:
    def test_load_file_and_directory(self, logged, tmp_path):
        __, path = logged
        from_file = HistoryStore.load(path)
        from_dir = HistoryStore.load(tmp_path)
        assert len(from_file.queries) == 2
        assert [q.query_id for q in from_dir.queries] == [
            q.query_id for q in from_file.queries
        ]
        assert from_file.queries[0].status == "ok"
        assert from_file.queries[0].counters["tasks.launched"] > 0

    def test_query_lookup_by_id_and_name(self, logged):
        __, path = logged
        store = HistoryStore.load(path)
        record = store.query("q0000")
        assert store.query(record.name) is record
        with pytest.raises(KeyError):
            store.query("nope")

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps(
                {
                    "type": "header",
                    "seq": 0,
                    "version": 99,
                    "workers": 1,
                    "cores_per_worker": 1,
                }
            )
            + "\n"
        )
        with pytest.raises(EventLogSchemaError, match="version"):
            HistoryStore.load(path)

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            HistoryStore.load(tmp_path / "empty-dir")


class TestReports:
    def test_full_report_sections(self, logged):
        __, path = logged
        report = HistoryStore.load(path).report()
        assert "2 queries" in report
        assert "q0000" in report and "q0001" in report
        assert "worker utilization" in report
        assert "cache churn" in report

    def test_single_query_report(self, logged):
        __, path = logged
        store = HistoryStore.load(path)
        report = store.report(query="q0000")
        assert "q0000" in report
        assert "stages" in report
        assert "counter deltas" in report

    def test_markdown_mode(self, logged):
        __, path = logged
        report = HistoryStore.load(path).report(markdown=True)
        assert report.startswith("# ")

    def test_cli_end_to_end(self, logged, tmp_path, capsys):
        __, path = logged
        assert history_main([str(path)]) == 0
        assert "query history" in capsys.readouterr().out
        assert history_main([str(tmp_path / "missing.jsonl")]) == 2

    def test_cli_perfetto_export(self, logged, tmp_path, capsys):
        __, path = logged
        out_dir = tmp_path / "perfetto"
        assert (
            history_main([str(path), "--perfetto-out", str(out_dir)]) == 0
        )
        exports = sorted(out_dir.glob("*.trace.json"))
        assert exports  # the traced query exported
        document = json.loads(exports[0].read_text())
        assert document["traceEvents"]


class TestFlightOnly:
    def test_flight_dump_file_becomes_partial_query(self, tmp_path):
        """A killed query's flight dump, alone, is enough for a partial
        timeline in the history CLI (the acceptance criterion)."""
        shark = _shark()
        assert not shark.tracer.enabled
        shark.tracer.flight.dump_dir = str(tmp_path)
        shark.sql("SELECT COUNT(*) FROM readings")  # fills the ring
        shark.tracer.flight_dump("cancelled", query="killed-query")

        store = HistoryStore.load(tmp_path)
        record = store.query("killed-query")
        assert record.flight_only
        assert record.status == "cancelled"
        assert record.timeline  # partial timeline reconstructed
        assert record.makespan() > 0.0
        report = store.report(query="killed-query")
        assert "killed-query" in report
        assert "flight" in report.lower()

    def test_worker_utilization_from_flight_spans(self, tmp_path):
        shark = _shark()
        shark.tracer.flight.dump_dir = str(tmp_path)
        shark.sql("SELECT COUNT(*) FROM readings")
        shark.tracer.flight_dump("error", query="dead")
        store = HistoryStore.load(tmp_path)
        busy = store.query("dead").worker_busy_seconds()
        assert busy and all(value > 0 for value in busy.values())


class TestTenantReport:
    """Schema v4 serving aggregates: per-tenant utilization and per-tier
    latency percentiles rebuilt from the event log."""

    def _v4_log(self, tmp_path):
        from repro.obs.events import EventLogWriter

        path = tmp_path / "serving.jsonl"
        with EventLogWriter(path, 4, 2) as log:
            for index in range(4):
                log.write_query(
                    name=f"dash-{index}",
                    status="ok",
                    started=float(index),
                    ended=float(index) + 0.5,
                    sim_seconds=0.5,
                    tenant="dashboards",
                    priority="interactive",
                )
            log.write_query(
                name="crawl-ok",
                status="ok",
                started=0.0,
                ended=4.0,
                sim_seconds=4.0,
                tenant="crawler",
                priority="best_effort",
            )
            log.write_query(
                name="crawl-shed",
                status="shed",
                started=1.0,
                ended=2.0,
                sim_seconds=0.0,
                tenant="crawler",
                priority="best_effort",
                shed_reason="brownout",
            )
            log.write_query(
                name="crawl-bad",
                status="error",
                started=2.0,
                ended=3.0,
                sim_seconds=1.0,
                tenant="crawler",
                priority="best_effort",
            )
            log.write_query(name="untagged", status="ok", sim_seconds=1.0)
        return path

    def test_tenant_rows_aggregate_outcomes(self, tmp_path):
        store = HistoryStore.load(self._v4_log(tmp_path))
        rows = {row["tenant"]: row for row in store.tenant_rows()}
        assert set(rows) == {"dashboards", "crawler"}  # untagged skipped
        dash = rows["dashboards"]
        assert dash["queries"] == 4
        assert dash["completed"] == 4
        assert dash["sim_seconds"] == pytest.approx(2.0)
        assert dash["latency_seconds"] == pytest.approx(2.0)
        crawler = rows["crawler"]
        assert crawler["queries"] == 3
        assert crawler["completed"] == 1
        assert crawler["shed"] == 1
        assert crawler["failed"] == 1

    def test_tier_latencies_only_count_completions(self, tmp_path):
        store = HistoryStore.load(self._v4_log(tmp_path))
        tiers = store.tier_latencies()
        assert sorted(tiers) == ["best_effort", "interactive"]
        assert tiers["interactive"] == pytest.approx([0.5] * 4)
        # The shed and failed crawler queries contribute nothing.
        assert tiers["best_effort"] == pytest.approx([4.0])

    def test_tenant_report_sections(self, tmp_path):
        store = HistoryStore.load(self._v4_log(tmp_path))
        report = store.tenant_report()
        assert "per-tenant utilization" in report
        assert "per-tier latency" in report
        assert "shed reasons" in report
        assert "brownout: 1" in report
        assert "p50" in report and "p95" in report and "p99" in report
        markdown = store.tenant_report(markdown=True)
        assert markdown.startswith("# ")

    def test_cli_tenants_section(self, tmp_path, capsys):
        path = self._v4_log(tmp_path)
        assert history_main([str(path), "tenants"]) == 0
        out = capsys.readouterr().out
        assert "tenant report" in out
        assert "dashboards" in out

    def test_percentiles_nearest_rank(self):
        from repro.obs.history import percentile

        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 95.0) == 95.0
        assert percentile(values, 99.0) == 99.0
        assert percentile(values, 100.0) == 100.0
        assert percentile([], 50.0) == 0.0
        assert percentile([7.0], 99.0) == 7.0

    def test_percentile_delegates_to_the_shared_helper(self):
        """PR 10 satellite: ``history.percentile`` and
        ``metrics.percentiles_of`` must be the same nearest-rank math —
        the former is a thin wrapper, not a reimplementation."""
        from repro.obs.history import percentile
        from repro.obs.metrics import percentiles_of

        samples = [0.5, 1.5, 1.5, 2.0, 9.0, 42.0, 0.25]
        for pct in (1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0):
            assert percentile(sorted(samples), pct) == (
                percentiles_of(samples, (pct / 100.0,))[0]
            )
        # Odd sample counts and ties hit the same ranks in both.
        assert percentiles_of(samples)[0] == percentile(
            sorted(samples), 50.0
        )

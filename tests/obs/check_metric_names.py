"""Scan ``src/repro`` for metric/instant emissions and diff them against
the canonical registry in :mod:`repro.obs.names` — both directions.

Usable two ways: ``python tests/obs/check_metric_names.py`` from the
repo root (exits nonzero and prints each drift), and imported by
``tests/obs/test_names.py`` which asserts :func:`find_drift` is empty.

What counts as an emission (string literals only):

* ``<...>metrics.inc("name"`` / ``counters.inc("name"`` — counter
* ``<...>metrics.observe("name"``                       — histogram
* ``<...>metrics.set_gauge("name"``                     — gauge
* ``<...>.instant("name"``                              — trace instant

Receivers other than ``metrics``/``counters`` (e.g. the shuffle layer's
``collector.observe`` or columnar ``stats.observe``) are different
registries and intentionally out of scope.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src" / "repro"

_EMISSION_PATTERNS = {
    "counter": re.compile(
        r"\b(?:metrics|counters)\s*\.\s*inc\(\s*\n?\s*\"([^\"]+)\""
    ),
    "histogram": re.compile(
        r"\bmetrics\s*\.\s*observe\(\s*\n?\s*\"([^\"]+)\""
    ),
    "gauge": re.compile(
        r"\bmetrics\s*\.\s*set_gauge\(\s*\n?\s*\"([^\"]+)\""
    ),
    "instant": re.compile(r"\.instant\(\s*\n?\s*\"([^\"]+)\""),
}


def emitted_names(src: Path = SRC) -> dict[str, dict[str, set[str]]]:
    """kind -> name -> set of emitting files (repo-relative)."""
    out: dict[str, dict[str, set[str]]] = {
        kind: {} for kind in _EMISSION_PATTERNS
    }
    for path in sorted(src.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        try:
            rel = str(path.relative_to(REPO_ROOT))
        except ValueError:  # scanning a tree outside the repo (tests)
            rel = str(path)
        for kind, pattern in _EMISSION_PATTERNS.items():
            for name in pattern.findall(text):
                out[kind].setdefault(name, set()).add(rel)
    return out


def find_drift(src: Path = SRC) -> list[str]:
    """Every mismatch between emissions and the registry, as messages."""
    from repro.obs import names

    declared = names.all_names()
    emitted = emitted_names(src)
    problems: list[str] = []
    for kind, by_name in emitted.items():
        for name, files in sorted(by_name.items()):
            if name not in declared[kind]:
                where = ", ".join(sorted(files))
                problems.append(
                    f"{kind} {name!r} emitted in {where} but not "
                    f"declared in repro/obs/names.py"
                )
    for kind, declared_names in declared.items():
        for name in sorted(declared_names - set(emitted[kind])):
            problems.append(
                f"{kind} {name!r} declared in repro/obs/names.py but "
                f"never emitted under src/repro"
            )
    return problems


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    problems = find_drift()
    for problem in problems:
        print(f"DRIFT: {problem}", file=sys.stderr)
    if problems:
        print(
            f"{len(problems)} metric-name drift(s); fix the call site "
            "or declare the name in src/repro/obs/names.py",
            file=sys.stderr,
        )
        return 1
    emitted = emitted_names()
    total = sum(len(by_name) for by_name in emitted.values())
    print(f"metric names OK: {total} distinct names, no drift")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""End-to-end tracing: real queries, forced failures, EXPLAIN ANALYZE."""

from __future__ import annotations

import pytest

from repro import SharkContext
from repro.datatypes import INT, STRING, Schema


@pytest.fixture
def shark() -> SharkContext:
    context = SharkContext(num_workers=4, cores_per_worker=2)
    context.create_table(
        "users", Schema.of(("uid", INT), ("name", STRING)), cached=True
    )
    context.load_rows(
        "users", [(i, f"user{i}") for i in range(40)], num_partitions=8
    )
    context.create_table(
        "clicks", Schema.of(("uid", INT), ("url", STRING)), cached=True
    )
    context.load_rows(
        "clicks",
        [(i % 40, f"/page/{i}") for i in range(200)],
        num_partitions=8,
    )
    return context


JOIN_QUERY = (
    "SELECT name, COUNT(*) AS n FROM users JOIN clicks "
    "ON users.uid = clicks.uid GROUP BY name"
)


class TestQueryTracing:
    def test_span_hierarchy_of_a_query(self, shark):
        shark.enable_tracing()
        shark.sql(JOIN_QUERY)
        trace = shark.trace

        queries = trace.spans_in_category("query")
        jobs = trace.spans_in_category("job")
        stages = trace.spans_in_category("stage")
        tasks = trace.spans_in_category("task")
        assert len(queries) == 1
        assert jobs and stages and tasks
        # Jobs nest under the query; stages under jobs; tasks under stages.
        assert all(j.parent_id == queries[0].span_id for j in jobs)
        job_ids = {j.span_id for j in jobs}
        assert all(s.parent_id in job_ids for s in stages)
        stage_ids = {s.span_id for s in stages}
        assert all(t.parent_id in stage_ids for t in tasks)

    def test_spans_are_closed_and_ordered(self, shark):
        shark.enable_tracing()
        shark.sql(JOIN_QUERY)
        for span in shark.trace.spans:
            assert span.end is not None
            assert span.end >= span.start
        # A task runs inside its stage's interval.
        for task in shark.trace.spans_in_category("task"):
            stage = shark.trace.span(task.parent_id)
            assert task.start >= stage.start
            assert task.end <= stage.end

    def test_worker_lanes_serialize_tasks(self, shark):
        shark.enable_tracing()
        shark.sql(JOIN_QUERY)
        by_lane: dict = {}
        for task in shark.trace.spans_in_category("task"):
            by_lane.setdefault(task.lane, []).append(task)
        assert len(by_lane) > 1  # work spread over workers
        for spans in by_lane.values():
            ordered = sorted(spans, key=lambda s: s.start)
            for earlier, later in zip(ordered, ordered[1:]):
                assert later.start >= earlier.end

    def test_disabled_tracing_records_nothing(self, shark):
        shark.sql(JOIN_QUERY)
        assert len(shark.trace) == 0

    def test_metrics_count_engine_activity(self, shark):
        before = shark.metrics.value("tasks.launched")
        shark.sql(JOIN_QUERY)
        assert shark.metrics.value("tasks.launched") > before
        assert shark.metrics.value("jobs.submitted") >= 1
        assert shark.metrics.value("shuffle.write.bytes") > 0


@pytest.fixture
def grouped_shark() -> SharkContext:
    """The fault-tolerance workload: a wide GROUP BY whose map stage is
    long enough that a mid-query kill always loses shuffle output."""
    context = SharkContext(num_workers=5, cores_per_worker=2)
    context.create_table(
        "metrics", Schema.of(("group_key", STRING), ("value", INT)),
        cached=True,
    )
    context.load_rows(
        "metrics",
        [(f"g{i % 13}", i % 97) for i in range(4000)],
        num_partitions=10,
    )
    return context


GROUP_QUERY = (
    "SELECT group_key, COUNT(*) AS n, SUM(value) AS total "
    "FROM metrics GROUP BY group_key"
)


class TestFailureTracing:
    def _run_with_mid_query_kill(self, shark, worker_id=3):
        expected = sorted(shark.sql(GROUP_QUERY).rows)
        shark.enable_tracing()
        base = shark.engine.cluster.total_tasks_completed
        shark.inject_failure(worker_id=worker_id, after_tasks=base + 5)
        shark.engine.reset_profiles()
        result = shark.sql(GROUP_QUERY)
        assert sorted(result.rows) == expected
        recovered = sum(
            profile.recovered_tasks for profile in shark.engine.profiles
        )
        assert recovered > 0, "kill did not force recovery"
        return recovered

    def test_kill_and_recovery_events(self, grouped_shark):
        shark = grouped_shark
        recovered = self._run_with_mid_query_kill(shark)

        trace = shark.trace
        kills = trace.events_named("worker.kill")
        assert len(kills) == 1
        assert kills[0].args["worker_id"] == 3
        assert trace.events_in_category("recovery"), (
            "expected lineage-recovery events after the kill"
        )
        assert shark.metrics.value("tasks.recovered") >= recovered

    def test_recovery_task_spans_are_marked(self, grouped_shark):
        shark = grouped_shark
        self._run_with_mid_query_kill(shark, worker_id=2)
        reexecutions = shark.trace.events_named("task.reexecution")
        recovery_spans = [
            span
            for span in shark.trace.spans_in_category("task")
            if span.args.get("recovery")
        ]
        assert reexecutions or recovery_spans

    def test_chrome_trace_of_failure_run(self, grouped_shark, tmp_path):
        shark = grouped_shark
        self._run_with_mid_query_kill(shark, worker_id=1)
        path = tmp_path / "failure.json"
        shark.trace.write_chrome_trace(str(path))
        import json

        document = json.loads(path.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert "worker.kill" in names
        assert "lineage.recovery" in names or "task.reexecution" in names


class TestExplainAnalyze:
    def test_output_shape_on_cached_join(self, shark):
        text = shark.explain_analyze(JOIN_QUERY)
        assert "== runtime profile" in text
        assert "simulated seconds" in text
        assert "sim-s" in text
        assert "tasks" in text
        assert "rows" in text
        assert "result: 40 row(s)" in text
        # The plan itself still leads the output.
        assert text.index("Join") < text.index("== runtime profile")

    def test_reports_shuffle_bytes(self, shark):
        text = shark.explain_analyze(JOIN_QUERY)
        assert "shuffle write" in text

    def test_rows_match_plain_execution(self, shark):
        result = shark.sql(f"EXPLAIN ANALYZE {JOIN_QUERY}")
        assert result.schema.names == ["plan"]
        assert result.plan_text == "\n".join(r[0] for r in result.rows)

    def test_explain_without_analyze_does_not_execute(self, shark):
        before = shark.metrics.value("tasks.launched")
        shark.sql(f"EXPLAIN {JOIN_QUERY}")
        assert shark.metrics.value("tasks.launched") == before

    def test_attempts_surface_after_failure(self, grouped_shark):
        shark = grouped_shark
        shark.sql(GROUP_QUERY)  # warm
        base = shark.engine.cluster.total_tasks_completed
        shark.inject_failure(worker_id=3, after_tasks=base + 5)
        text = shark.explain_analyze(GROUP_QUERY)
        assert "recovered tasks (lineage re-execution):" in text


class TestShellObservability:
    def test_profile_and_metrics_commands(self, shark):
        from repro.shell import run

        out: list[str] = []
        run(
            [
                f".profile {JOIN_QUERY}",
                ".metrics",
            ],
            shark=shark,
            write=out.append,
        )
        text = "\n".join(out)
        assert "== runtime profile" in text
        assert "tasks.launched" in text

    def test_trace_command_round_trip(self, shark, tmp_path):
        from repro.shell import run

        path = tmp_path / "shell.json"
        out: list[str] = []
        run(
            [
                ".trace on",
                "SELECT COUNT(*) FROM clicks;",
                f".trace {path}",
                ".trace off",
            ],
            shark=shark,
            write=out.append,
        )
        assert path.exists()
        assert any("tracing enabled" in line for line in out)
        assert any("tracing disabled" in line for line in out)

    def test_help_lists_observability_commands(self):
        from repro.shell import HELP_TEXT

        assert ".profile" in HELP_TEXT
        assert ".metrics" in HELP_TEXT
        assert ".trace" in HELP_TEXT

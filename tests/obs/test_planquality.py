"""Unit tests for the plan-quality vocabulary (PR 10 tentpole).

Covers the q-error definition, stamp/actual joining, the audit, the
selectivity guesses behind the ``guess`` statistics source, and the
exactly-once counting hook — all pure functions, no cluster needed
except where the task-context no-op is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.obs.planquality import (
    BETWEEN_SELECTIVITY,
    DEFAULT_Q_ERROR_THRESHOLD,
    DEFAULT_SELECTIVITY,
    EQ_SELECTIVITY,
    OperatorStamp,
    RANGE_SELECTIVITY,
    SOURCE_GUESS,
    actual_rows_from_profiles,
    audit,
    build_operator_profiles,
    estimate_filtered_rows,
    estimate_selectivity,
    format_profile_line,
    q_error,
    record_operator_rows,
)
from repro.sql.expressions import (
    BoundAnd,
    BoundBetween,
    BoundColumn,
    BoundComparison,
    BoundIn,
    BoundLiteral,
)
from repro.datatypes import INT


def _col(index: int = 0, name: str = "c") -> BoundColumn:
    return BoundColumn(index, INT, name)


def _lit(value: int) -> BoundLiteral:
    return BoundLiteral(value, INT)


class TestQError:
    def test_perfect_estimate_is_one(self):
        assert q_error(100, 100) == 1.0

    def test_symmetric_over_and_under(self):
        assert q_error(1000, 100) == 10.0
        assert q_error(100, 1000) == 10.0

    def test_clamps_zero_rows(self):
        # Empty results never divide by zero: both sides clamp to 1.
        assert q_error(50, 0) == 50.0
        assert q_error(0, 0) == 1.0

    def test_none_when_either_side_missing(self):
        assert q_error(None, 10) is None
        assert q_error(10, None) is None


class TestStampJoin:
    def _stamps(self):
        return [
            OperatorStamp("scan(t)", "vectorized", 0, 1000, "catalog"),
            OperatorStamp(
                "filter", "vectorized", 1, 300, "guess", detail="(c < 5)"
            ),
            OperatorStamp("sort", "row", 2, None, "none"),
        ]

    def test_profiles_join_stamps_with_actuals(self):
        profiles = build_operator_profiles(
            self._stamps(), {"scan(t)#0": 1000, "filter#1": 20}
        )
        assert [p["operator"] for p in profiles] == [
            "scan(t)", "filter", "sort",
        ]
        assert profiles[0]["q_error"] == 1.0
        assert profiles[1]["q_error"] == 15.0
        assert profiles[1]["detail"] == "(c < 5)"
        # Unstamped estimate + unobserved actual stay null, and the
        # detail key is omitted entirely when empty (byte identity).
        assert profiles[2]["est_rows"] is None
        assert profiles[2]["actual_rows"] is None
        assert profiles[2]["q_error"] is None
        assert "detail" not in profiles[2]

    def test_audit_flags_worst_first(self):
        profiles = build_operator_profiles(
            self._stamps(), {"scan(t)#0": 200, "filter#1": 20}
        )
        flagged = audit(profiles, DEFAULT_Q_ERROR_THRESHOLD)
        assert [p["operator"] for p in flagged] == ["filter", "scan(t)"]
        assert flagged[0]["q_error"] == 15.0
        # Threshold is strict: exactly-at-threshold is not flagged.
        assert audit(profiles, 15.0) == []
        assert audit(profiles, 5.0) == [profiles[1]]

    def test_format_line_marks_misestimates(self):
        profiles = build_operator_profiles(
            self._stamps(), {"filter#1": 20}
        )
        line = format_profile_line(profiles[1], DEFAULT_Q_ERROR_THRESHOLD)
        assert "filter [vectorized]" in line
        assert "est 300 (guess)" in line
        assert "actual 20 rows" in line
        assert "q-error 15.00" in line
        assert "** misestimate" in line
        unknown = format_profile_line(
            profiles[2], DEFAULT_Q_ERROR_THRESHOLD
        )
        assert "est ? (none) / actual ? rows" in unknown
        assert "q-error" not in unknown


@dataclass
class _FakeTask:
    operator_rows: dict = field(default_factory=dict)


@dataclass
class _FakeStage:
    tasks: list = field(default_factory=list)


@dataclass
class _FakeProfile:
    stages: list = field(default_factory=list)


class TestActualAggregation:
    def test_sums_within_a_job(self):
        profile = _FakeProfile(
            stages=[
                _FakeStage(
                    tasks=[
                        _FakeTask({"filter#1": 10}),
                        _FakeTask({"filter#1": 15}),
                    ]
                )
            ]
        )
        assert actual_rows_from_profiles([profile]) == {"filter#1": 25}

    def test_max_across_jobs_prevents_double_counting(self):
        # A sort sampling job re-runs the scan over a sample; the PDE
        # pre-shuffle job re-runs it completely.  Max keeps the largest
        # complete observation instead of summing re-executions.
        sample_job = _FakeProfile(
            stages=[_FakeStage(tasks=[_FakeTask({"scan(t)#0": 64})])]
        )
        full_job = _FakeProfile(
            stages=[_FakeStage(tasks=[_FakeTask({"scan(t)#0": 1000})])]
        )
        totals = actual_rows_from_profiles([sample_job, full_job])
        assert totals == {"scan(t)#0": 1000}

    def test_record_is_a_noop_on_the_driver(self):
        # No task context outside a running task: recording must not
        # raise and must not leak state anywhere.
        record_operator_rows("filter#1", 123)


class TestSelectivity:
    def test_equality_conjunct(self):
        condition = BoundComparison("=", _col(), _lit(1))
        assert estimate_selectivity(condition) == EQ_SELECTIVITY

    def test_inequality_conjunct(self):
        condition = BoundComparison("<>", _col(), _lit(1))
        assert estimate_selectivity(condition) == 1.0 - EQ_SELECTIVITY

    def test_range_conjunct(self):
        condition = BoundComparison("<", _col(), _lit(10))
        assert estimate_selectivity(condition) == RANGE_SELECTIVITY

    def test_between_conjunct(self):
        condition = BoundBetween(_col(), _lit(1), _lit(5))
        assert estimate_selectivity(condition) == BETWEEN_SELECTIVITY

    def test_in_list_scales_with_options_and_caps(self):
        small = BoundIn(_col(), [_lit(1), _lit(2)])
        assert estimate_selectivity(small) == pytest.approx(
            2 * EQ_SELECTIVITY
        )
        big = BoundIn(_col(), [_lit(v) for v in range(10)])
        assert estimate_selectivity(big) == 0.5

    def test_conjunction_multiplies(self):
        condition = BoundAnd(
            BoundComparison("=", _col(0, "a"), _lit(1)),
            BoundComparison("<", _col(1, "b"), _lit(9)),
        )
        assert estimate_selectivity(condition) == pytest.approx(
            EQ_SELECTIVITY * RANGE_SELECTIVITY
        )

    def test_unrecognized_uses_default(self):
        condition = BoundLiteral(True, INT)
        assert estimate_selectivity(condition) == DEFAULT_SELECTIVITY

    def test_filtered_rows_floor_is_one_row(self):
        condition = BoundComparison("=", _col(), _lit(1))
        assert estimate_filtered_rows(3, condition) == 1
        assert estimate_filtered_rows(1000, condition) == 100

    def test_stamp_source_vocabulary(self):
        stamp = OperatorStamp(
            "filter", "row", 4, 10, SOURCE_GUESS, detail="x"
        )
        assert stamp.key == "filter#4"

"""S3: Chrome-trace export contract, including a faulty (retries +
speculation) run.

Checked per export: required keys on every event, per-lane monotonic
timestamps in duration style, and strictly matched B/E pairs.
"""

from __future__ import annotations

import json
from collections import defaultdict

import pytest

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.faults import FaultInjector

_REQUIRED_KEYS = {
    "M": {"name", "ph", "pid", "tid", "args"},
    "X": {"name", "cat", "ph", "ts", "dur", "pid", "tid"},
    "B": {"name", "cat", "ph", "ts", "pid", "tid"},
    "E": {"name", "cat", "ph", "ts", "pid", "tid"},
    "i": {"name", "cat", "ph", "ts", "pid", "tid", "s"},
}


def _traced_shark(fault_injector=None, scheduler_config=None) -> SharkContext:
    shark = SharkContext(
        num_workers=4,
        cores_per_worker=2,
        fault_injector=fault_injector,
        scheduler_config=scheduler_config,
    )
    shark.create_table(
        "readings",
        Schema.of(("bucket", STRING), ("day", INT), ("value", DOUBLE)),
        cached=True,
    )
    shark.load_rows(
        "readings",
        [(f"b{i % 6}", i % 12, float(i % 90)) for i in range(4000)],
        num_partitions=8,
    )
    shark.enable_tracing()
    shark.sql(
        "SELECT bucket, COUNT(*) AS n, SUM(value) AS total "
        "FROM readings GROUP BY bucket"
    )
    return shark


@pytest.fixture(scope="module")
def chaotic_document():
    """Duration-style export of a run with retries and speculation."""
    from repro.engine.scheduler import SchedulerConfig

    injector = FaultInjector(
        seed=13,
        transient_failure_rate=0.15,
        stragglers_per_stage=1,
        straggler_slowdown=50.0,
    )
    shark = _traced_shark(
        fault_injector=injector,
        scheduler_config=SchedulerConfig(
            speculation_min_peers=2, speculation_multiplier=1.2
        ),
    )
    retried = sum(p.retried_tasks for p in shark.engine.profiles)
    speculative = sum(
        p.speculative_tasks for p in shark.engine.profiles
    )
    assert retried > 0 and speculative > 0  # the run was actually chaotic
    return shark.trace.to_chrome_trace(style="duration")


def _check_required_keys(document):
    for event in document["traceEvents"]:
        assert event["ph"] in _REQUIRED_KEYS, event
        missing = _REQUIRED_KEYS[event["ph"]] - set(event)
        assert not missing, f"{event['ph']} event missing {missing}"


class TestCompleteStyle:
    def test_required_keys_and_json_round_trip(self):
        shark = _traced_shark()
        document = shark.trace.to_chrome_trace(
            metadata={"query": "agg"}
        )
        _check_required_keys(document)
        again = json.loads(json.dumps(document))
        assert again["metadata"] == {"query": "agg"}
        assert any(
            event["ph"] == "X" for event in again["traceEvents"]
        )

    def test_unknown_style_rejected(self):
        shark = _traced_shark()
        with pytest.raises(ValueError, match="style"):
            shark.trace.to_chrome_trace(style="flame")


class TestDurationStyle:
    def test_required_keys(self, chaotic_document):
        _check_required_keys(chaotic_document)

    def test_monotonic_ts_per_lane(self, chaotic_document):
        per_lane = defaultdict(list)
        for event in chaotic_document["traceEvents"]:
            if event["ph"] in ("B", "E"):
                per_lane[event["tid"]].append(event["ts"])
        assert per_lane
        for tid, timestamps in per_lane.items():
            assert timestamps == sorted(timestamps), (
                f"lane {tid} B/E timestamps are not monotonic"
            )

    def test_matched_be_pairs(self, chaotic_document):
        """Every E closes the most recent open B with the same name —
        strict stack discipline per lane, nothing left open."""
        stacks = defaultdict(list)
        for event in chaotic_document["traceEvents"]:
            if event["ph"] == "B":
                stacks[event["tid"]].append(event["name"])
            elif event["ph"] == "E":
                assert stacks[event["tid"]], (
                    f"E without open B on lane {event['tid']}"
                )
                assert stacks[event["tid"]].pop() == event["name"]
        for tid, stack in stacks.items():
            assert stack == [], f"unclosed B events on lane {tid}: {stack}"

    def test_driver_and_worker_lanes_named(self, chaotic_document):
        names = {
            event["args"]["name"]
            for event in chaotic_document["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert "driver" in names
        assert any(name.startswith("worker ") for name in names)

    def test_retry_and_speculation_visible(self, chaotic_document):
        instants = {
            event["name"]
            for event in chaotic_document["traceEvents"]
            if event["ph"] == "i"
        }
        assert "task.retry" in instants
        assert "task.speculative" in instants

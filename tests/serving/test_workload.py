"""Zipfian workload generator and the overload soak gates."""

from collections import Counter

from repro.serving.tenants import BEST_EFFORT
from repro.serving.workload import (
    DEFAULT_TENANTS,
    QUERY_TEMPLATES,
    Submission,
    ZipfianWorkload,
    run_soak,
)


class TestGenerator:
    def test_deterministic_for_a_seed(self):
        first = ZipfianWorkload(seed=7, queries=200).generate()
        second = ZipfianWorkload(seed=7, queries=200).generate()
        assert first == second
        assert len(first) == 200
        assert all(isinstance(item, Submission) for item in first)

    def test_different_seeds_differ(self):
        assert (
            ZipfianWorkload(seed=1, queries=200).generate()
            != ZipfianWorkload(seed=2, queries=200).generate()
        )

    def test_traffic_is_zipf_skewed_toward_the_head_tenant(self):
        submissions = ZipfianWorkload(seed=29, queries=2000).generate()
        counts = Counter(item.tenant for item in submissions)
        head = DEFAULT_TENANTS[0][0]
        tail = DEFAULT_TENANTS[-1][0]
        # Rank-1 tenant dominates rank-5 by a wide margin.
        assert counts[head] > 2 * counts[tail]
        # ... but every tenant still shows up.
        assert set(counts) == {name for name, _ in DEFAULT_TENANTS}

    def test_only_best_effort_submissions_carry_deadlines(self):
        submissions = ZipfianWorkload(seed=29, queries=1000).generate()
        tiers = dict(DEFAULT_TENANTS)
        for item in submissions:
            if tiers[item.tenant] == BEST_EFFORT:
                assert item.deadline_s is not None
            else:
                assert item.deadline_s is None
        deadlines = {
            item.deadline_s
            for item in submissions
            if item.deadline_s is not None
        }
        # Both the meetable and the tight deadline appear.
        assert len(deadlines) == 2

    def test_templates_come_from_the_shared_pool(self):
        submissions = ZipfianWorkload(seed=3, queries=500).generate()
        known = {name for name, _ in QUERY_TEMPLATES}
        assert {item.template for item in submissions} <= known


class TestSoak:
    def test_tiny_soak_passes_every_gate(self, tmp_path):
        log = tmp_path / "soak.jsonl"
        report = tmp_path / "report.txt"
        code = run_soak(
            queries=120,
            seed=29,
            fault_seed=None,
            event_log_out=str(log),
            report_out=str(report),
            verbose=False,
        )
        assert code == 0
        text = report.read_text()
        assert "per-tier latency" in text
        assert "interactive" in text

    def test_tiny_soak_under_chaos_is_reproducible(self, tmp_path):
        logs = []
        for run in range(2):
            log = tmp_path / f"soak{run}.jsonl"
            code = run_soak(
                queries=120,
                seed=29,
                fault_seed=13,
                event_log_out=str(log),
                verbose=False,
            )
            assert code == 0
            logs.append(log.read_bytes())
        # Chaos included, the two event logs are byte-identical.
        assert logs[0] == logs[1]

"""Serving integration: the multi-tenant soak with the caching stack.

The Zipfian workload repeats a handful of query templates, so once the
versioned result cache warms up a measurable fraction of completions is
served without running a single task.  Gating: every soak gate still
holds with the cache on (including byte-identity against the cache-off
baseline), the hit ratio is positive and attributed per tenant, load
shedding does not get *worse* than the cache-off run, and the memory
ledger stays balanced.
"""

from repro.errors import TenantQuotaExceeded
from repro.serving import ZipfianWorkload
from repro.serving.tenants import BEST_EFFORT
from repro.serving.workload import (
    build_server,
    build_serving_context,
    run_soak,
)

from tests.sql.test_vectorized_parity import assert_byte_identical


def _drive(queries=160, seed=29, sql_cache=False, fault_seed=None):
    shark = build_serving_context(
        fault_seed=fault_seed, sql_cache=sql_cache
    )
    server = build_server(shark, queries)
    workload = ZipfianWorkload(seed=seed, queries=queries)
    for index, request in enumerate(workload.generate()):
        try:
            server.submit(
                request.tenant,
                request.text,
                name=f"{request.tenant}-{index}",
                deadline_s=request.deadline_s,
                key=request.template,
            )
        except TenantQuotaExceeded:
            pass
    server.drain()
    return shark, server


class TestServingWithCache:
    def test_every_soak_gate_holds_with_cache_on(self, tmp_path):
        # The full CI gate, cache on, under chaos: graceful shedding,
        # byte-identity vs an uncontended cache-off baseline, positive
        # hit count, ledger-zero, no leaked blocks/spans/memory.
        exit_code = run_soak(
            queries=240,
            fault_seed=17,
            sql_cache=True,
            verbose=False,
            report_out=str(tmp_path / "soak_report.txt"),
        )
        assert exit_code == 0

    def test_cache_hits_attributed_and_shedding_not_worse(self):
        __, off = _drive(sql_cache=False)
        shark, on = _drive(sql_cache=True)
        assert on.cache_hits > 0
        attributed = sum(
            state.cache_hits for state in on.tenants.values()
        )
        assert attributed == on.cache_hits
        shed_on = [t for t in on.finished if t.state == "shed"]
        shed_off = [t for t in off.finished if t.state == "shed"]
        # Cache hits complete instantly, draining the backlog faster —
        # shedding must never get worse with the cache on.
        assert len(shed_on) <= len(shed_off)
        assert all(t.priority == BEST_EFFORT for t in shed_on)
        assert shark.engine.memory.clamped_release_bytes == 0
        # The server summary surfaces the hit count only when nonzero
        # (cache-off runs keep byte-identical summaries).
        assert any("sql cache" in line for line in on.summary_lines())
        assert not any(
            "sql cache" in line for line in off.summary_lines()
        )

    def test_admitted_results_byte_identical_per_template(self):
        __, server = _drive(sql_cache=True)
        by_text: dict[str, list] = {}
        for ticket in server.finished:
            if ticket.state != "done":
                continue
            rows = ticket.result.rows
            first = by_text.setdefault(ticket.text, rows)
            # Coherent within the run: cached and executed completions
            # of the same template never diverge.
            assert_byte_identical(rows, first)
        assert by_text, "the soak must complete some queries"
        # ...and against a fresh uncontended cache-off warehouse.
        reference = build_serving_context()
        for text, rows in by_text.items():
            assert_byte_identical(rows, reference.sql(text).rows)

"""Tenant state: quotas, budget windows, tiers, and weights."""

import pytest

from repro.serving.tenants import (
    BATCH,
    BEST_EFFORT,
    INTERACTIVE,
    PRIORITY_TIERS,
    PRIORITY_WEIGHTS,
    TIER_RANK,
    TenantQuota,
    TenantState,
)


class TestTiers:
    def test_tiers_are_ordered_highest_first(self):
        assert PRIORITY_TIERS == (INTERACTIVE, BATCH, BEST_EFFORT)
        assert TIER_RANK[INTERACTIVE] < TIER_RANK[BATCH] < TIER_RANK[BEST_EFFORT]

    def test_weights_decrease_with_tier(self):
        assert (
            PRIORITY_WEIGHTS[INTERACTIVE]
            > PRIORITY_WEIGHTS[BATCH]
            > PRIORITY_WEIGHTS[BEST_EFFORT]
        )

    def test_tenant_weight_and_rank_derive_from_tier(self):
        tenant = TenantState(name="t", priority=INTERACTIVE)
        assert tenant.weight == PRIORITY_WEIGHTS[INTERACTIVE]
        assert tenant.rank == TIER_RANK[INTERACTIVE]

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="priority tier"):
            TenantState(name="t", priority="platinum")


class TestQuotaValidation:
    def test_defaults_are_valid(self):
        quota = TenantQuota()
        assert quota.max_concurrent >= 1
        assert quota.budget_seconds is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_concurrent": 0},
            {"max_queued": -1},
            {"window_seconds": 0.0},
        ],
    )
    def test_bad_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestBudgetWindow:
    def _tenant(self, budget=10.0, window=60.0):
        return TenantState(
            name="t",
            priority=BATCH,
            quota=TenantQuota(budget_seconds=budget, window_seconds=window),
        )

    def test_no_budget_never_exhausts(self):
        tenant = TenantState(name="t")
        tenant.charge(1e9, now=0.0)
        assert not tenant.budget_exhausted(now=0.0)

    def test_charge_accumulates_into_the_window(self):
        tenant = self._tenant(budget=5.0)
        tenant.charge(2.0, now=1.0)
        tenant.charge(2.0, now=2.0)
        assert not tenant.budget_exhausted(now=3.0)
        tenant.charge(1.5, now=4.0)
        assert tenant.budget_exhausted(now=5.0)
        assert tenant.charged_seconds == pytest.approx(5.5)

    def test_window_roll_resets_the_charge(self):
        tenant = self._tenant(budget=1.0, window=60.0)
        tenant.charge(5.0, now=10.0)
        assert tenant.budget_exhausted(now=30.0)
        # Next window: the budget is fresh, lifetime charge preserved.
        assert not tenant.budget_exhausted(now=61.0)
        assert tenant.window_charged == 0.0
        assert tenant.charged_seconds == pytest.approx(5.0)

    def test_window_roll_skips_whole_idle_windows(self):
        tenant = self._tenant(budget=1.0, window=10.0)
        tenant.charge(3.0, now=0.0)
        tenant.roll_window(now=57.0)
        # 5 whole windows elapsed; the start stays phase-aligned.
        assert tenant.window_start == pytest.approx(50.0)
        assert tenant.window_charged == 0.0

    def test_retry_after_points_at_the_window_end(self):
        tenant = self._tenant(budget=1.0, window=60.0)
        tenant.charge(2.0, now=0.0)
        assert tenant.budget_exhausted(now=45.0)
        assert tenant.budget_retry_after(now=45.0) == pytest.approx(15.0)

    def test_describe_mentions_window_when_budgeted(self):
        tenant = self._tenant(budget=9.0)
        assert "window" in tenant.describe()
        assert "window" not in TenantState(name="free").describe()

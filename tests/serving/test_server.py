"""Multi-tenant SqlServer: quotas, priorities, shedding, isolation."""

import pytest

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.errors import (
    QueryLifecycleError,
    QueryShedError,
    ReproError,
    TaskError,
    TenantQuotaExceeded,
)
from repro.serving import (
    BATCH,
    BEST_EFFORT,
    INTERACTIVE,
    ServerConfig,
    SqlServer,
    TenantQuota,
)

AGG = (
    "SELECT bucket, COUNT(*) AS n, SUM(value) AS total "
    "FROM readings GROUP BY bucket"
)
COUNT = "SELECT COUNT(*) FROM readings"
FILTER = (
    "SELECT day, COUNT(*) AS n FROM readings WHERE value > 40 GROUP BY day"
)


def _build_shark(**kwargs) -> SharkContext:
    shark = SharkContext(num_workers=4, cores_per_worker=2, **kwargs)
    shark.create_table(
        "readings",
        Schema.of(("bucket", STRING), ("day", INT), ("value", DOUBLE)),
        cached=True,
    )
    shark.load_rows(
        "readings",
        [(f"b{i % 6}", i % 15, float(i % 100)) for i in range(3000)],
        num_partitions=8,
    )
    return shark


def _build_server(shark=None, config=None) -> SqlServer:
    shark = shark if shark is not None else _build_shark()
    server = SqlServer(shark, config)
    server.register_tenant("alice", INTERACTIVE)
    server.register_tenant("bob", BATCH)
    server.register_tenant("carol", BEST_EFFORT)
    return server


# ----------------------------------------------------------------------
# Basics
# ----------------------------------------------------------------------
def test_server_runs_queries_and_matches_direct_results():
    shark = _build_shark()
    expected = sorted(shark.sql(AGG).rows)
    server = _build_server(shark)
    ticket = server.submit("alice", AGG, name="agg")
    finished = server.drain()
    assert ticket in finished
    assert ticket.state == "done"
    assert sorted(ticket.result.rows) == expected
    assert server.completed == 1
    assert ticket.latency_s >= 0.0


def test_server_registers_itself_on_the_engine_context():
    server = _build_server()
    assert server.shark.engine.serving is server
    assert server.lifecycle is server.shark.engine.lifecycle
    assert server.lifecycle.config.fairness == "weighted"


def test_register_tenant_is_idempotent_and_validates_tier():
    server = _build_server()
    again = server.register_tenant("alice", INTERACTIVE)
    assert again is server.tenants["alice"]
    with pytest.raises(ValueError):
        server.register_tenant("mallory", "super-important")
    with pytest.raises(ReproError):
        server.submit("nobody", COUNT)


def test_weighted_fairness_finishes_interactive_first():
    server = _build_server()
    slow = server.submit("carol", AGG, name="be")
    fast = server.submit("alice", AGG, name="ia")
    server.drain()
    assert slow.state == "done" and fast.state == "done"
    order = [h.name for h in server.lifecycle.finish_order]
    assert order.index("ia") < order.index("be")


# ----------------------------------------------------------------------
# Quotas
# ----------------------------------------------------------------------
def test_queue_quota_rejection_is_typed_with_retry_hint():
    server = _build_server()
    server.register_tenant(
        "tiny", BATCH, TenantQuota(max_concurrent=1, max_queued=1)
    )
    server.submit("tiny", COUNT)
    server.submit("tiny", COUNT)
    with pytest.raises(TenantQuotaExceeded) as excinfo:
        server.submit("tiny", COUNT)
    error = excinfo.value
    assert error.tenant == "tiny"
    assert error.resource == "queue"
    assert error.retry_after_s > 0
    assert server.tenants["tiny"].rejected == 1


def test_zero_queue_quota_names_concurrency_as_the_resource():
    server = _build_server()
    server.register_tenant(
        "slots-only", BATCH, TenantQuota(max_concurrent=1, max_queued=0)
    )
    first = server.submit("slots-only", COUNT)
    with pytest.raises(TenantQuotaExceeded) as excinfo:
        server.submit("slots-only", COUNT)
    assert excinfo.value.resource == "concurrency"
    server.drain()
    assert first.state == "done"


def test_budget_quota_rejects_until_the_window_rolls():
    server = _build_server()
    server.register_tenant(
        "metered",
        BATCH,
        TenantQuota(
            max_concurrent=2,
            max_queued=8,
            budget_seconds=1e-6,
            window_seconds=5.0,
        ),
    )
    server.submit("metered", AGG)
    server.drain()
    tenant = server.tenants["metered"]
    assert tenant.window_charged > 1e-6
    with pytest.raises(TenantQuotaExceeded) as excinfo:
        server.submit("metered", COUNT)
    error = excinfo.value
    assert error.resource == "budget"
    # The hint points at the window roll-over on the simulated clock.
    assert 0 < error.retry_after_s <= 5.0
    # Once the clock passes the window, the budget resets and the
    # tenant admits again.
    clock = server.shark.engine.tracer.clock
    clock.advance(error.retry_after_s + 1e-9)
    ticket = server.submit("metered", COUNT)
    server.drain()
    assert ticket.state == "done"


def test_client_honoring_server_retry_hint_eventually_admits():
    server = _build_server()
    server.register_tenant(
        "backoff", BATCH, TenantQuota(max_concurrent=1, max_queued=1)
    )
    server.submit("backoff", AGG)
    server.submit("backoff", AGG)
    admitted = None
    for _ in range(20):
        try:
            admitted = server.submit("backoff", COUNT, name="retried")
            break
        except TenantQuotaExceeded:
            # Honoring the hint: let the backlog drain, then retry.
            server.drain()
    assert admitted is not None
    server.drain()
    assert admitted.state == "done"


# ----------------------------------------------------------------------
# Load shedding
# ----------------------------------------------------------------------
def test_unmeetable_deadline_is_shed_not_run():
    # One engine slot: the blocker holds it while the clock advances
    # past the doomed query's deadline, so the server sheds it from the
    # pending queue without ever launching it.
    server = _build_server(config=ServerConfig(engine_slots=1))
    blocker = server.submit("alice", AGG)
    doomed = server.submit("carol", COUNT, deadline_s=1e-9, name="doomed")
    server.drain()
    assert blocker.state == "done"
    assert doomed.state == "shed"
    assert doomed.shed_reason == "deadline-unmeetable"
    assert isinstance(doomed.error, QueryShedError)
    # Shed before launch: the engine never saw it.
    assert doomed.handle is None
    assert server.shed == 1


def test_brownout_sheds_best_effort_before_batch_and_never_interactive():
    server = _build_server(
        config=ServerConfig(
            engine_slots=1,
            brownout_enter_depth=10,
            brownout_exit_depth=4,
        )
    )
    interactive = [server.submit("alice", COUNT) for _ in range(2)]
    batch = [server.submit("bob", COUNT) for _ in range(2)]
    best_effort = [server.submit("carol", AGG) for _ in range(8)]
    server.drain()
    assert all(t.state == "done" for t in interactive)
    shed = [t for t in server.finished if t.state == "shed"]
    assert shed, "expected brownout shedding"
    assert {t.priority for t in shed} == {BEST_EFFORT}
    assert all(t.shed_reason == "brownout" for t in shed)
    assert server.brownouts == 1
    assert not server.brownout  # exited once the backlog drained
    # Batch survived because best-effort absorbed the whole shed.
    assert all(t.state == "done" for t in batch)
    assert any(t.state == "shed" for t in best_effort)


def test_shed_tickets_count_and_describe():
    server = _build_server(config=ServerConfig(engine_slots=1))
    server.submit("alice", AGG)
    doomed = server.submit("carol", COUNT, deadline_s=1e-9)
    server.drain()
    text = doomed.describe()
    assert "shed" in text and "carol" in text
    assert "BROWNOUT" not in server.describe()
    assert any("tenant carol" in line for line in server.summary_lines())


# ----------------------------------------------------------------------
# Tenant isolation
# ----------------------------------------------------------------------
def test_one_tenants_poison_query_never_circuit_breaks_another():
    shark = _build_shark()
    server = SqlServer(shark)
    server.register_tenant("victim", BATCH)
    server.register_tenant("poisoner", BATCH)
    # Engine failures (not SQL analysis errors) feed the circuit: wire a
    # marker text to a task-level failure.
    plain_query_fn = server._query_fn

    def query_fn(text):
        if text == "POISON":
            def boom():
                raise TaskError(0, 0, ValueError("poison"))

            return boom
        return plain_query_fn(text)

    server._query_fn = query_fn
    threshold = server.lifecycle.config.circuit_failure_threshold
    for _ in range(threshold):
        ticket = server.submit("poisoner", "POISON", key="shared-key")
        server.drain()
        assert ticket.state == "failed"
    # The poisoner's circuit for this key is now open: the next submit
    # fails fast at promotion without entering the engine.
    rejected = server.submit("poisoner", "POISON", key="shared-key")
    server.drain()
    assert rejected.state == "failed"
    assert isinstance(rejected.error, QueryLifecycleError)
    assert rejected.handle is None
    # ...but the victim runs the same key untouched.
    ok = server.submit("victim", COUNT, key="shared-key")
    server.drain()
    assert ok.state == "done"


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_serving_section_in_explain_analyze_and_metrics():
    server = _build_server()
    server.submit("alice", AGG)
    server.drain()
    text = server.shark.explain_analyze(COUNT)
    assert "== serving ==" in text
    assert "tenant alice" in text
    metrics = server.shark.metrics
    assert metrics.value("server.submitted") == 1
    assert metrics.value("server.admitted") == 1
    assert metrics.value("server.completed") == 1
    assert metrics.value("server.tenants") == 3


def test_server_shed_writes_v4_event_log_records(tmp_path):
    path = tmp_path / "serving.jsonl"
    shark = _build_shark()
    shark.enable_event_log(path, source="test")
    server = SqlServer(shark, ServerConfig(engine_slots=1))
    server.register_tenant("alice", INTERACTIVE)
    server.register_tenant("carol", BEST_EFFORT)
    done = server.submit("alice", AGG, name="kept")
    doomed = server.submit("carol", COUNT, deadline_s=1e-9, name="doomed")
    server.drain()
    shark.close_event_log()
    assert done.state == "done" and doomed.state == "shed"

    from repro.obs.history import HistoryStore

    store = HistoryStore.load(path)
    by_name = {record.name: record for record in store.queries}
    assert by_name["kept"].tenant == "alice"
    assert by_name["kept"].priority == INTERACTIVE
    assert by_name["kept"].status == "ok"
    assert by_name["doomed"].status == "shed"
    assert by_name["doomed"].shed_reason == "deadline-unmeetable"
    report = store.tenant_report()
    assert "alice" in report and "carol" in report
    assert "deadline-unmeetable: 1" in report


def test_server_drain_is_deterministic():
    def run_once():
        server = _build_server()
        server.submit("alice", AGG)
        server.submit("bob", FILTER)
        server.submit("carol", COUNT)
        server.drain()
        return [
            (t.name, t.state, sorted(t.result.rows) if t.result else None)
            for t in server.finished
        ]

    assert run_once() == run_once()


def test_drain_leaves_no_admission_ledger_leak():
    server = _build_server()
    for tenant in ("alice", "bob", "carol"):
        server.submit(tenant, AGG)
    server.submit("carol", COUNT, deadline_s=1e-9)
    server.drain()
    ledger = server.lifecycle.admission_ledger()
    assert ledger["leaked"] == 0
    assert ledger["running"] == 0 and ledger["queued"] == 0

"""Master recovery (paper footnote 4): journal + replay.

The original master journals every catalog-mutating operation to the
reliable store; a brand-new master (fresh engine, fresh workers, fresh
catalog) replays the journal and serves identical query results.
"""

import pytest

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.sql.journal import JOURNAL_PATH, MasterJournal
from repro.storage import DistributedFileStore


def _build_warehouse(shark: SharkContext) -> None:
    shark.sql(
        "CREATE TABLE sales (region STRING, amount DOUBLE) "
        "TBLPROPERTIES ('shark.cache'='true')"
    )
    shark.sql(
        "INSERT INTO sales VALUES ('n', 10.5), ('s', 20.0), ('n', 1.5)"
    )
    shark.load_rows("sales", [("e", 7.0), ("w", 3.0)])
    shark.sql("CREATE TABLE ext (k INT, v STRING)")
    shark.sql("INSERT INTO ext VALUES (1, 'a'), (2, 'b')")
    shark.sql(
        "CREATE TABLE derived TBLPROPERTIES ('shark.cache'='true') AS "
        "SELECT region, SUM(amount) AS total FROM sales GROUP BY region"
    )
    shark.sql("CREATE TABLE scratch (x INT)")
    shark.sql("DROP TABLE scratch")


CHECK_QUERIES = [
    "SELECT region, SUM(amount) FROM sales GROUP BY region",
    "SELECT COUNT(*) FROM ext",
    "SELECT region, total FROM derived",
    "SELECT s.region, e.v FROM sales s JOIN ext e ON 1 = e.k",
]


class TestJournal:
    def test_operations_journaled(self):
        store = DistributedFileStore()
        shark = SharkContext(
            num_workers=2, store=store, enable_master_recovery=True
        )
        _build_warehouse(shark)
        journal = MasterJournal(store)
        kinds = [record["kind"] for record in journal.records()]
        assert kinds.count("statement") == 7
        assert kinds.count("load") == 1

    def test_selects_not_journaled(self):
        store = DistributedFileStore()
        shark = SharkContext(
            num_workers=2, store=store, enable_master_recovery=True
        )
        shark.sql("CREATE TABLE t (a INT)")
        before = len(MasterJournal(store))
        shark.sql("SELECT COUNT(*) FROM t")
        shark.explain("SELECT a FROM t")
        assert len(MasterJournal(store)) == before

    def test_journaling_off_by_default(self):
        store = DistributedFileStore()
        shark = SharkContext(num_workers=2, store=store)
        shark.sql("CREATE TABLE t (a INT)")
        assert not store.exists(JOURNAL_PATH)

    def test_failed_statement_not_journaled(self):
        store = DistributedFileStore()
        shark = SharkContext(
            num_workers=2, store=store, enable_master_recovery=True
        )
        with pytest.raises(Exception):
            shark.sql("CREATE TABLE bad AS SELECT missing FROM nowhere")
        assert len(MasterJournal(store)) == 0


class TestRecovery:
    def test_new_master_serves_identical_results(self):
        store = DistributedFileStore()
        original = SharkContext(
            num_workers=2, store=store, enable_master_recovery=True
        )
        _build_warehouse(original)
        expected = {
            query: sorted(original.sql(query).rows, key=repr)
            for query in CHECK_QUERIES
        }

        # The master "dies": a brand-new context replays the journal.
        recovered = SharkContext.recover(store, num_workers=3)
        for query, rows in expected.items():
            assert sorted(recovered.sql(query).rows, key=repr) == rows, query

    def test_recovered_catalog_metadata(self):
        store = DistributedFileStore()
        original = SharkContext(
            num_workers=2, store=store, enable_master_recovery=True
        )
        _build_warehouse(original)
        recovered = SharkContext.recover(store)
        assert recovered.session.catalog.table_names() == (
            original.session.catalog.table_names()
        )
        entry = recovered.table_entry("sales")
        assert entry.is_cached
        assert entry.row_count == 5
        assert not recovered.session.catalog.exists("scratch")

    def test_recovered_master_keeps_journaling(self):
        store = DistributedFileStore()
        first = SharkContext(
            num_workers=2, store=store, enable_master_recovery=True
        )
        first.sql("CREATE TABLE a (x INT)")
        second = SharkContext.recover(store)
        second.sql("CREATE TABLE b (y INT)")
        # A third master sees operations from both previous lives.
        third = SharkContext.recover(store)
        assert third.session.catalog.table_names() == ["a", "b"]

    def test_copartitioning_survives_recovery(self):
        store = DistributedFileStore()
        original = SharkContext(
            num_workers=2, store=store, enable_master_recovery=True
        )
        original.sql(
            "CREATE TABLE raw_l (k INT, v DOUBLE) "
            "TBLPROPERTIES ('shark.cache'='true')"
        )
        original.load_rows(
            "raw_l", [(i % 10, float(i)) for i in range(100)]
        )
        original.sql(
            "CREATE TABLE lm TBLPROPERTIES ('shark.cache'='true') AS "
            "SELECT * FROM raw_l DISTRIBUTE BY k"
        )
        original.sql(
            "CREATE TABLE om TBLPROPERTIES ('shark.cache'='true', "
            "'copartition'='lm') AS "
            "SELECT k, v * 10 AS w FROM raw_l DISTRIBUTE BY k"
        )
        recovered = SharkContext.recover(store)
        result = recovered.sql(
            "SELECT COUNT(*) FROM lm JOIN om ON lm.k = om.k"
        )
        decisions = [
            d.strategy for d in recovered.last_report.join_decisions
        ]
        assert decisions == ["copartitioned"]
        assert result.scalar() == 1000

    def test_dml_on_cached_table_replays(self):
        store = DistributedFileStore()
        original = SharkContext(
            num_workers=2, store=store, enable_master_recovery=True
        )
        original.sql(
            "CREATE TABLE t (a INT) TBLPROPERTIES ('shark.cache'='true')"
        )
        original.sql("INSERT INTO t VALUES (1), (2)")
        original.sql("INSERT INTO t SELECT a + 10 FROM t")
        want = sorted(original.sql("SELECT a FROM t").rows)
        recovered = SharkContext.recover(store)
        assert sorted(recovered.sql("SELECT a FROM t").rows) == want

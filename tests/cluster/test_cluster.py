"""Virtual cluster: membership, placement, blocks, failure injection."""

import pytest

from repro.cluster import FailureInjector, VirtualCluster
from repro.cluster.worker import BlockStore, approximate_size_bytes
from repro.errors import NoLiveWorkersError


class TestBlockStore:
    def test_put_get_contains(self):
        store = BlockStore()
        store.put("b1", [1, 2, 3])
        assert "b1" in store
        assert store.get("b1") == [1, 2, 3]

    def test_size_accounting(self):
        store = BlockStore()
        store.put("b1", list(range(100)))
        assert store.used_bytes > 0
        store.put("b2", "x", size_bytes=12345)
        assert store.used_bytes > 12345

    def test_remove_and_clear(self):
        store = BlockStore()
        store.put("a", 1)
        store.put("b", 2)
        store.remove("a")
        assert "a" not in store
        store.clear()
        assert len(store) == 0

    def test_remove_missing_is_noop(self):
        BlockStore().remove("ghost")


class TestApproximateSize:
    def test_respects_footprint_method(self):
        class Sized:
            def memory_footprint_bytes(self):
                return 4242

        assert approximate_size_bytes(Sized()) == 4242

    def test_list_scales_with_length(self):
        small = approximate_size_bytes(list(range(10)))
        large = approximate_size_bytes(list(range(10000)))
        assert large > small * 100

    def test_dict_counts_keys_and_values(self):
        assert approximate_size_bytes({"k": "v"}) > 0

    def test_empty_list(self):
        assert approximate_size_bytes([]) > 0


class TestMembership:
    def test_initial_workers_alive(self):
        cluster = VirtualCluster(num_workers=3)
        assert len(cluster.live_workers()) == 3

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            VirtualCluster(num_workers=0)

    def test_kill_drops_blocks(self):
        cluster = VirtualCluster(num_workers=2)
        cluster.put_block(0, "b", [1, 2, 3])
        cluster.kill_worker(0)
        assert not cluster.workers[0].alive
        assert len(cluster.workers[0].blocks) == 0

    def test_kill_idempotent(self):
        cluster = VirtualCluster(num_workers=3)
        cluster.kill_worker(1)
        cluster.kill_worker(1)
        assert len(cluster.live_workers()) == 2

    def test_kill_last_worker_raises(self):
        cluster = VirtualCluster(num_workers=1)
        with pytest.raises(NoLiveWorkersError):
            cluster.kill_worker(0)

    def test_restart_returns_empty_worker(self):
        cluster = VirtualCluster(num_workers=2)
        cluster.put_block(0, "b", 1)
        cluster.kill_worker(0)
        cluster.restart_worker(0)
        worker = cluster.worker(0)
        assert worker.alive
        assert len(worker.blocks) == 0

    def test_add_worker_extends_cluster(self):
        cluster = VirtualCluster(num_workers=2)
        worker = cluster.add_worker()
        assert worker.worker_id == 2
        assert len(cluster.live_workers()) == 3

    def test_kill_callbacks_fire(self):
        cluster = VirtualCluster(num_workers=2)
        killed = []
        cluster.on_worker_killed(killed.append)
        cluster.kill_worker(1)
        assert killed == [1]


class TestAssignment:
    def test_round_robin_over_live_workers(self):
        cluster = VirtualCluster(num_workers=3)
        assigned = [cluster.assign_worker().worker_id for __ in range(6)]
        assert sorted(set(assigned)) == [0, 1, 2]

    def test_prefers_locality(self):
        cluster = VirtualCluster(num_workers=4)
        worker = cluster.assign_worker(preferred=[2])
        assert worker.worker_id == 2

    def test_dead_preference_falls_back(self):
        cluster = VirtualCluster(num_workers=3)
        cluster.kill_worker(2)
        worker = cluster.assign_worker(preferred=[2])
        assert worker.worker_id != 2

    def test_invalid_preference_ignored(self):
        cluster = VirtualCluster(num_workers=2)
        worker = cluster.assign_worker(preferred=[99, -1])
        assert worker.worker_id in (0, 1)


class TestFailureInjection:
    def test_fires_after_threshold(self):
        cluster = VirtualCluster(num_workers=3)
        cluster.inject_failure(worker_id=1, after_tasks=2)
        worker = cluster.worker(0)
        cluster.task_completed(worker)
        assert cluster.worker(1).alive
        cluster.task_completed(worker)
        assert not cluster.worker(1).alive

    def test_fires_once(self):
        cluster = VirtualCluster(num_workers=3)
        injector = cluster.inject_failure(worker_id=1, after_tasks=1)
        cluster.task_completed(cluster.worker(0))
        assert injector.fired
        cluster.restart_worker(1)
        cluster.task_completed(cluster.worker(0))
        assert cluster.worker(1).alive

    def test_should_fire_logic(self):
        injector = FailureInjector(worker_id=0, after_tasks=5)
        assert not injector.should_fire(4)
        assert injector.should_fire(5)
        injector.fired = True
        assert not injector.should_fire(100)


class TestBlockLookup:
    def test_find_block_on_live_worker(self):
        cluster = VirtualCluster(num_workers=2)
        cluster.put_block(1, "blk", "payload")
        worker_id, value = cluster.find_block("blk")
        assert worker_id == 1
        assert value == "payload"

    def test_find_block_skips_dead(self):
        cluster = VirtualCluster(num_workers=2)
        cluster.put_block(1, "blk", "payload")
        cluster.kill_worker(1)
        assert cluster.find_block("blk") is None

    def test_total_cached_bytes(self):
        cluster = VirtualCluster(num_workers=2)
        cluster.put_block(0, "a", [1] * 100)
        cluster.put_block(1, "b", [2] * 100)
        assert cluster.total_cached_bytes > 0

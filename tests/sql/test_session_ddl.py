"""Session DDL/DML: CREATE [AS SELECT], INSERT, DROP, CACHE, EXPLAIN."""

import pytest

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.errors import AnalysisError, CatalogError


@pytest.fixture
def shark():
    shark = SharkContext(num_workers=2)
    shark.sql("CREATE TABLE src (k INT, name STRING, v DOUBLE)")
    shark.sql(
        "INSERT INTO src VALUES (1, 'a', 1.5), (2, 'b', 2.5), (3, 'a', 3.5)"
    )
    return shark


class TestCreate:
    def test_create_and_describe_entry(self, shark):
        entry = shark.table_entry("src")
        assert entry.schema.names == ["k", "name", "v"]
        assert not entry.is_cached
        assert entry.row_count == 3

    def test_duplicate_create_rejected(self, shark):
        with pytest.raises(CatalogError):
            shark.sql("CREATE TABLE src (x INT)")

    def test_if_not_exists_skips(self, shark):
        result = shark.sql("CREATE TABLE IF NOT EXISTS src (x INT)")
        assert "exists" in result.rows[0][0]

    def test_create_without_columns_rejected(self, shark):
        with pytest.raises(AnalysisError):
            shark.sql("CREATE TABLE empty_table")

    def test_cached_create_via_property(self, shark):
        shark.sql(
            "CREATE TABLE mem (a INT) TBLPROPERTIES ('shark.cache'='true')"
        )
        assert shark.table_entry("mem").is_cached

    def test_empty_cached_table_queryable(self, shark):
        shark.sql(
            "CREATE TABLE mem (a INT) TBLPROPERTIES ('shark.cache'='true')"
        )
        assert shark.sql("SELECT COUNT(*) FROM mem").scalar() == 0


class TestCtas:
    def test_ctas_external(self, shark):
        shark.sql("CREATE TABLE derived AS SELECT k, v * 2 AS v2 FROM src")
        result = shark.sql("SELECT k, v2 FROM derived")
        assert sorted(result.rows) == [(1, 3.0), (2, 5.0), (3, 7.0)]
        assert not shark.table_entry("derived").is_cached

    def test_ctas_cached(self, shark):
        shark.sql(
            "CREATE TABLE hot TBLPROPERTIES ('shark.cache'='true') AS "
            "SELECT name, COUNT(*) AS c FROM src GROUP BY name"
        )
        entry = shark.table_entry("hot")
        assert entry.is_cached
        assert entry.partition_stats
        assert sorted(shark.sql("SELECT * FROM hot").rows) == [
            ("a", 2), ("b", 1),
        ]

    def test_ctas_distribute_by_records_partitioner(self, shark):
        shark.sql(
            "CREATE TABLE dist TBLPROPERTIES ('shark.cache'='true') AS "
            "SELECT * FROM src DISTRIBUTE BY k"
        )
        entry = shark.table_entry("dist")
        assert entry.partitioner is not None
        assert entry.distribute_column == "k"

    def test_ctas_size_accounting(self, shark):
        shark.sql(
            "CREATE TABLE hot2 TBLPROPERTIES ('shark.cache'='true') AS "
            "SELECT * FROM src"
        )
        entry = shark.table_entry("hot2")
        assert entry.size_bytes > 0
        assert entry.partition_bytes


class TestInsert:
    def test_insert_select(self, shark):
        shark.sql("CREATE TABLE sink (k INT, name STRING, v DOUBLE)")
        shark.sql("INSERT INTO sink SELECT * FROM src WHERE k > 1")
        assert shark.sql("SELECT COUNT(*) FROM sink").scalar() == 2

    def test_insert_values_width_check(self, shark):
        with pytest.raises(AnalysisError, match="width"):
            shark.sql("INSERT INTO src VALUES (1, 'x')")

    def test_insert_select_width_check(self, shark):
        with pytest.raises(AnalysisError, match="width"):
            shark.sql("INSERT INTO src SELECT k FROM src")

    def test_insert_appends_to_cached(self, shark):
        shark.sql(
            "CREATE TABLE mem TBLPROPERTIES ('shark.cache'='true') AS "
            "SELECT * FROM src"
        )
        shark.sql("INSERT INTO mem VALUES (9, 'z', 9.9)")
        assert shark.sql("SELECT COUNT(*) FROM mem").scalar() == 4
        assert shark.table_entry("mem").row_count == 4

    def test_insert_into_missing_table(self, shark):
        with pytest.raises(CatalogError):
            shark.sql("INSERT INTO ghost VALUES (1)")


class TestDrop:
    def test_drop_removes(self, shark):
        shark.sql("DROP TABLE src")
        with pytest.raises(CatalogError):
            shark.sql("SELECT * FROM src")

    def test_drop_missing_without_if_exists(self, shark):
        with pytest.raises(CatalogError):
            shark.sql("DROP TABLE ghost")

    def test_drop_if_exists(self, shark):
        shark.sql("DROP TABLE IF EXISTS ghost")

    def test_drop_cached_unpersists(self, shark):
        shark.sql(
            "CREATE TABLE mem TBLPROPERTIES ('shark.cache'='true') AS "
            "SELECT * FROM src"
        )
        rdd = shark.table_entry("mem").cached_rdd
        shark.sql("DROP TABLE mem")
        assert not rdd.is_cached


class TestCacheStatements:
    def test_cache_table_flips_kind(self, shark):
        shark.sql("CACHE TABLE src")
        entry = shark.table_entry("src")
        assert entry.is_cached
        assert shark.sql("SELECT COUNT(*) FROM src").scalar() == 3

    def test_uncache_table_spills_to_store(self, shark):
        shark.sql("CACHE TABLE src")
        shark.sql("UNCACHE TABLE src")
        entry = shark.table_entry("src")
        assert not entry.is_cached
        assert shark.sql("SELECT COUNT(*) FROM src").scalar() == 3

    def test_cache_idempotent(self, shark):
        shark.sql("CACHE TABLE src")
        result = shark.sql("CACHE TABLE src")
        assert "already" in result.rows[0][0]


class TestExplain:
    def test_explain_shows_plan_tree(self, shark):
        text = shark.explain(
            "SELECT name, COUNT(*) FROM src WHERE k > 1 GROUP BY name"
        )
        assert "Aggregate" in text
        assert "Scan(src" in text
        assert "Filter" in text

    def test_explain_join_shows_keys(self, shark):
        text = shark.explain(
            "SELECT a.k FROM src a JOIN src b ON a.k = b.k"
        )
        assert "Join(inner" in text

    def test_explain_ctas(self, shark):
        result = shark.sql("EXPLAIN CREATE TABLE x AS SELECT k FROM src")
        assert result.plan_text


class TestQueryResultApi:
    def test_column_accessors(self, shark):
        result = shark.sql("SELECT k, name FROM src ORDER BY k")
        assert result.column("k") == [1, 2, 3]
        assert result.column_names == ["k", "name"]
        assert result.to_dicts()[0] == {"k": 1, "name": "a"}
        assert len(result) == 3
        assert list(iter(result))[0] == (1, "a")

    def test_scalar_validation(self, shark):
        with pytest.raises(ValueError):
            shark.sql("SELECT k FROM src").scalar()

"""End-to-end SQL correctness against a pure-Python reference.

The fixture loads one cached and one external table with seeded data; each
test runs a query through the full pipeline (parse -> analyze -> optimize
-> plan -> execute on the virtual cluster) and checks the rows against an
independently computed answer.
"""

import random
from collections import defaultdict

import pytest

from repro import SharkContext
from repro.datatypes import BOOLEAN, DOUBLE, INT, STRING, Schema

SALES_SCHEMA = Schema.of(
    ("sale_id", INT),
    ("region", STRING),
    ("product", STRING),
    ("amount", DOUBLE),
    ("quantity", INT),
)

PRODUCTS_SCHEMA = Schema.of(
    ("product", STRING),
    ("category", STRING),
    ("price", DOUBLE),
)

REGIONS = ["north", "south", "east", "west"]
PRODUCTS = [f"p{i}" for i in range(12)]
CATEGORIES = ["toys", "tools", "food"]


def _sales_rows(n=600, seed=5):
    rng = random.Random(seed)
    return [
        (
            i,
            rng.choice(REGIONS),
            rng.choice(PRODUCTS),
            round(rng.uniform(1.0, 500.0), 2),
            rng.randint(1, 9),
        )
        for i in range(n)
    ]


def _product_rows(seed=6):
    rng = random.Random(seed)
    return [
        (p, rng.choice(CATEGORIES), round(rng.uniform(1.0, 50.0), 2))
        for p in PRODUCTS[:10]  # two products have no catalog entry
    ]


@pytest.fixture(scope="module")
def loaded():
    shark = SharkContext(num_workers=4, cores_per_worker=2)
    shark.create_table("sales", SALES_SCHEMA, cached=True)
    shark.load_rows("sales", _sales_rows())
    shark.create_table("products", PRODUCTS_SCHEMA, cached=False)
    shark.load_rows("products", _product_rows())
    return shark, _sales_rows(), _product_rows()


def assert_rows_equal(got, want, approx_columns=()):
    got, want = sorted(got), sorted(want)
    assert len(got) == len(want), f"{len(got)} rows != {len(want)}"
    for got_row, want_row in zip(got, want):
        for index, (g, w) in enumerate(zip(got_row, want_row)):
            if index in approx_columns or isinstance(w, float):
                assert g == pytest.approx(w, rel=1e-9), (got_row, want_row)
            else:
                assert g == w, (got_row, want_row)


class TestSelectionAndProjection:
    def test_filter_and_project(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT sale_id, amount FROM sales WHERE amount > 400"
        )
        want = [(s[0], s[3]) for s in sales if s[3] > 400]
        assert_rows_equal(result.rows, want)

    def test_expression_projection(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT sale_id, amount * quantity AS total FROM sales "
            "WHERE region = 'north'"
        )
        want = [(s[0], s[3] * s[4]) for s in sales if s[1] == "north"]
        assert_rows_equal(result.rows, want)

    def test_compound_predicates(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT sale_id FROM sales "
            "WHERE (region = 'east' OR region = 'west') "
            "AND quantity BETWEEN 3 AND 5 AND NOT amount < 50"
        )
        want = [
            (s[0],)
            for s in sales
            if s[1] in ("east", "west") and 3 <= s[4] <= 5 and s[3] >= 50
        ]
        assert_rows_equal(result.rows, want)

    def test_in_and_like(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT sale_id FROM sales "
            "WHERE product IN ('p1', 'p2') AND region LIKE '%th'"
        )
        want = [
            (s[0],)
            for s in sales
            if s[2] in ("p1", "p2") and s[1].endswith("th")
        ]
        assert_rows_equal(result.rows, want)

    def test_case_expression(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT sale_id, CASE WHEN amount > 250 THEN 'high' "
            "ELSE 'low' END FROM sales"
        )
        want = [(s[0], "high" if s[3] > 250 else "low") for s in sales]
        assert_rows_equal(result.rows, want)

    def test_select_star(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql("SELECT * FROM sales")
        assert_rows_equal(result.rows, sales)
        assert result.column_names == [
            "sale_id", "region", "product", "amount", "quantity",
        ]

    def test_scalar_functions(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT UPPER(region), SUBSTR(product, 1, 1) FROM sales "
            "WHERE sale_id = 0"
        )
        want = [(sales[0][1].upper(), sales[0][2][:1])]
        assert_rows_equal(result.rows, want)


class TestAggregation:
    def test_global_aggregates(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT COUNT(*), SUM(amount), AVG(quantity), "
            "MIN(amount), MAX(amount) FROM sales"
        )
        amounts = [s[3] for s in sales]
        want = [(
            len(sales),
            sum(amounts),
            sum(s[4] for s in sales) / len(sales),
            min(amounts),
            max(amounts),
        )]
        assert_rows_equal(result.rows, want)

    def test_group_by_with_reference(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region"
        )
        ref = defaultdict(lambda: [0, 0.0])
        for s in sales:
            ref[s[1]][0] += 1
            ref[s[1]][1] += s[3]
        want = [(k, v[0], v[1]) for k, v in ref.items()]
        assert_rows_equal(result.rows, want)

    def test_group_by_expression(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT quantity % 3, COUNT(*) FROM sales GROUP BY quantity % 3"
        )
        ref = defaultdict(int)
        for s in sales:
            ref[s[4] % 3] += 1
        assert_rows_equal(result.rows, list(ref.items()))

    def test_having(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT product, COUNT(*) c FROM sales GROUP BY product "
            "HAVING COUNT(*) > 50"
        )
        ref = defaultdict(int)
        for s in sales:
            ref[s[2]] += 1
        want = [(k, v) for k, v in ref.items() if v > 50]
        assert_rows_equal(result.rows, want)

    def test_count_distinct(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT region, COUNT(DISTINCT product) FROM sales "
            "GROUP BY region"
        )
        ref = defaultdict(set)
        for s in sales:
            ref[s[1]].add(s[2])
        want = [(k, len(v)) for k, v in ref.items()]
        assert_rows_equal(result.rows, want)

    def test_expression_over_aggregates(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT region, SUM(amount) / COUNT(*) FROM sales GROUP BY region"
        )
        ref = defaultdict(lambda: [0.0, 0])
        for s in sales:
            ref[s[1]][0] += s[3]
            ref[s[1]][1] += 1
        want = [(k, v[0] / v[1]) for k, v in ref.items()]
        assert_rows_equal(result.rows, want)

    def test_aggregate_with_where(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT COUNT(*) FROM sales WHERE region = 'south'"
        )
        assert result.scalar() == sum(1 for s in sales if s[1] == "south")

    def test_stddev(self, loaded):
        import numpy as np

        shark, sales, __ = loaded
        result = shark.sql("SELECT STDDEV(amount) FROM sales")
        assert result.scalar() == pytest.approx(
            float(np.std([s[3] for s in sales]))
        )


class TestOrderingAndLimits:
    def test_order_by_desc_limit(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT sale_id, amount FROM sales ORDER BY amount DESC LIMIT 10"
        )
        want = sorted(
            ((s[0], s[3]) for s in sales), key=lambda r: -r[1]
        )[:10]
        assert result.rows == want

    def test_order_by_alias(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT region, COUNT(*) AS c FROM sales GROUP BY region "
            "ORDER BY c"
        )
        counts = [row[1] for row in result.rows]
        assert counts == sorted(counts)

    def test_order_by_position(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT region, SUM(amount) FROM sales GROUP BY region "
            "ORDER BY 2 DESC"
        )
        sums = [row[1] for row in result.rows]
        assert sums == sorted(sums, reverse=True)

    def test_order_by_hidden_expression(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT sale_id FROM sales ORDER BY amount * quantity LIMIT 5"
        )
        want = [
            (s[0],)
            for s in sorted(sales, key=lambda s: s[3] * s[4])[:5]
        ]
        assert result.rows == want

    def test_limit_without_order(self, loaded):
        shark, __, ___ = loaded
        result = shark.sql("SELECT sale_id FROM sales LIMIT 7")
        assert len(result.rows) == 7

    def test_multi_key_mixed_order(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT region, quantity FROM sales "
            "ORDER BY region ASC, quantity DESC LIMIT 20"
        )
        want = sorted(
            ((s[1], s[4]) for s in sales),
            key=lambda r: (r[0], -r[1]),
        )[:20]
        assert result.rows == want


class TestDistinctAndUnion:
    def test_distinct(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql("SELECT DISTINCT region FROM sales")
        assert sorted(r[0] for r in result.rows) == sorted(set(REGIONS))

    def test_union_all(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT sale_id FROM sales WHERE region = 'north' "
            "UNION ALL SELECT sale_id FROM sales WHERE region = 'south'"
        )
        want = [(s[0],) for s in sales if s[1] in ("north", "south")]
        assert_rows_equal(result.rows, want)


class TestSubqueries:
    def test_from_subquery(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT region, total FROM "
            "(SELECT region, SUM(amount) total FROM sales GROUP BY region) t "
            "WHERE total > 0"
        )
        ref = defaultdict(float)
        for s in sales:
            ref[s[1]] += s[3]
        assert_rows_equal(result.rows, list(ref.items()))

    def test_nested_subqueries(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT COUNT(*) FROM "
            "(SELECT region FROM (SELECT region, amount FROM sales) a "
            " WHERE amount > 100) b"
        )
        assert result.scalar() == sum(1 for s in sales if s[3] > 100)


class TestJoinsEndToEnd:
    def _reference_join(self, sales, products):
        catalog = {p[0]: p for p in products}
        out = []
        for s in sales:
            if s[2] in catalog:
                out.append((s[0], s[2], catalog[s[2]][1]))
        return out

    def test_inner_join(self, loaded):
        shark, sales, products = loaded
        result = shark.sql(
            "SELECT sale_id, s.product, category FROM sales s "
            "JOIN products p ON s.product = p.product"
        )
        assert_rows_equal(
            result.rows, self._reference_join(sales, products)
        )

    def test_left_join_preserves_unmatched(self, loaded):
        shark, sales, products = loaded
        result = shark.sql(
            "SELECT sale_id, category FROM sales s "
            "LEFT JOIN products p ON s.product = p.product"
        )
        catalog = {p[0]: p[1] for p in products}
        want = [(s[0], catalog.get(s[2])) for s in sales]
        assert_rows_equal(result.rows, want)

    def test_join_with_aggregation(self, loaded):
        shark, sales, products = loaded
        result = shark.sql(
            "SELECT category, SUM(amount) FROM sales s "
            "JOIN products p ON s.product = p.product GROUP BY category"
        )
        catalog = {p[0]: p[1] for p in products}
        ref = defaultdict(float)
        for s in sales:
            if s[2] in catalog:
                ref[catalog[s[2]]] += s[3]
        assert_rows_equal(result.rows, list(ref.items()))

    def test_join_residual_condition(self, loaded):
        shark, sales, products = loaded
        result = shark.sql(
            "SELECT sale_id FROM sales s JOIN products p "
            "ON s.product = p.product AND s.amount > p.price * 10"
        )
        catalog = {p[0]: p for p in products}
        want = [
            (s[0],)
            for s in sales
            if s[2] in catalog and s[3] > catalog[s[2]][2] * 10
        ]
        assert_rows_equal(result.rows, want)

    def test_self_join(self, loaded):
        shark, sales, __ = loaded
        result = shark.sql(
            "SELECT COUNT(*) FROM "
            "(SELECT sale_id FROM sales WHERE sale_id < 20) a "
            "JOIN (SELECT sale_id FROM sales WHERE sale_id < 30) b "
            "ON a.sale_id = b.sale_id"
        )
        assert result.scalar() == 20


class TestNullHandling:
    def test_null_filtering_and_aggregation(self):
        shark = SharkContext(num_workers=2)
        schema = Schema.of(("k", STRING), ("v", INT))
        shark.create_table("t", schema, cached=True)
        shark.load_rows("t", [("a", 1), ("a", None), ("b", None), (None, 5)])
        assert shark.sql("SELECT COUNT(*) FROM t").scalar() == 4
        assert shark.sql("SELECT COUNT(v) FROM t").scalar() == 2
        result = shark.sql("SELECT k FROM t WHERE v > 0")
        assert set(result.rows) == {(None,), ("a",)}
        result = shark.sql("SELECT COUNT(*) FROM t WHERE k IS NULL")
        assert result.scalar() == 1

    def test_nulls_in_group_keys(self):
        shark = SharkContext(num_workers=2)
        schema = Schema.of(("k", STRING), ("v", INT))
        shark.create_table("t", schema, cached=True)
        shark.load_rows("t", [(None, 1), (None, 2), ("a", 3)])
        result = dict(
            shark.sql("SELECT k, SUM(v) FROM t GROUP BY k").rows
        )
        assert result == {None: 3, "a": 3}


class TestUdfs:
    def test_scalar_udf_in_projection_and_filter(self, loaded):
        shark, sales, __ = loaded
        shark.register_udf("tagit", lambda r: f"<{r}>", return_type=STRING)
        shark.register_udf(
            "pricey", lambda a: a > 300, return_type=BOOLEAN
        )
        result = shark.sql(
            "SELECT tagit(region) FROM sales WHERE pricey(amount)"
        )
        want = [(f"<{s[1]}>",) for s in sales if s[3] > 300]
        assert_rows_equal(result.rows, want)

"""Partial DAG Execution: bin packing, reducer choice, aggregation path."""

import pytest

from repro import SharkContext
from repro.datatypes import INT, STRING, Schema
from repro.pde import (
    choose_num_reducers,
    decide_join_strategy,
    pack_partitions,
)
from repro.pde.binpack import imbalance
from repro.sql.planner import PlannerConfig


class TestBinPacking:
    def test_balances_uniform_sizes(self):
        sizes = [10] * 12
        groups = pack_partitions(sizes, 4)
        assert len(groups) == 4
        assert imbalance(sizes, groups) == 1.0

    def test_balances_skewed_sizes(self):
        sizes = [100, 1, 1, 1, 1, 1, 50, 50]
        groups = pack_partitions(sizes, 3)
        assert imbalance(sizes, groups) < 1.6

    def test_every_partition_assigned_once(self):
        sizes = [5, 3, 8, 1, 9, 2]
        groups = pack_partitions(sizes, 2)
        flat = sorted(i for group in groups for i in group)
        assert flat == list(range(6))

    def test_more_bins_than_partitions(self):
        groups = pack_partitions([5, 5], 10)
        assert len(groups) == 2

    def test_deterministic(self):
        sizes = [7, 2, 9, 4, 4, 4]
        assert pack_partitions(sizes, 3) == pack_partitions(sizes, 3)

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            pack_partitions([1], 0)

    def test_empty_sizes(self):
        assert pack_partitions([], 3) == [[]]


class TestReducerChoice:
    def test_scales_with_volume(self):
        small = choose_num_reducers(10_000, target_partition_bytes=100_000)
        large = choose_num_reducers(10_000_000, target_partition_bytes=100_000)
        assert small == 1
        assert large == 100

    def test_clamped_to_bounds(self):
        assert choose_num_reducers(10**15, max_reducers=64) == 64
        assert choose_num_reducers(0, min_reducers=2) == 2


class TestJoinDecision:
    def test_prefers_smaller_broadcastable_side(self):
        decision = decide_join_strategy(1000, 500, broadcast_threshold=2000)
        assert decision.strategy == "broadcast_right"

    def test_threshold_respected(self):
        decision = decide_join_strategy(10**9, 10**9, broadcast_threshold=100)
        assert decision.strategy == "shuffle"

    def test_unknown_side_ignored(self):
        decision = decide_join_strategy(None, 10, broadcast_threshold=100)
        assert decision.strategy == "broadcast_right"

    def test_broadcastability_constraints(self):
        decision = decide_join_strategy(
            10, 10, broadcast_threshold=100,
            left_broadcastable=False, right_broadcastable=False,
        )
        assert decision.strategy == "shuffle"

    def test_reason_mentions_bytes(self):
        decision = decide_join_strategy(10, None, broadcast_threshold=100)
        assert "10" in decision.reason


class TestPdeAggregation:
    def _shark(self, **config_kwargs):
        config = PlannerConfig(**config_kwargs)
        shark = SharkContext(num_workers=4, config=config)
        shark.create_table(
            "events", Schema.of(("user", STRING), ("n", INT)), cached=True
        )
        # Heavy skew: one hot key plus a long tail.
        rows = [("hot", 1)] * 3000 + [
            (f"user{i}", 1) for i in range(500)
        ]
        shark.load_rows("events", rows)
        return shark

    def _reference(self):
        ref = {f"user{i}": 1 for i in range(500)}
        ref["hot"] = 3000
        return ref

    def test_pde_aggregation_correct(self):
        shark = self._shark(enable_pde=True)
        result = shark.sql(
            "SELECT user, SUM(n) FROM events GROUP BY user"
        )
        assert dict(result.rows) == self._reference()

    def test_pde_coalesces_fine_buckets(self):
        shark = self._shark(enable_pde=True)
        result = shark.sql(
            "SELECT user, SUM(n) FROM events GROUP BY user"
        )
        notes = " ".join(result.report.notes)
        assert "PDE" in notes

    def test_binpack_vs_round_robin_same_rows(self):
        packed = self._shark(enable_pde=True, pde_skew_binpack=True)
        round_robin = self._shark(enable_pde=True, pde_skew_binpack=False)
        query = "SELECT user, COUNT(*) FROM events GROUP BY user"
        assert sorted(packed.sql(query).rows) == sorted(
            round_robin.sql(query).rows
        )

    def test_fixed_reducers_override(self):
        shark = self._shark(num_reducers=2)
        result = shark.sql(
            "SELECT user, SUM(n) FROM events GROUP BY user"
        )
        assert dict(result.rows) == self._reference()

    def test_pde_off_still_correct(self):
        shark = self._shark(enable_pde=False)
        result = shark.sql(
            "SELECT user, SUM(n) FROM events GROUP BY user"
        )
        assert dict(result.rows) == self._reference()

"""Multi-table analytical queries (TPC-H-style star joins)."""

from collections import defaultdict

import pytest

from repro import SharkContext
from repro.workloads import tpch


@pytest.fixture(scope="module")
def warehouse():
    shark = SharkContext(num_workers=4)
    lineitem = tpch.generate_lineitem(3000)
    orders = tpch.generate_orders(750)
    customer = tpch.generate_customer(100)
    supplier = tpch.generate_supplier(5)
    for name, dataset in [
        ("lineitem", lineitem), ("orders", orders),
        ("customer", customer), ("supplier", supplier),
    ]:
        shark.create_table(name, dataset.schema, cached=True)
        shark.load_rows(name, dataset.rows)
    return shark, lineitem, orders, customer, supplier


class TestTwoWayJoins:
    def test_lineitem_orders(self, warehouse):
        shark, lineitem, orders, __, ___ = warehouse
        result = shark.sql(
            "SELECT o.O_ORDERPRIORITY, COUNT(*) FROM lineitem l "
            "JOIN orders o ON l.L_ORDERKEY = o.O_ORDERKEY "
            "GROUP BY o.O_ORDERPRIORITY"
        )
        order_priority = {r[0]: r[5] for r in orders.rows}
        ref = defaultdict(int)
        for row in lineitem.rows:
            if row[0] in order_priority:
                ref[order_priority[row[0]]] += 1
        assert dict(result.rows) == dict(ref)

    def test_join_with_order_filter(self, warehouse):
        shark, lineitem, orders, __, ___ = warehouse
        result = shark.sql(
            "SELECT COUNT(*) FROM lineitem l "
            "JOIN orders o ON l.L_ORDERKEY = o.O_ORDERKEY "
            "WHERE o.O_TOTALPRICE > 250000"
        )
        pricey = {r[0] for r in orders.rows if r[3] > 250000}
        want = sum(1 for row in lineitem.rows if row[0] in pricey)
        assert result.scalar() == want


class TestThreeWayJoins:
    def test_lineitem_orders_customer(self, warehouse):
        shark, lineitem, orders, customer, __ = warehouse
        result = shark.sql(
            "SELECT c.C_MKTSEGMENT, SUM(l.L_EXTENDEDPRICE) "
            "FROM lineitem l "
            "JOIN orders o ON l.L_ORDERKEY = o.O_ORDERKEY "
            "JOIN customer c ON o.O_CUSTKEY = c.C_CUSTKEY "
            "GROUP BY c.C_MKTSEGMENT"
        )
        order_to_cust = {r[0]: r[1] for r in orders.rows}
        cust_to_seg = {r[0]: r[4] for r in customer.rows}
        ref = defaultdict(float)
        for row in lineitem.rows:
            cust = order_to_cust.get(row[0])
            segment = cust_to_seg.get(cust)
            if segment is not None:
                ref[segment] += row[5]
        got = {k: round(v, 4) for k, v in result.rows}
        want = {k: round(v, 4) for k, v in ref.items()}
        assert got == want

    def test_three_way_with_per_table_filters(self, warehouse):
        shark, lineitem, orders, customer, __ = warehouse
        result = shark.sql(
            "SELECT COUNT(*) FROM lineitem l "
            "JOIN orders o ON l.L_ORDERKEY = o.O_ORDERKEY "
            "JOIN customer c ON o.O_CUSTKEY = c.C_CUSTKEY "
            "WHERE l.L_QUANTITY > 25 AND o.O_ORDERSTATUS = 'O' "
            "AND c.C_ACCTBAL > 0"
        )
        open_orders = {
            r[0]: r[1] for r in orders.rows if r[2] == "O"
        }
        rich = {r[0] for r in customer.rows if r[3] > 0}
        want = sum(
            1
            for row in lineitem.rows
            if row[4] > 25 and open_orders.get(row[0]) in rich
        )
        assert result.scalar() == want

    def test_mixed_strategies_reported(self, warehouse):
        shark, __, ___, ____, _____ = warehouse
        result = shark.sql(
            "SELECT COUNT(*) FROM lineitem l "
            "JOIN orders o ON l.L_ORDERKEY = o.O_ORDERKEY "
            "JOIN supplier s ON l.L_SUPPKEY = s.S_SUPPKEY"
        )
        # Two join decisions, one per join node.
        assert len(result.report.join_decisions) == 2
        assert result.scalar() > 0


class TestJoinsMatchHiveBaseline:
    def test_three_way_differential(self, warehouse):
        from repro.baselines import HiveExecutor

        shark, __, ___, ____, _____ = warehouse

        def table_rows(entry):
            rdd = shark.session._scan_rdd(entry)
            return shark.engine.run_job(rdd, list)

        hive = HiveExecutor(
            shark.session.catalog, shark.store, shark.session.registry,
            table_rows=table_rows,
        )
        query = (
            "SELECT c.C_MKTSEGMENT, COUNT(*) FROM lineitem l "
            "JOIN orders o ON l.L_ORDERKEY = o.O_ORDERKEY "
            "JOIN customer c ON o.O_CUSTKEY = c.C_CUSTKEY "
            "GROUP BY c.C_MKTSEGMENT"
        )
        assert sorted(shark.sql(query).rows) == sorted(
            hive.execute(query).rows
        )
        # Hive runs it as a chain of 3 jobs (join, join, aggregate) with
        # intermediate HDFS materialization.
        run = hive.execute(query)
        assert run.num_jobs == 3
        assert run.materialized_bytes > 0

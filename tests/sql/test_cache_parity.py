"""Cache-on/cache-off parity: caching must be an invisible accelerator.

Every TPC-H and Pavlo workload query runs against a cache-off warehouse
and a cache-on one — cold (first execution populates) then warm (served
from the result cache) — and all three row sets must be repr-identical
(the same float-drift standard as the vectorized parity harness).  A
chaos section repeats the comparison under the fault injector, the
shared-scan soak proves N concurrent same-table queries decode every
block exactly once, and a tiny-cap section churns the eviction path
while the memory ledger stays balanced (zero clamped releases).
"""

import pytest

from repro import SharkContext
from repro.datatypes import BOOLEAN, DOUBLE, INT, STRING, Schema
from repro.engine.lifecycle import LifecycleConfig
from repro.engine.memory import EXECUTION
from repro.faults.injector import FaultInjector
from repro.sql.cache import SqlCacheConfig
from repro.workloads import pavlo, tpch

from tests.sql.test_vectorized_parity import (
    QUERIES,
    assert_byte_identical,
)


def _datasets():
    return {
        "lineitem": tpch.generate_lineitem(3000),
        "orders": tpch.generate_orders(800),
        "customer": tpch.generate_customer(100),
        "supplier": tpch.generate_supplier(60),
        "rankings": pavlo.generate_rankings(600),
        "uservisits": pavlo.generate_uservisits(
            1500, num_pages=600, num_ips=120
        ),
    }


def _build(sql_cache=False, cache_config=None, **context_kwargs):
    shark = SharkContext(num_workers=4, cores_per_worker=2, **context_kwargs)
    for name, data in _datasets().items():
        shark.create_table(name, data.schema, cached=True)
        shark.load_rows(name, data.rows, num_partitions=4)
    shark.register_udf(
        "SOME_UDF", lambda addr: addr.endswith("7"), return_type=BOOLEAN
    )
    if sql_cache:
        shark.enable_sql_cache(cache_config)
    return shark


@pytest.fixture(scope="module")
def uncached():
    return _build()


@pytest.fixture(scope="module")
def uncached_rows(uncached):
    return {name: uncached.sql(QUERIES[name]).rows for name in QUERIES}


@pytest.fixture(scope="module")
def cached():
    return _build(sql_cache=True)


class TestColdWarmParity:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_cold_then_warm_identical(self, cached, uncached_rows, name):
        cold = cached.sql(QUERIES[name])
        assert not cold.cache_hit
        assert_byte_identical(cold.rows, uncached_rows[name])
        warm = cached.sql(QUERIES[name])
        assert warm.cache_hit
        assert_byte_identical(warm.rows, uncached_rows[name])

    def test_warm_pass_ran_zero_jobs(self, cached):
        # Result-cache hits cost no engine work on the simulated clock.
        before = cached.metrics.value("jobs.submitted")
        result = cached.sql(QUERIES["tpch_q1"])
        assert result.cache_hit
        assert cached.metrics.value("jobs.submitted") == before


class TestChaosParity:
    CHAOS = ("tpch_q1", "tpch_q6", "pavlo_agg_substr")

    def test_chaos_cold_and_warm_identical(self, uncached_rows):
        injector = FaultInjector(
            seed=13,
            transient_failure_rate=0.25,
            stragglers_per_stage=1,
        )
        shark = _build(sql_cache=True, fault_injector=injector)
        for name in self.CHAOS:
            cold = shark.sql(QUERIES[name])
            assert_byte_identical(cold.rows, uncached_rows[name])
            warm = shark.sql(QUERIES[name])
            assert warm.cache_hit
            assert_byte_identical(warm.rows, uncached_rows[name])
        assert shark.engine.memory.clamped_release_bytes == 0


class TestSharedScans:
    """N concurrent same-table queries decode every block exactly once:
    the first toucher pays the decode, late arrivals attach."""

    QUERY = (
        "SELECT bucket, COUNT(*) AS n, SUM(value) AS total "
        "FROM readings GROUP BY bucket"
    )

    def _scan_ctx(self):
        shark = SharkContext(num_workers=4, cores_per_worker=2)
        shark.create_table(
            "readings",
            Schema.of(
                ("bucket", STRING), ("day", INT), ("value", DOUBLE)
            ),
            cached=True,
        )
        shark.load_rows(
            "readings",
            [(f"b{i % 6}", i % 15, float(i % 100)) for i in range(4000)],
            num_partitions=8,
        )
        return shark

    def test_concurrent_queries_decode_each_block_once(self):
        # Reference: how many blocks does one solo run decode?
        # (Result cache off so every execution actually scans.)
        solo = self._scan_ctx()
        solo.enable_sql_cache(SqlCacheConfig(enable_result=False))
        before = solo.metrics.value("batch.batches")
        expected = solo.sql(self.QUERY).rows
        solo_blocks = solo.metrics.value("batch.batches") - before
        assert solo_blocks > 0

        shark = self._scan_ctx()
        cache = shark.enable_sql_cache(
            SqlCacheConfig(enable_result=False)
        )
        shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=3, max_queued=4)
        )
        before = shark.metrics.value("batch.batches")
        handles = [
            shark.submit_sql(self.QUERY, name=f"reader-{i}")
            for i in range(3)
        ]
        shark.lifecycle.drain()
        decoded = shark.metrics.value("batch.batches") - before
        # Three concurrent scans, one decode per block — not 3x.
        assert decoded == solo_blocks
        assert cache.fragment_hits > 0
        assert cache.shared_attached > 0
        assert shark.metrics.value("sqlcache.shared.attached") > 0
        for handle in handles:
            assert_byte_identical(
                handle.result_or_raise().rows, expected
            )

    def test_full_stack_concurrent_soak(self):
        # All layers on: whichever mix of result hits and shared scans
        # the interleaving produces, the rows never diverge.
        shark = self._scan_ctx()
        cache = shark.enable_sql_cache()
        shark.enable_lifecycle(
            LifecycleConfig(max_concurrent=3, max_queued=8)
        )
        expected = None
        handles = [
            shark.submit_sql(self.QUERY, name=f"mixed-{i}")
            for i in range(6)
        ]
        shark.lifecycle.drain()
        for handle in handles:
            rows = handle.result_or_raise().rows
            if expected is None:
                expected = rows
            assert_byte_identical(rows, expected)
        assert cache.result_hits + cache.shared_attached > 0
        assert shark.engine.memory.clamped_release_bytes == 0


class TestCappedEviction:
    """Tiny caps force constant eviction churn; the ledger must stay
    balanced (reserves exactly matched by releases, zero clamps)."""

    def test_eviction_churn_balances_ledger(self, uncached_rows):
        config = SqlCacheConfig(
            max_result_entries=4,
            max_result_bytes=8 * 1024,
            max_fragment_bytes=16 * 1024,
        )
        shark = _build(sql_cache=True, cache_config=config)
        for _pass in range(2):
            for name in sorted(QUERIES):
                got = shark.sql(QUERIES[name])
                assert_byte_identical(got.rows, uncached_rows[name])
        cache = shark.sql_cache
        assert cache.evictions > 0
        assert shark.metrics.value("memory.release.clamped") == 0
        assert shark.engine.memory.clamped_release_bytes == 0
        assert shark.engine.memory.live_bytes(EXECUTION) == 0
        # Whatever survives the churn is exactly what the cache thinks
        # it holds (the sqlcache.bytes gauge mirrors bytes_cached).
        assert shark.metrics.value("sqlcache.bytes") == (
            cache.bytes_cached
        )

    def test_capped_worker_memory_parity(self, uncached_rows):
        # The PR 7 arbitration interplay: under a per-worker cap the
        # accountant may evict cached fragments (a registered spill
        # consumer) before execution state spills — invisibly.
        shark = _build(
            sql_cache=True, memory_per_worker_bytes=48 * 1024
        )
        for name in ("tpch_q1", "tpch_q3", "pavlo_agg_full"):
            cold = shark.sql(QUERIES[name])
            assert_byte_identical(cold.rows, uncached_rows[name])
            warm = shark.sql(QUERIES[name])
            assert_byte_identical(warm.rows, uncached_rows[name])
        assert shark.engine.memory.clamped_release_bytes == 0
        assert shark.engine.memory.live_bytes(EXECUTION) == 0

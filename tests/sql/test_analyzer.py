"""Analyzer: resolution, scoping, aggregate validation, error messages."""

import pytest

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.errors import AnalysisError, CatalogError


@pytest.fixture
def shark():
    shark = SharkContext(num_workers=2)
    shark.create_table(
        "t", Schema.of(("a", INT), ("b", STRING), ("c", DOUBLE)), cached=True
    )
    shark.load_rows("t", [(1, "x", 1.5), (2, "y", 2.5)])
    shark.create_table(
        "u", Schema.of(("a", INT), ("d", STRING)), cached=True
    )
    shark.load_rows("u", [(1, "q")])
    return shark


class TestResolutionErrors:
    def test_unknown_table(self, shark):
        with pytest.raises(CatalogError, match="no such table"):
            shark.sql("SELECT * FROM missing")

    def test_unknown_column_lists_available(self, shark):
        with pytest.raises(AnalysisError, match="available"):
            shark.sql("SELECT nope FROM t")

    def test_unknown_qualifier(self, shark):
        with pytest.raises(AnalysisError):
            shark.sql("SELECT z.a FROM t")

    def test_ambiguous_column_in_join(self, shark):
        with pytest.raises(AnalysisError, match="ambiguous"):
            shark.sql("SELECT a FROM t JOIN u ON t.a = u.a")

    def test_qualified_disambiguation_works(self, shark):
        result = shark.sql("SELECT t.a FROM t JOIN u ON t.a = u.a")
        assert result.rows == [(1,)]

    def test_unknown_function(self, shark):
        with pytest.raises(AnalysisError, match="unknown function"):
            shark.sql("SELECT frobnicate(a) FROM t")

    def test_wrong_arity(self, shark):
        with pytest.raises(AnalysisError, match="arguments"):
            shark.sql("SELECT SUBSTR(b) FROM t")

    def test_unknown_star_qualifier(self, shark):
        with pytest.raises(AnalysisError):
            shark.sql("SELECT z.* FROM t")


class TestAggregateValidation:
    def test_non_grouped_column_rejected(self, shark):
        with pytest.raises(AnalysisError, match="GROUP BY"):
            shark.sql("SELECT b, COUNT(*) FROM t GROUP BY a")

    def test_aggregate_in_where_rejected(self, shark):
        with pytest.raises(AnalysisError, match="WHERE"):
            shark.sql("SELECT a FROM t WHERE SUM(a) > 1")

    def test_having_without_group_needs_aggregate_select(self, shark):
        # HAVING with a global aggregate is legal.
        result = shark.sql("SELECT COUNT(*) FROM t HAVING COUNT(*) > 0")
        assert result.scalar() == 2

    def test_star_only_in_count(self, shark):
        with pytest.raises(AnalysisError):
            shark.sql("SELECT SUM(*) FROM t")

    def test_group_by_position_out_of_range(self, shark):
        with pytest.raises(AnalysisError, match="position"):
            shark.sql("SELECT a FROM t GROUP BY 5")

    def test_order_by_position_out_of_range(self, shark):
        with pytest.raises(AnalysisError, match="position"):
            shark.sql("SELECT a FROM t ORDER BY 3")

    def test_group_by_alias(self, shark):
        result = shark.sql(
            "SELECT a % 2 AS parity, COUNT(*) FROM t GROUP BY parity"
        )
        assert sorted(result.rows) == [(0, 1), (1, 1)]

    def test_qualified_group_key_matches_bare_select(self, shark):
        result = shark.sql("SELECT a, COUNT(*) FROM t GROUP BY t.a")
        assert sorted(result.rows) == [(1, 1), (2, 1)]


class TestScoping:
    def test_subquery_alias_scopes_columns(self, shark):
        result = shark.sql(
            "SELECT sub.x FROM (SELECT a AS x FROM t) sub WHERE sub.x = 2"
        )
        assert result.rows == [(2,)]

    def test_outer_cannot_see_inner_alias(self, shark):
        with pytest.raises(AnalysisError):
            shark.sql("SELECT t.a FROM (SELECT a FROM t) sub")

    def test_table_alias_hides_table_name(self, shark):
        result = shark.sql("SELECT x.a FROM t AS x WHERE x.a = 1")
        assert result.rows == [(1,)]

    def test_duplicate_output_names_deduplicated(self, shark):
        result = shark.sql("SELECT a, a FROM t WHERE a = 1")
        assert len(set(result.column_names)) == 2


class TestUnionValidation:
    def test_mismatched_width_rejected(self, shark):
        with pytest.raises(AnalysisError, match="UNION"):
            shark.sql("SELECT a FROM t UNION ALL SELECT a, d FROM u")


class TestConstantQueries:
    def test_select_without_from(self, shark):
        assert shark.sql("SELECT 1 + 2").scalar() == 3

    def test_constant_functions(self, shark):
        assert shark.sql("SELECT UPPER('abc')").scalar() == "ABC"

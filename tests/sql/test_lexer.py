"""Tokenizer behaviour."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_lowercased(self):
        assert kinds("SELECT From") == [
            ("keyword", "select"), ("keyword", "from"),
        ]

    def test_identifiers_preserve_case(self):
        assert kinds("pageURL") == [("ident", "pageURL")]

    def test_numbers(self):
        assert kinds("42 3.14 .5") == [
            ("number", "42"), ("number", "3.14"), ("number", ".5"),
        ]

    def test_number_then_dot_ident(self):
        # "1." followed by non-digit stays an integer token plus symbol.
        tokens = kinds("1.x")
        assert tokens[0] == ("number", "1")

    def test_strings_single_and_double(self):
        assert kinds("'abc' \"xy\"") == [
            ("string", "abc"), ("string", "xy"),
        ]

    def test_string_escape_by_doubling(self):
        assert kinds("'it''s'") == [("string", "it's")]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_symbols_longest_match(self):
        assert kinds("<= <> != >=") == [
            ("symbol", "<="), ("symbol", "<>"),
            ("symbol", "!="), ("symbol", ">="),
        ]

    def test_backquoted_identifier(self):
        assert kinds("`weird name`") == [("ident", "weird name")]

    def test_unterminated_backquote(self):
        with pytest.raises(ParseError):
            tokenize("`broken")

    def test_comments_skipped(self):
        assert kinds("SELECT -- a comment\n 1") == [
            ("keyword", "select"), ("number", "1"),
        ]

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as info:
            tokenize("SELECT @")
        assert "@" in str(info.value)

    def test_line_numbers_tracked(self):
        tokens = tokenize("SELECT\n1")
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_eof_token_terminates(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == "eof"

"""Optimizer rules: folding, pushdown, join-key derivation, pruning."""

import pytest

from repro.datatypes import INT, STRING, Schema
from repro.sql import logical
from repro.sql.analyzer import Analyzer
from repro.sql.catalog import Catalog, TableEntry, CACHED
from repro.sql.expressions import BoundLiteral
from repro.sql.functions import FunctionRegistry
from repro.sql.optimizer import (
    fold_constants,
    optimize,
    prune_columns,
    push_down_predicates,
)
from repro.sql.parser import parse


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.create(
        TableEntry(
            name="t",
            schema=Schema.of(("a", INT), ("b", STRING), ("c", INT)),
            kind=CACHED,
        )
    )
    catalog.create(
        TableEntry(
            name="u",
            schema=Schema.of(("a", INT), ("d", STRING)),
            kind=CACHED,
        )
    )
    return catalog


def analyze(catalog, sql):
    statement = parse(sql)
    return Analyzer(catalog, FunctionRegistry()).analyze_select(statement)


def find(plan, node_type):
    return [n for n in logical.walk(plan) if isinstance(n, node_type)]


class TestConstantFolding:
    def test_arithmetic_folds(self, catalog):
        plan = analyze(catalog, "SELECT a + (1 + 2) FROM t")
        folded = fold_constants(plan)
        project = find(folded, logical.Project)[0]
        # The (1+2) subtree became a literal 3.
        right = project.expressions[0].right
        assert isinstance(right, BoundLiteral)
        assert right.value == 3

    def test_function_of_literals_folds(self, catalog):
        plan = fold_constants(
            analyze(catalog, "SELECT a FROM t WHERE b = UPPER('x')")
        )
        condition = find(plan, logical.Filter)[0].condition
        assert isinstance(condition.right, BoundLiteral)
        assert condition.right.value == "X"

    def test_column_expressions_untouched(self, catalog):
        plan = fold_constants(analyze(catalog, "SELECT a + c FROM t"))
        project = find(plan, logical.Project)[0]
        assert not isinstance(project.expressions[0], BoundLiteral)


class TestPredicatePushdown:
    def test_where_splits_into_join_sides(self, catalog):
        plan = optimize(
            analyze(
                catalog,
                "SELECT t.a FROM t, u "
                "WHERE t.a = u.a AND t.c > 5 AND u.d = 'x'",
            )
        )
        join = find(plan, logical.Join)[0]
        # Equi conjunct became a join key; per-side filters moved below.
        assert len(join.left_keys) == 1
        assert join.join_type == "inner"
        left_filters = find(join.left, logical.Filter)
        right_filters = find(join.right, logical.Filter)
        assert left_filters and right_filters

    def test_cross_join_becomes_inner(self, catalog):
        plan = optimize(
            analyze(catalog, "SELECT t.a FROM t, u WHERE t.a = u.a")
        )
        join = find(plan, logical.Join)[0]
        assert join.join_type == "inner"
        assert join.residual is None

    def test_non_equi_stays_residual(self, catalog):
        plan = optimize(
            analyze(
                catalog,
                "SELECT t.a FROM t JOIN u ON t.a = u.a WHERE t.c > u.a",
            )
        )
        join = find(plan, logical.Join)[0]
        assert join.residual is not None

    def test_left_join_blocks_right_side_pushdown(self, catalog):
        plan = optimize(
            analyze(
                catalog,
                "SELECT t.a FROM t LEFT JOIN u ON t.a = u.a "
                "WHERE d = 'x'",
            )
        )
        join = find(plan, logical.Join)[0]
        # The filter on the null-extended side must stay above the join.
        assert not find(join.right, logical.Filter)

    def test_filters_merge_through_projection(self, catalog):
        plan = optimize(
            analyze(
                catalog,
                "SELECT x FROM (SELECT a AS x FROM t) sub WHERE x > 1",
            )
        )
        # The filter crossed the subquery projection down to the scan.
        filters = find(plan, logical.Filter)
        assert filters
        assert isinstance(filters[0].child, logical.Scan)

    def test_filter_not_pushed_below_limit(self, catalog):
        plan = optimize(
            analyze(
                catalog,
                "SELECT x FROM (SELECT a AS x FROM t LIMIT 5) sub "
                "WHERE x > 1",
            )
        )
        limits = find(plan, logical.Limit)[0]
        assert not find(limits.child, logical.Filter)


class TestColumnPruning:
    def test_scan_narrowed_to_used_columns(self, catalog):
        plan = optimize(analyze(catalog, "SELECT b FROM t WHERE a > 1"))
        scan = find(plan, logical.Scan)[0]
        assert scan.projected_columns is not None
        assert set(scan.projected_columns) == {"a", "b"}

    def test_star_keeps_all_columns(self, catalog):
        plan = optimize(analyze(catalog, "SELECT * FROM t"))
        scan = find(plan, logical.Scan)[0]
        assert scan.projected_columns is None

    def test_aggregate_prunes_unused_input(self, catalog):
        plan = optimize(
            analyze(catalog, "SELECT b, COUNT(*) FROM t GROUP BY b")
        )
        scan = find(plan, logical.Scan)[0]
        assert scan.projected_columns == ["b"]

    def test_join_prunes_both_sides(self, catalog):
        plan = optimize(
            analyze(
                catalog,
                "SELECT t.b FROM t JOIN u ON t.a = u.a",
            )
        )
        scans = find(plan, logical.Scan)
        by_table = {s.table.name: s for s in scans}
        assert set(by_table["t"].projected_columns) == {"a", "b"}
        assert by_table["u"].projected_columns == ["a"]

    def test_output_schema_preserved(self, catalog):
        original = analyze(catalog, "SELECT c, a FROM t")
        optimized = optimize(original)
        assert optimized.schema.names == original.schema.names

    def test_execution_correct_after_pruning(self):
        # Integration guard: pruned plans still produce correct rows.
        from repro import SharkContext

        shark = SharkContext(num_workers=2)
        shark.create_table(
            "w", Schema.of(("a", INT), ("b", STRING), ("c", INT)), cached=True
        )
        shark.load_rows("w", [(1, "x", 10), (2, "y", 20), (3, "x", 30)])
        result = shark.sql("SELECT b, SUM(c) FROM w WHERE a > 1 GROUP BY b")
        assert sorted(result.rows) == [("x", 30), ("y", 20)]


class TestPushdownSemanticsPreserved:
    """Differential guard: optimization must not change results."""

    def test_random_queries_match_unoptimized(self):
        from repro import SharkContext
        from repro.sql.planner import PhysicalPlanner
        import random

        shark = SharkContext(num_workers=2)
        shark.create_table(
            "t", Schema.of(("a", INT), ("b", STRING), ("c", INT)), cached=True
        )
        rng = random.Random(9)
        rows = [
            (rng.randint(0, 20), rng.choice("xyz"), rng.randint(0, 100))
            for __ in range(200)
        ]
        shark.load_rows("t", rows)
        queries = [
            "SELECT a, c FROM t WHERE c > 50 AND b = 'x'",
            "SELECT b, COUNT(*), SUM(c) FROM t WHERE a < 10 GROUP BY b",
            "SELECT x.a FROM t x JOIN t y ON x.a = y.a WHERE x.c > 90",
            "SELECT a + c FROM t WHERE b IN ('x', 'y') ORDER BY 1 LIMIT 9",
        ]
        analyzer = Analyzer(shark.session.catalog, shark.session.registry)
        for query in queries:
            statement = parse(query)
            raw_plan = analyzer.analyze_select(statement)
            planner = PhysicalPlanner(
                shark.engine, shark.store, shark.session.config
            )
            unoptimized = sorted(planner.plan(raw_plan).rdd.collect())
            optimized = sorted(shark.sql(query).rows)
            if "LIMIT" in query:
                assert len(unoptimized) == len(optimized)
            else:
                assert unoptimized == optimized, query

"""Classic TPC-H queries (Q1, Q3, Q6) against Python references.

These are the canonical analytical shapes Shark's workload targets:
multi-aggregate group-bys with date filters (Q1), a 3-table join with
ordering and limit (Q3), and a selective scan aggregate (Q6).
"""

from collections import defaultdict
from datetime import date

import pytest

from repro import SharkContext
from repro.workloads import tpch


@pytest.fixture(scope="module")
def warehouse():
    shark = SharkContext(num_workers=4)
    lineitem = tpch.generate_lineitem(5000)
    orders = tpch.generate_orders(1250)
    customer = tpch.generate_customer(125)
    for name, data in [
        ("lineitem", lineitem), ("orders", orders), ("customer", customer),
    ]:
        shark.create_table(name, data.schema, cached=True)
        shark.load_rows(name, data.rows)
    return shark, lineitem, orders, customer


class TestQ1PricingSummary:
    QUERY = """
        SELECT L_RETURNFLAG, L_LINESTATUS,
               SUM(L_QUANTITY) AS sum_qty,
               SUM(L_EXTENDEDPRICE) AS sum_base,
               SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS sum_disc,
               AVG(L_QUANTITY) AS avg_qty,
               COUNT(*) AS count_order
        FROM lineitem
        WHERE L_SHIPDATE <= DATE '1998-09-02'
        GROUP BY L_RETURNFLAG, L_LINESTATUS
        ORDER BY L_RETURNFLAG, L_LINESTATUS
    """

    def test_matches_reference(self, warehouse):
        shark, lineitem, __, ___ = warehouse
        result = shark.sql(self.QUERY)
        cutoff = date(1998, 9, 2)
        groups = defaultdict(lambda: [0.0, 0.0, 0.0, 0])
        for row in lineitem.rows:
            if row[10] <= cutoff:
                key = (row[8], row[9])
                bucket = groups[key]
                bucket[0] += row[4]
                bucket[1] += row[5]
                bucket[2] += row[5] * (1 - row[6])
                bucket[3] += 1
        want = [
            (
                flag, status,
                pytest.approx(v[0]), pytest.approx(v[1]),
                pytest.approx(v[2]), pytest.approx(v[0] / v[3]), v[3],
            )
            for (flag, status), v in sorted(groups.items())
        ]
        assert len(result.rows) == len(want)
        for got, expected in zip(result.rows, want):
            assert tuple(got) == tuple(expected)


class TestQ3ShippingPriority:
    QUERY = """
        SELECT o.O_ORDERKEY,
               SUM(l.L_EXTENDEDPRICE * (1 - l.L_DISCOUNT)) AS revenue,
               o.O_ORDERDATE
        FROM customer c
        JOIN orders o ON c.C_CUSTKEY = o.O_CUSTKEY
        JOIN lineitem l ON l.L_ORDERKEY = o.O_ORDERKEY
        WHERE c.C_MKTSEGMENT = 'BUILDING'
          AND o.O_ORDERDATE < DATE '1995-03-15'
        GROUP BY o.O_ORDERKEY, o.O_ORDERDATE
        ORDER BY revenue DESC
        LIMIT 10
    """

    def test_matches_reference(self, warehouse):
        shark, lineitem, orders, customer = warehouse
        result = shark.sql(self.QUERY)
        building = {r[0] for r in customer.rows if r[4] == "BUILDING"}
        qualifying = {
            r[0]: r[4]
            for r in orders.rows
            if r[1] in building and r[4] < date(1995, 3, 15)
        }
        revenue = defaultdict(float)
        for row in lineitem.rows:
            if row[0] in qualifying:
                revenue[row[0]] += row[5] * (1 - row[6])
        want = sorted(
            (
                (okey, rev, qualifying[okey])
                for okey, rev in revenue.items()
            ),
            key=lambda r: -r[1],
        )[:10]
        assert len(result.rows) == len(want)
        for got, expected in zip(result.rows, want):
            assert got[0] == expected[0]
            assert got[1] == pytest.approx(expected[1])
            assert got[2] == expected[2]


class TestQ6ForecastRevenue:
    QUERY = """
        SELECT SUM(L_EXTENDEDPRICE * L_DISCOUNT) AS revenue
        FROM lineitem
        WHERE L_SHIPDATE >= DATE '1994-01-01'
          AND L_SHIPDATE < DATE '1995-01-01'
          AND L_DISCOUNT BETWEEN 0.01 AND 0.06
          AND L_QUANTITY < 24
    """

    def test_matches_reference(self, warehouse):
        shark, lineitem, __, ___ = warehouse
        result = shark.sql(self.QUERY)
        want = sum(
            row[5] * row[6]
            for row in lineitem.rows
            if date(1994, 1, 1) <= row[10] < date(1995, 1, 1)
            and 0.01 <= row[6] <= 0.06
            and row[4] < 24
        )
        assert result.scalar() == pytest.approx(want)

    def test_q6_prunes_and_vectorizes(self, warehouse):
        shark, __, ___, ____ = warehouse
        result = shark.sql(self.QUERY)
        notes = " ".join(result.report.notes)
        assert "vectorized" in notes  # date+discount+quantity conjuncts

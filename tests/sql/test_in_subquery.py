"""Uncorrelated IN (SELECT ...) subqueries: broadcast semi-joins."""

import pytest

from repro import SharkContext
from repro.baselines import HiveExecutor
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def shark():
    shark = SharkContext(num_workers=3)
    shark.create_table(
        "orders",
        Schema.of(("oid", INT), ("cust", INT), ("total", DOUBLE)),
        cached=True,
    )
    shark.load_rows(
        "orders",
        [(i, i % 7, float(i * 3 % 100)) for i in range(200)],
    )
    shark.create_table(
        "vip", Schema.of(("cust", INT), ("tier", STRING)), cached=True
    )
    shark.load_rows("vip", [(1, "gold"), (3, "gold"), (5, "silver")])
    return shark


class TestSemantics:
    def test_in_filters_to_matching_keys(self, shark):
        result = shark.sql(
            "SELECT COUNT(*) FROM orders "
            "WHERE cust IN (SELECT cust FROM vip)"
        )
        want = sum(1 for i in range(200) if i % 7 in (1, 3, 5))
        assert result.scalar() == want

    def test_not_in(self, shark):
        result = shark.sql(
            "SELECT COUNT(*) FROM orders "
            "WHERE cust NOT IN (SELECT cust FROM vip)"
        )
        want = sum(1 for i in range(200) if i % 7 not in (1, 3, 5))
        assert result.scalar() == want

    def test_subquery_with_own_filter(self, shark):
        result = shark.sql(
            "SELECT COUNT(*) FROM orders "
            "WHERE cust IN (SELECT cust FROM vip WHERE tier = 'gold')"
        )
        want = sum(1 for i in range(200) if i % 7 in (1, 3))
        assert result.scalar() == want

    def test_empty_subquery(self, shark):
        assert shark.sql(
            "SELECT COUNT(*) FROM orders "
            "WHERE cust IN (SELECT cust FROM vip WHERE tier = 'platinum')"
        ).scalar() == 0
        # NOT IN over the empty set keeps everything.
        assert shark.sql(
            "SELECT COUNT(*) FROM orders "
            "WHERE cust NOT IN (SELECT cust FROM vip WHERE tier = 'x')"
        ).scalar() == 200

    def test_not_in_with_null_in_subquery_matches_nothing(self, shark):
        shark.sql(
            "CREATE TABLE nullable (k INT) "
            "TBLPROPERTIES ('shark.cache'='true')"
        )
        shark.sql("INSERT INTO nullable VALUES (1), (NULL)")
        assert shark.sql(
            "SELECT COUNT(*) FROM orders "
            "WHERE cust NOT IN (SELECT k FROM nullable)"
        ).scalar() == 0

    def test_combined_with_other_predicates(self, shark):
        result = shark.sql(
            "SELECT COUNT(*) FROM orders "
            "WHERE total > 50 AND cust IN (SELECT cust FROM vip)"
        )
        want = sum(
            1
            for i in range(200)
            if i * 3 % 100 > 50 and i % 7 in (1, 3, 5)
        )
        assert result.scalar() == want

    def test_aggregating_subquery(self, shark):
        result = shark.sql(
            "SELECT COUNT(*) FROM orders WHERE cust IN "
            "(SELECT cust FROM orders GROUP BY cust HAVING COUNT(*) > 28)"
        )
        # Each of the 7 cust groups has 28 or 29 members; only those with
        # 29 qualify (200 = 7*28 + 4 -> cust 0..3 have 29).
        want = sum(1 for i in range(200) if i % 7 in (0, 1, 2, 3))
        assert result.scalar() == want


class TestRestrictions:
    def test_nested_in_expression_rejected(self, shark):
        with pytest.raises(AnalysisError, match="top-level"):
            shark.sql(
                "SELECT COUNT(*) FROM orders "
                "WHERE NOT (cust IN (SELECT cust FROM vip))"
            )

    def test_multi_column_subquery_rejected(self, shark):
        with pytest.raises(AnalysisError, match="one column"):
            shark.sql(
                "SELECT COUNT(*) FROM orders "
                "WHERE cust IN (SELECT cust, tier FROM vip)"
            )

    def test_in_subquery_in_select_list_rejected(self, shark):
        with pytest.raises(AnalysisError):
            shark.sql(
                "SELECT cust IN (SELECT cust FROM vip) FROM orders"
            )


class TestIntegration:
    def test_matches_hive_baseline(self, shark):
        def table_rows(entry):
            rdd = shark.session._scan_rdd(entry)
            return shark.engine.run_job(rdd, list)

        hive = HiveExecutor(
            shark.session.catalog, shark.store, shark.session.registry,
            table_rows=table_rows,
        )
        query = (
            "SELECT cust, COUNT(*) FROM orders "
            "WHERE cust IN (SELECT cust FROM vip) GROUP BY cust"
        )
        assert sorted(shark.sql(query).rows) == sorted(
            hive.execute(query).rows
        )

    def test_survives_worker_failure(self, shark):
        query = (
            "SELECT COUNT(*) FROM orders "
            "WHERE cust IN (SELECT cust FROM vip)"
        )
        expected = shark.sql(query).scalar()
        base = shark.engine.cluster.total_tasks_completed
        shark.inject_failure(worker_id=1, after_tasks=base + 2)
        assert shark.sql(query).scalar() == expected

    def test_explain_shows_semi_join(self, shark):
        text = shark.explain(
            "SELECT oid FROM orders WHERE cust IN (SELECT cust FROM vip)"
        )
        assert "SemiJoinFilter" in text

    def test_render_round_trips(self):
        from repro.sql.parser import parse
        from repro.sql.render import render_select

        query = (
            "SELECT a FROM t WHERE k NOT IN (SELECT k FROM d WHERE x > 1)"
        )
        first = parse(query)
        assert parse(render_select(first)) == first

"""Cache invalidation matrix: every journaled mutation kind x layer.

The caching stack's correctness contract is that a stale entry is never
served: every catalog-mutating statement kind (CREATE, DROP, CACHE,
UNCACHE, INSERT, LOAD) must invalidate exactly the entries it makes
stale in each cache layer (plan / result / fragment), verified against a
cache-off context that replays the same mutations.  Per-table versions
are monotonic — they survive DROP and master-journal replay — and a
self-join or subquery contributes one version-vector entry *per alias
occurrence* (the PR's normalizer regression).
"""

import pytest

from repro import SharkContext
from repro.sql.cache import SqlCacheConfig, normalize_select
from repro.sql.journal import MasterJournal
from repro.sql.parser import parse
from repro.storage import DistributedFileStore

from tests.sql.test_vectorized_parity import assert_byte_identical

QUERY = "SELECT k, SUM(v) AS total FROM src GROUP BY k ORDER BY k"


def _build(cache: bool = True, config=None, **context_kwargs):
    shark = SharkContext(num_workers=2, **context_kwargs)
    shark.sql("CREATE TABLE src (k INT, v DOUBLE)")
    shark.sql("INSERT INTO src VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
    shark.sql("CREATE TABLE other (x INT)")
    shark.sql("INSERT INTO other VALUES (10)")
    if cache:
        shark.enable_sql_cache(config)
    return shark


def _mutate_insert(shark):
    shark.sql("INSERT INTO src VALUES (9, 9.0)")


def _mutate_load(shark):
    shark.load_rows("src", [(9, 9.0)])


def _mutate_cache_table(shark):
    shark.sql("CACHE TABLE src")


def _mutate_uncache_table(shark):
    shark.sql("UNCACHE TABLE src")


def _mutate_drop_recreate(shark):
    shark.sql("DROP TABLE src")
    shark.sql("CREATE TABLE src (k INT, v DOUBLE)")
    shark.sql("INSERT INTO src VALUES (7, 7.0)")


#: name -> (prepare, mutate).  ``prepare`` runs before the cache warms
#: so UNCACHE has something to uncache.
MUTATIONS = {
    "insert": (None, _mutate_insert),
    "load": (None, _mutate_load),
    "cache_table": (None, _mutate_cache_table),
    "uncache_table": (_mutate_cache_table, _mutate_uncache_table),
    "drop_recreate": (None, _mutate_drop_recreate),
}


class TestResultInvalidation:
    """Result layer: warm entry -> mutation -> a fresh execution, with
    rows byte-identical to a cache-off context replaying the steps."""

    @pytest.mark.parametrize("kind", sorted(MUTATIONS))
    def test_mutation_never_serves_stale(self, kind):
        prepare, mutate = MUTATIONS[kind]
        shark = _build()
        if prepare is not None:
            prepare(shark)
        version_before = shark.session.catalog.version("src")

        first = shark.sql(QUERY)
        assert not first.cache_hit
        warm = shark.sql(QUERY)
        assert warm.cache_hit
        assert_byte_identical(warm.rows, first.rows)

        mutate(shark)
        assert shark.session.catalog.version("src") > version_before
        after = shark.sql(QUERY)
        assert not after.cache_hit  # the stale entry was unreachable

        reference = _build(cache=False)
        if prepare is not None:
            prepare(reference)
        mutate(reference)
        assert_byte_identical(after.rows, reference.sql(QUERY).rows)

    @pytest.mark.parametrize("kind", sorted(MUTATIONS))
    def test_mutation_frees_entries_eagerly(self, kind):
        prepare, mutate = MUTATIONS[kind]
        shark = _build()
        if prepare is not None:
            prepare(shark)
        cache = shark.sql_cache
        shark.sql(QUERY)
        assert cache.bytes_cached > 0
        before = cache.invalidations
        mutate(shark)
        assert cache.invalidations > before
        # No result or fragment entry for src may survive the mutation.
        assert not any(
            "src" in entry.tables for entry in cache._results.values()
        )
        assert not any(key[0] == "src" for key in cache._fragments)

    def test_unrelated_mutation_keeps_entries(self):
        shark = _build()
        shark.sql(QUERY)
        shark.sql("INSERT INTO other VALUES (11)")
        assert shark.sql(QUERY).cache_hit

    def test_unrelated_ddl_keeps_result_entries(self):
        # DDL bumps the catalog's ddl_version (plan keys move) but the
        # result cache keys on per-table versions only: still a hit.
        shark = _build()
        shark.sql(QUERY)
        shark.sql("CREATE TABLE third (y INT)")
        assert shark.sql(QUERY).cache_hit


class TestPlanInvalidation:
    """Plan layer: survives non-DDL mutations (physical planning reruns
    anyway), becomes unreachable on any DDL via the ddl_version key."""

    def _build_plan_only(self):
        # Result cache off so every execution consults the plan cache.
        return _build(config=SqlCacheConfig(enable_result=False))

    def test_plan_survives_insert_and_load(self):
        shark = self._build_plan_only()
        cache = shark.sql_cache
        shark.sql(QUERY)
        shark.sql(QUERY)
        assert cache.plan_hits == 1
        shark.sql("INSERT INTO src VALUES (9, 9.0)")
        after = shark.sql(QUERY)
        assert cache.plan_hits == 2  # non-DDL: the plan is still valid
        assert (9, 9.0) in after.rows
        shark.load_rows("src", [(12, 12.0)])
        assert (12, 12.0) in shark.sql(QUERY).rows
        assert cache.plan_hits == 3

    @pytest.mark.parametrize(
        "ddl",
        [
            "CACHE TABLE src",
            "CREATE TABLE third (y INT)",
            "DROP TABLE other",
        ],
    )
    def test_any_ddl_moves_plan_keys(self, ddl):
        shark = self._build_plan_only()
        cache = shark.sql_cache
        shark.sql(QUERY)
        shark.sql(QUERY)
        assert cache.plan_hits == 1
        misses_before = cache.plan_misses
        shark.sql(ddl)
        shark.sql(QUERY)
        assert cache.plan_misses == misses_before + 1
        # ...and the re-stored plan serves the next run.
        shark.sql(QUERY)
        assert cache.plan_hits == 2

    def test_drop_evicts_plans_referencing_table(self):
        shark = self._build_plan_only()
        cache = shark.sql_cache
        shark.sql(QUERY)
        assert len(cache._plans) == 1
        shark.sql("DROP TABLE src")
        assert len(cache._plans) == 0


class TestFragmentInvalidation:
    """Fragment layer: decoded scan batches die with their table
    version and the next scan re-decodes fresh data."""

    def _build_cached_table(self):
        shark = SharkContext(num_workers=2)
        shark.sql(
            "CREATE TABLE src (k INT, v DOUBLE) "
            "TBLPROPERTIES ('shark.cache'='true')"
        )
        shark.sql("INSERT INTO src VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
        shark.enable_sql_cache(SqlCacheConfig(enable_result=False))
        return shark

    def test_insert_drops_fragments_and_redecodes(self):
        shark = self._build_cached_table()
        cache = shark.sql_cache
        shark.sql(QUERY)
        assert cache.fragment_misses > 0
        # Warm scan: every block comes from the fragment cache, so the
        # decode counter does not move.
        decoded_before = shark.metrics.value("batch.batches")
        shark.sql(QUERY)
        assert shark.metrics.value("batch.batches") == decoded_before
        assert cache.fragment_hits > 0

        shark.sql("INSERT INTO src VALUES (9, 9.0)")
        assert not any(key[0] == "src" for key in cache._fragments)
        misses_before = cache.fragment_misses
        after = shark.sql(QUERY)
        assert cache.fragment_misses > misses_before
        assert (9, 9.0) in after.rows

    def test_uncache_drops_fragments(self):
        shark = self._build_cached_table()
        cache = shark.sql_cache
        shark.sql(QUERY)
        shark.sql("UNCACHE TABLE src")
        assert not any(key[0] == "src" for key in cache._fragments)
        # The uncached path still answers correctly.
        assert (1, 1.0) in shark.sql(QUERY).rows


class TestPerAliasVersioning:
    """The normalizer regression: one version entry per FROM-clause
    occurrence, so self-joins and subqueries cannot collide with
    single-scan queries."""

    def test_self_join_contributes_two_entries(self):
        statement = parse(
            "SELECT a.k FROM src a JOIN src b ON a.k = b.k"
        )
        normalized = normalize_select(statement)
        assert normalized.tables == (("a", "src"), ("b", "src"))

    def test_comma_join_contributes_two_entries(self):
        statement = parse(
            "SELECT a.k FROM src AS a, src AS b WHERE a.k = b.k"
        )
        normalized = normalize_select(statement)
        assert normalized.tables == (("a", "src"), ("b", "src"))

    def test_from_subquery_tables_collected(self):
        statement = parse("SELECT s.k FROM (SELECT k FROM src) s")
        normalized = normalize_select(statement)
        assert normalized.tables == (("src", "src"),)

    def test_in_subquery_tables_collected(self):
        statement = parse(
            "SELECT k FROM src WHERE k IN (SELECT x FROM other)"
        )
        normalized = normalize_select(statement)
        assert normalized.tables == (("src", "src"), ("other", "other"))

    def test_version_vector_has_one_entry_per_alias(self):
        shark = _build()
        cache = shark.sql_cache
        text = "SELECT COUNT(*) FROM src a JOIN src b ON a.k = b.k"
        shark.sql(text)
        normalized = cache.memo_for(text)
        vector = cache.version_vector(normalized)
        assert len(vector) == 2
        assert [entry[1] for entry in vector] == ["src", "src"]
        assert vector[0][2] == vector[1][2]  # same table, same version

    def test_self_join_result_invalidated_by_insert(self):
        shark = _build()
        text = "SELECT COUNT(*) FROM src a JOIN src b ON a.k = b.k"
        first = shark.sql(text)
        assert shark.sql(text).cache_hit
        shark.sql("INSERT INTO src VALUES (9, 9.0)")
        after = shark.sql(text)
        assert not after.cache_hit
        assert after.scalar() != first.scalar()


class TestVersionsSurviveReplay:
    """Per-table versions are monotonic across DROP and recompute
    deterministically when a new master replays the journal."""

    def test_versions_monotonic_across_drop(self):
        shark = _build(cache=False)
        created = shark.session.catalog.version("src")
        shark.sql("INSERT INTO src VALUES (4, 4.0)")
        inserted = shark.session.catalog.version("src")
        assert inserted > created
        shark.sql("DROP TABLE src")
        dropped = shark.session.catalog.version("src")
        assert dropped > inserted
        shark.sql("CREATE TABLE src (k INT, v DOUBLE)")
        assert shark.session.catalog.version("src") > dropped

    def _build_journaled(self, store):
        shark = SharkContext(
            num_workers=2, store=store, enable_master_recovery=True
        )
        shark.sql(
            "CREATE TABLE sales (region STRING, amount DOUBLE) "
            "TBLPROPERTIES ('shark.cache'='true')"
        )
        shark.sql("INSERT INTO sales VALUES ('n', 10.5), ('s', 20.0)")
        shark.load_rows("sales", [("e", 7.0)])
        shark.sql("CREATE TABLE scratch (x INT)")
        shark.sql("DROP TABLE scratch")
        return shark

    def test_replay_recomputes_identical_versions(self):
        store = DistributedFileStore()
        original = self._build_journaled(store)
        assert len(MasterJournal(store)) > 0
        recovered = SharkContext.recover(store)
        assert recovered.session.catalog.version("sales") == (
            original.session.catalog.version("sales")
        )
        assert recovered.session.catalog.ddl_version == (
            original.session.catalog.ddl_version
        )

    def test_recovered_master_cache_never_stale(self):
        store = DistributedFileStore()
        self._build_journaled(store)
        recovered = SharkContext.recover(store)
        recovered.enable_sql_cache()
        text = "SELECT region, SUM(amount) FROM sales GROUP BY region"
        recovered.sql(text)
        assert recovered.sql(text).cache_hit
        recovered.sql("INSERT INTO sales VALUES ('n', 100.0)")
        after = recovered.sql(text)
        assert not after.cache_hit
        reference = SharkContext.recover(store)
        assert_byte_identical(after.rows, reference.sql(text).rows)

"""Builtin scalar functions, aggregates, UDF registry."""

import math
from datetime import date

import pytest

from repro.datatypes import BIGINT, BOOLEAN, DOUBLE, INT, STRING
from repro.errors import AnalysisError
from repro.sql.functions import (
    AvgAggregate,
    CountAggregate,
    FunctionRegistry,
    MaxAggregate,
    MinAggregate,
    StdDevAggregate,
    SumAggregate,
    builtin,
    builtin_names,
    make_aggregate,
)


class TestScalarBuiltins:
    def test_substr_one_based(self):
        fn = builtin("substr").fn
        assert fn("sourceIP", 1, 6) == "source"
        assert fn("abcdef", 3) == "cdef"
        assert fn("abcdef", -2) == "ef"

    def test_concat_upper_lower_length(self):
        assert builtin("concat").fn("a", "b", 1) == "ab1"
        assert builtin("upper").fn("ab") == "AB"
        assert builtin("lower").fn("AB") == "ab"
        assert builtin("length").fn("abc") == 3

    def test_trim_family(self):
        assert builtin("trim").fn("  x  ") == "x"
        assert builtin("ltrim").fn("  x") == "x"
        assert builtin("rtrim").fn("x  ") == "x"

    def test_round_half_away_from_zero(self):
        fn = builtin("round").fn
        assert fn(2.5) == 3.0
        assert fn(-2.5) == -3.0
        assert fn(2.345, 2) == 2.35

    def test_math_functions(self):
        assert builtin("floor").fn(2.9) == 2
        assert builtin("ceil").fn(2.1) == 3
        assert builtin("sqrt").fn(9.0) == 3.0
        assert builtin("abs").fn(-4) == 4
        assert builtin("pow").fn(2, 10) == 1024

    def test_date_functions(self):
        assert builtin("date").fn("2000-01-15") == date(2000, 1, 15)
        assert builtin("year").fn(date(2000, 3, 1)) == 2000
        assert builtin("month").fn("2000-03-01") == 3
        assert builtin("datediff").fn("2000-01-10", "2000-01-03") == 7

    def test_conditional_functions(self):
        assert builtin("coalesce").fn(None, None, 5) == 5
        assert builtin("if").fn(True, "a", "b") == "a"
        assert builtin("nvl").fn(None, 9) == 9
        assert builtin("isnull").fn(None) is True

    def test_instr_one_based(self):
        assert builtin("instr").fn("hello", "ll") == 3
        assert builtin("instr").fn("hello", "zz") == 0

    def test_unknown_builtin_none(self):
        assert builtin("nope") is None

    def test_builtin_names_sorted(self):
        names = builtin_names()
        assert names == sorted(names)
        assert "substr" in names

    def test_result_type_resolution(self):
        assert builtin("length").resolve_type([STRING]) == INT
        assert builtin("abs").resolve_type([DOUBLE]) == DOUBLE
        assert builtin("abs").resolve_type([INT]) == INT


class TestCountAggregate:
    def test_count_star_counts_nulls(self):
        agg = CountAggregate(count_star=True)
        acc = agg.initial()
        for value in [1, None, 2]:
            acc = agg.update(acc, value)
        assert agg.finish(acc) == 3

    def test_count_column_skips_nulls(self):
        agg = CountAggregate()
        acc = agg.initial()
        for value in [1, None, 2]:
            acc = agg.update(acc, value)
        assert agg.finish(acc) == 2

    def test_count_distinct(self):
        agg = CountAggregate(distinct=True)
        acc = agg.initial()
        for value in [1, 1, 2, None]:
            acc = agg.update(acc, value)
        assert agg.finish(acc) == 2

    def test_merge(self):
        agg = CountAggregate()
        assert agg.merge(3, 4) == 7
        distinct = CountAggregate(distinct=True)
        assert distinct.finish(distinct.merge({1, 2}, {2, 3})) == 3

    def test_result_type(self):
        assert CountAggregate().result_type(STRING) == BIGINT


class TestSumAvgMinMax:
    def test_sum_skips_nulls(self):
        agg = SumAggregate()
        acc = agg.initial()
        for value in [1, None, 4]:
            acc = agg.update(acc, value)
        assert agg.finish(acc) == 5

    def test_sum_all_null_is_null(self):
        agg = SumAggregate()
        acc = agg.initial()
        acc = agg.update(acc, None)
        assert agg.finish(acc) is None

    def test_sum_rejects_strings(self):
        with pytest.raises(AnalysisError):
            SumAggregate().result_type(STRING)

    def test_sum_distinct(self):
        agg = SumAggregate(distinct=True)
        acc = agg.initial()
        for value in [5, 5, 3]:
            acc = agg.update(acc, value)
        assert agg.finish(acc) == 8

    def test_avg_partials_merge_correctly(self):
        agg = AvgAggregate()
        left = agg.initial()
        for value in [2, 4]:
            left = agg.update(left, value)
        right = agg.initial()
        right = agg.update(right, 9)
        assert agg.finish(agg.merge(left, right)) == 5.0

    def test_avg_empty_is_null(self):
        agg = AvgAggregate()
        assert agg.finish(agg.initial()) is None

    def test_min_max(self):
        low, high = MinAggregate(), MaxAggregate()
        acc_low, acc_high = low.initial(), high.initial()
        for value in [5, None, 1, 9]:
            acc_low = low.update(acc_low, value)
            acc_high = high.update(acc_high, value)
        assert low.finish(acc_low) == 1
        assert high.finish(acc_high) == 9

    def test_min_merge_with_none_side(self):
        agg = MinAggregate()
        assert agg.merge(None, 5) == 5
        assert agg.merge(3, None) == 3


class TestStdDev:
    def test_matches_numpy(self):
        import numpy as np

        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        agg = StdDevAggregate()
        acc = agg.initial()
        for value in values:
            acc = agg.update(acc, value)
        assert agg.finish(acc) == pytest.approx(float(np.std(values)))

    def test_empty_is_null(self):
        agg = StdDevAggregate()
        assert agg.finish(agg.initial()) is None

    def test_merge(self):
        agg = StdDevAggregate()
        left = agg.initial()
        right = agg.initial()
        for value in [1.0, 2.0]:
            left = agg.update(left, value)
        for value in [3.0, 4.0]:
            right = agg.update(right, value)
        merged = agg.merge(left, right)
        expected = math.sqrt(sum((v - 2.5) ** 2 for v in [1, 2, 3, 4]) / 4)
        assert agg.finish(merged) == pytest.approx(expected)


class TestMakeAggregate:
    def test_known_names(self):
        for name in ["count", "sum", "avg", "min", "max", "stddev"]:
            assert make_aggregate(name, distinct=False) is not None

    def test_unknown_rejected(self):
        with pytest.raises(AnalysisError):
            make_aggregate("median", distinct=False)


class TestRegistry:
    def test_udf_registration_and_lookup(self):
        registry = FunctionRegistry()
        registry.register("double_it", lambda x: x * 2, return_type=INT)
        spec = registry.lookup("DOUBLE_IT")
        assert spec.fn(21) == 42
        assert registry.is_registered("double_it")
        assert registry.udf_names() == ["double_it"]

    def test_builtins_take_priority(self):
        registry = FunctionRegistry()
        registry.register("substr", lambda s: "hijacked")
        assert registry.lookup("substr").fn("abcdef", 1, 2) == "ab"

    def test_missing_function(self):
        assert FunctionRegistry().lookup("nothing") is None

    def test_boolean_udf(self):
        registry = FunctionRegistry()
        registry.register("is_even", lambda x: x % 2 == 0, return_type=BOOLEAN)
        assert registry.lookup("is_even").fn(4) is True

"""Vectorized scan filters: column-at-a-time predicates in the memstore.

Correctness contract: any combination of pushed-down vector filters must
produce exactly the rows the row-at-a-time interpreter produces, including
NULL handling (a NULL operand is never TRUE).
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro import SharkContext
from repro.datatypes import DOUBLE, INT, STRING, Schema
from repro.sql.physical import VectorFilter, _filter_mask
from repro.columnar import ColumnarPartition
from repro.sql.planner import PlannerConfig


@pytest.fixture(scope="module")
def shark():
    shark = SharkContext(num_workers=2)
    shark.create_table(
        "t", Schema.of(("a", INT), ("b", STRING), ("c", DOUBLE)),
        cached=True,
    )
    rng = random.Random(7)
    rows = []
    for i in range(600):
        c = None if i % 9 == 0 else round(rng.uniform(0, 100), 2)
        b = None if i % 13 == 0 else rng.choice(["x", "y", "z"])
        rows.append((rng.randint(0, 40), b, c))
    shark.load_rows("t", rows)
    return shark, rows


QUERIES = [
    "SELECT a FROM t WHERE a > 20",
    "SELECT a FROM t WHERE a >= 20 AND a <= 30",
    "SELECT a, b FROM t WHERE b = 'x'",
    "SELECT a FROM t WHERE b <> 'x'",
    "SELECT a FROM t WHERE a BETWEEN 5 AND 15",
    "SELECT a FROM t WHERE b IN ('x', 'z')",
    "SELECT a FROM t WHERE c IS NULL",
    "SELECT a FROM t WHERE c IS NOT NULL AND c < 50",
    "SELECT a FROM t WHERE 25 < a",
    "SELECT a FROM t WHERE a = 7 AND b = 'y' AND c > 10",
]


class TestVectorizedMatchesInterpreted:
    @pytest.mark.parametrize("query", QUERIES)
    def test_query_equivalence(self, shark, query):
        context, rows = shark
        vectorized = sorted(context.sql(query).rows, key=repr)
        original = context.session.config
        try:
            context.session.config = replace(
                original, enable_vectorized_scan=False
            )
            interpreted = sorted(context.sql(query).rows, key=repr)
        finally:
            context.session.config = original
        assert vectorized == interpreted, query

    def test_report_notes_pushdown(self, shark):
        context, __ = shark
        result = context.sql("SELECT a FROM t WHERE a > 20 AND b = 'x'")
        assert any("vectorized" in note for note in result.report.notes)

    def test_udf_stays_row_level(self, shark):
        context, rows = shark
        context.register_udf("oddish", lambda v: v % 2 == 1)
        result = context.sql(
            "SELECT a FROM t WHERE a > 20 AND oddish(a)"
        )
        want = sorted(
            (r[0],) for r in rows if r[0] > 20 and r[0] % 2 == 1
        )
        assert sorted(result.rows) == want


class TestFilterMaskUnit:
    schema = Schema.of(("n", INT), ("s", STRING))

    def _block(self, rows):
        return ColumnarPartition.from_rows(self.schema, rows)

    def test_cmp_on_primitive_array(self):
        block = self._block([(i, "a") for i in range(10)])
        mask = _filter_mask(block, VectorFilter("n", "cmp", ">", (6,)))
        assert list(mask) == [False] * 7 + [True] * 3

    def test_null_string_excluded_from_not_equals(self):
        block = self._block([(1, "x"), (2, None), (3, "y")])
        mask = _filter_mask(block, VectorFilter("s", "cmp", "<>", ("x",)))
        assert list(mask) == [False, False, True]

    def test_in_with_nulls(self):
        block = self._block([(1, "x"), (2, None), (3, "z")])
        mask = _filter_mask(block, VectorFilter("s", "in", values=("x", "z")))
        assert list(mask) == [True, False, True]

    def test_isnull_and_notnull(self):
        block = self._block([(1, "x"), (2, None)])
        isnull = _filter_mask(block, VectorFilter("s", "isnull"))
        notnull = _filter_mask(block, VectorFilter("s", "notnull"))
        assert list(isnull) == [False, True]
        assert list(notnull) == [True, False]

    def test_isnull_on_primitive_is_all_false(self):
        block = self._block([(1, "x"), (2, "y")])
        mask = _filter_mask(block, VectorFilter("n", "isnull"))
        assert list(mask) == [False, False]

    def test_between(self):
        block = self._block([(i, "a") for i in range(6)])
        mask = _filter_mask(block, VectorFilter("n", "between", values=(2, 4)))
        assert list(mask) == [False, False, True, True, True, False]

    def test_incomparable_falls_back_to_none(self):
        block = self._block([(1, "x"), (2, None)])
        # '<' over a None-bearing string column cannot vectorize.
        mask = _filter_mask(block, VectorFilter("s", "cmp", "<", ("y",)))
        assert mask is None


class TestPropertyEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 30),
                st.one_of(st.none(), st.sampled_from(["x", "y"])),
            ),
            min_size=1,
            max_size=60,
        ),
        st.integers(0, 30),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_data_equivalence(self, rows, cutoff):
        shark = SharkContext(num_workers=2)
        shark.create_table(
            "p", Schema.of(("n", INT), ("s", STRING)), cached=True
        )
        shark.load_rows("p", rows)
        query = f"SELECT n FROM p WHERE n >= {cutoff} AND s = 'x'"
        vectorized = sorted(shark.sql(query).rows)
        shark.session.config = replace(
            shark.session.config, enable_vectorized_scan=False
        )
        interpreted = sorted(shark.sql(query).rows)
        assert vectorized == interpreted

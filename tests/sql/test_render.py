"""AST -> SQL rendering: parse(render(parse(q))) round-trips."""

import pytest

from repro.sql.parser import parse, parse_expression
from repro.sql.render import render_expr, render_select

QUERIES = [
    "SELECT a, b FROM t",
    "SELECT DISTINCT a FROM t WHERE b > 1 AND c LIKE 'x%'",
    "SELECT a, COUNT(*) AS c FROM t GROUP BY a HAVING COUNT(*) > 2",
    "SELECT * FROM t ORDER BY a DESC, b ASC LIMIT 5",
    "SELECT t.a, u.b FROM t JOIN u ON t.k = u.k WHERE t.a IS NOT NULL",
    "SELECT a FROM t LEFT OUTER JOIN u ON t.k = u.k",
    "SELECT a FROM (SELECT a FROM t WHERE a IN (1, 2)) AS sub",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
    "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
    "SELECT CAST(a AS DOUBLE), -b, NOT c FROM t",
    "SELECT COUNT(DISTINCT a), SUBSTR(b, 1, 3) FROM t",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 9 OR a NOT IN (3, 4)",
    "SELECT * FROM t DISTRIBUTE BY k",
    "SELECT a FROM r, s WHERE r.x = s.x",
    "SELECT a FROM t WHERE b NOT LIKE '%z' AND c IS NULL",
]

EXPRESSIONS = [
    "a + b * 2",
    "(a - 1) / b",
    "x = 'it''s'",
    "TRUE AND NOT FALSE OR NULL IS NULL",
    "GREATEST(a, b, 3)",
    "t.col BETWEEN DATE '2000-01-01' AND DATE '2000-02-01'",
]


class TestRoundTrip:
    @pytest.mark.parametrize("query", QUERIES)
    def test_select_round_trips(self, query):
        first = parse(query)
        rendered = render_select(first)
        second = parse(rendered)
        assert second == first, rendered

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_expression_round_trips(self, text):
        first = parse_expression(text)
        rendered = render_expr(first)
        second = parse_expression(rendered)
        assert second == first, rendered

    def test_string_escaping(self):
        expr = parse_expression("'don''t'")
        assert parse_expression(render_expr(expr)) == expr

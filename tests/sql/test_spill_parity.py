"""Spill-to-disk parity: capped memory must be an invisible constraint.

Every TPC-H and Pavlo workload query runs twice — uncapped, and with
``memory_per_worker_bytes`` squeezed low enough that arbitration evicts
cached blocks and forces the external hash aggregation / external sort
to spill — and the rows must be repr-identical (the same float-drift
standard as the vectorized parity harness).  A chaos section repeats
the capped runs under the fault injector: retries shift *where* spills
fire, which must not shift results.  After every successful statement
the execution ledger balances to zero with zero clamped releases.

The acceptance class pins the ISSUE contract: Q1/Q3/Q6 capped at 1/8 of
their uncapped per-worker peak watermark complete correctly with
``memory.spill.events > 0``.
"""

from dataclasses import replace

import pytest

from repro import SharkContext
from repro.datatypes import BOOLEAN
from repro.engine.memory import EXECUTION
from repro.faults.injector import FaultInjector
from repro.workloads import pavlo, tpch

from tests.sql.test_vectorized_parity import (
    QUERIES,
    assert_byte_identical,
)

#: Low enough to force arbitration on every aggregation/sort query at
#: these data sizes, high enough that pinned shuffle outputs alone
#: never exceed it (spills, not thrash).
CAPPED_BYTES = 48 * 1024


def _datasets():
    return {
        "lineitem": tpch.generate_lineitem(3000),
        "orders": tpch.generate_orders(800),
        "customer": tpch.generate_customer(100),
        "supplier": tpch.generate_supplier(60),
        "rankings": pavlo.generate_rankings(600),
        "uservisits": pavlo.generate_uservisits(
            1500, num_pages=600, num_ips=120
        ),
    }


def _build(**context_kwargs):
    shark = SharkContext(num_workers=4, cores_per_worker=2, **context_kwargs)
    for name, data in _datasets().items():
        shark.create_table(name, data.schema, cached=True)
        shark.load_rows(name, data.rows, num_partitions=4)
    shark.register_udf(
        "SOME_UDF", lambda addr: addr.endswith("7"), return_type=BOOLEAN
    )
    return shark


def _run(shark, query, vectorize=True):
    shark.session.config = replace(shark.session.config, vectorize=vectorize)
    return shark.sql(query).rows


@pytest.fixture(scope="module")
def uncapped():
    return _build()


@pytest.fixture(scope="module")
def uncapped_rows(uncapped):
    return {name: _run(uncapped, QUERIES[name]) for name in QUERIES}


@pytest.fixture(scope="module")
def capped():
    return _build(memory_per_worker_bytes=CAPPED_BYTES)


class TestSpillParity:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_capped_rows_identical(self, capped, uncapped_rows, name):
        got = _run(capped, QUERIES[name])
        assert_byte_identical(got, uncapped_rows[name])
        # Ledger-zero after every statement, with balanced (never
        # clamped) books — spills release exactly what they charged.
        assert capped.engine.memory.live_bytes(EXECUTION) == 0
        assert capped.engine.memory.clamped_release_bytes == 0

    def test_cap_actually_forced_spills(self, capped, uncapped_rows):
        # Run the heaviest aggregations in row mode too: both pipelines
        # must exercise their spill paths under this cap.
        for name in ("tpch_q1", "pavlo_agg_full"):
            got = _run(capped, QUERIES[name], vectorize=False)
            assert_byte_identical(got, uncapped_rows[name])
        accountant = capped.engine.memory
        assert accountant.spill_events > 0
        assert accountant.spill_bytes > 0
        assert capped.metrics.value("memory.spill.events") > 0
        assert capped.metrics.value("memory.spill.bytes") > 0
        owners = set(accountant.spilled_by_owner)
        assert owners & {"batch_aggregate", "hash_aggregate", "sort"}

    def test_row_mode_capped_parity(self, capped, uncapped_rows):
        for name in ("tpch_q3", "tpch_agg_2500", "pavlo_join"):
            got = _run(capped, QUERIES[name], vectorize=False)
            assert_byte_identical(got, uncapped_rows[name])
            assert capped.engine.memory.live_bytes(EXECUTION) == 0
            assert capped.engine.memory.clamped_release_bytes == 0


class TestSpillChaosParity:
    """Chaos shifts spill points between attempts; results must not move."""

    CHAOS_QUERIES = ["tpch_q1", "tpch_agg_max", "pavlo_agg_substr"]

    @pytest.mark.parametrize("name", CHAOS_QUERIES)
    def test_chaos_capped_matches_uncapped(self, uncapped_rows, name):
        injector = FaultInjector(
            seed=13,
            transient_failure_rate=0.25,
            stragglers_per_stage=1,
        )
        chaotic = _build(
            fault_injector=injector,
            memory_per_worker_bytes=CAPPED_BYTES,
        )
        got = _run(chaotic, QUERIES[name])
        assert_byte_identical(got, uncapped_rows[name])
        # Killed/retried attempts deregistered their spill consumers and
        # drained their reservations in the scheduler's finally.
        assert chaotic.engine.memory.live_bytes(EXECUTION) == 0
        assert chaotic.engine.memory.clamped_release_bytes == 0


class TestAcceptance:
    """ISSUE contract: Q1/Q3/Q6 at 1/8 of their uncapped peak."""

    ACCEPTANCE = ["tpch_q1", "tpch_q3", "tpch_q6"]

    @pytest.mark.parametrize("name", ACCEPTANCE)
    def test_eighth_of_peak_completes_and_spills(self, name):
        baseline = _build()
        expected = _run(baseline, QUERIES[name])
        peak = max(
            ledger.total_peak
            for worker_id, ledger in baseline.engine.memory.ledgers.items()
            if worker_id >= 0
        )
        assert peak > 0
        capped = _build(memory_per_worker_bytes=peak // 8)
        got = _run(capped, QUERIES[name])
        assert_byte_identical(got, expected)
        assert capped.metrics.value("memory.spill.events") > 0
        assert capped.engine.memory.live_bytes(EXECUTION) == 0
        assert capped.engine.memory.clamped_release_bytes == 0


@pytest.fixture(scope="module")
def q1_tight_cap():
    """An eighth of Q1's own uncapped peak: guarantees Q1 spills."""
    baseline = _build()
    _run(baseline, QUERIES["tpch_q1"])
    peak = max(
        ledger.total_peak
        for worker_id, ledger in baseline.engine.memory.ledgers.items()
        if worker_id >= 0
    )
    return peak // 8


class TestSpillObservability:
    def test_explain_analyze_shows_spill_lines(self, q1_tight_cap):
        shark = _build(memory_per_worker_bytes=q1_tight_cap)
        text = shark.explain_analyze(QUERIES["tpch_q1"])
        assert "== memory ==" in text
        assert "spills:" in text
        assert "spill " in text  # per-owner attribution line

    def test_event_log_and_history_carry_spills(self, tmp_path, q1_tight_cap):
        path = tmp_path / "events.jsonl"
        shark = _build(memory_per_worker_bytes=q1_tight_cap)
        shark.enable_event_log(path, source="test", seed=1)
        _run(shark, QUERIES["tpch_q1"])
        shark.close_event_log()
        from repro.obs.history import HistoryStore

        store = HistoryStore.load(path)
        spills = store.memory_spills()
        assert spills and all(row["bytes"] > 0 for row in spills)
        report = store.memory_report()
        assert "spill report" in report
        # Rebuilt profiles carry the per-task spill volumes (schema v3).
        record = store.queries[0]
        rebuilt = record.rebuild_profiles()
        assert sum(
            task.spill_bytes_written
            for profile in rebuilt
            for stage in profile.stages
            for task in stage.tasks
        ) > 0

    def test_profile_describe_mentions_spills(self, q1_tight_cap):
        shark = _build(memory_per_worker_bytes=q1_tight_cap)
        _run(shark, QUERIES["tpch_q1"])
        described = "\n".join(
            profile.describe() for profile in shark.engine.profiles
        )
        assert "spills:" in described

"""Parser: statements, clauses, precedence, errors."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse, parse_expression


class TestSelectBasics:
    def test_simple_select(self):
        statement = parse("SELECT a, b FROM t")
        assert isinstance(statement, ast.SelectStatement)
        assert len(statement.items) == 2
        assert isinstance(statement.relation, ast.TableRef)

    def test_star_and_qualified_star(self):
        statement = parse("SELECT *, t.* FROM t")
        assert isinstance(statement.items[0].expr, ast.Star)
        assert statement.items[1].expr.qualifier == "t"

    def test_aliases_with_and_without_as(self):
        statement = parse("SELECT a AS x, b y FROM t")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_where_group_having_order_limit(self):
        statement = parse(
            "SELECT a, COUNT(*) FROM t WHERE a > 1 GROUP BY a "
            "HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 5"
        )
        assert statement.where is not None
        assert len(statement.group_by) == 1
        assert statement.having is not None
        assert not statement.order_by[0].ascending
        assert statement.limit == 5

    def test_distribute_by(self):
        statement = parse("SELECT * FROM t DISTRIBUTE BY k")
        assert len(statement.distribute_by) == 1

    def test_union_all(self):
        statement = parse("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert len(statement.union_all) == 1

    def test_select_without_from(self):
        statement = parse("SELECT 1 + 1")
        assert statement.relation is None

    def test_trailing_semicolon(self):
        parse("SELECT 1;")

    def test_garbage_after_statement(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM t extra garbage ,")


class TestJoins:
    def test_inner_join_on(self):
        statement = parse("SELECT * FROM a JOIN b ON a.k = b.k")
        join = statement.relation
        assert isinstance(join, ast.JoinRef)
        assert join.join_type == "inner"
        assert join.condition is not None

    def test_outer_join_variants(self):
        for sql_type, expected in [
            ("LEFT JOIN", "left"),
            ("LEFT OUTER JOIN", "left"),
            ("RIGHT JOIN", "right"),
            ("FULL OUTER JOIN", "full"),
        ]:
            join = parse(f"SELECT * FROM a {sql_type} b ON a.k = b.k").relation
            assert join.join_type == expected

    def test_comma_means_cross_join(self):
        join = parse("SELECT * FROM a, b WHERE a.k = b.k").relation
        assert isinstance(join, ast.JoinRef)
        assert join.condition is None

    def test_chained_joins(self):
        join = parse(
            "SELECT * FROM a JOIN b ON a.k = b.k JOIN c ON b.j = c.j"
        ).relation
        assert isinstance(join.left, ast.JoinRef)

    def test_subquery_in_from(self):
        statement = parse("SELECT x FROM (SELECT a x FROM t) sub")
        assert isinstance(statement.relation, ast.SubqueryRef)
        assert statement.relation.alias == "sub"


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_logic(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not(self):
        expr = parse_expression("NOT a > 1")
        assert isinstance(expr, ast.UnaryOp)

    def test_unary_minus_and_plus(self):
        assert isinstance(parse_expression("-x"), ast.UnaryOp)
        assert isinstance(parse_expression("+x"), ast.ColumnRef)

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)
        negated = parse_expression("x NOT BETWEEN 1 AND 10")
        assert negated.negated

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.options) == 3

    def test_like(self):
        expr = parse_expression("name LIKE 'a%'")
        assert isinstance(expr, ast.Like)
        assert parse_expression("name NOT LIKE 'a%'").negated

    def test_is_null(self):
        assert isinstance(parse_expression("x IS NULL"), ast.IsNull)
        assert parse_expression("x IS NOT NULL").negated

    def test_case_searched(self):
        expr = parse_expression(
            "CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END"
        )
        assert isinstance(expr, ast.CaseWhen)
        assert expr.operand is None
        assert len(expr.branches) == 2

    def test_case_simple(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'one' END")
        assert expr.operand is not None

    def test_cast(self):
        expr = parse_expression("CAST(x AS INT)")
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "int"

    def test_function_calls(self):
        expr = parse_expression("SUBSTR(ip, 1, 7)")
        assert isinstance(expr, ast.FunctionCall)
        assert len(expr.args) == 3

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT x)")
        assert expr.distinct

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_date_literal(self):
        expr = parse_expression("DATE '2000-01-15'")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "date"

    def test_qualified_column(self):
        expr = parse_expression("t.col")
        assert expr.qualifier == "t"

    def test_literals(self):
        assert parse_expression("42").value == 42
        assert parse_expression("4.5").value == 4.5
        assert parse_expression("'s'").value == "s"
        assert parse_expression("true").value is True
        assert parse_expression("NULL").value is None

    def test_soft_keyword_as_column(self):
        expr = parse_expression("date > 5")
        assert isinstance(expr.left, ast.ColumnRef)
        assert expr.left.name == "date"


class TestDdlDml:
    def test_create_with_columns(self):
        statement = parse("CREATE TABLE t (a INT, b STRING)")
        assert [c.name for c in statement.columns] == ["a", "b"]

    def test_create_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists

    def test_create_with_properties_and_ctas(self):
        statement = parse(
            "CREATE TABLE m TBLPROPERTIES ('shark.cache' = 'true', "
            "'copartition' = 'other') AS SELECT * FROM t DISTRIBUTE BY k"
        )
        assert statement.properties == {
            "shark.cache": "true", "copartition": "other",
        }
        assert statement.as_select is not None

    def test_boolean_property_value(self):
        statement = parse(
            'CREATE TABLE m TBLPROPERTIES ("shark.cache"=true) AS SELECT 1'
        )
        assert statement.properties["shark.cache"] == "true"

    def test_drop(self):
        assert parse("DROP TABLE t").name == "t"
        assert parse("DROP TABLE IF EXISTS t").if_exists

    def test_insert_values(self):
        statement = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert len(statement.values) == 2

    def test_insert_select(self):
        statement = parse("INSERT INTO t SELECT * FROM u")
        assert statement.select is not None

    def test_explain(self):
        statement = parse("EXPLAIN SELECT 1")
        assert isinstance(statement, ast.Explain)

    def test_cache_uncache(self):
        assert not parse("CACHE TABLE t").uncache
        assert parse("UNCACHE TABLE t").uncache

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse("FROB THE TABLE")

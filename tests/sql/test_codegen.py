"""Expression codegen: compiled evaluation must match interpretation.

Implements the future work of Section 5 ("bytecode compilation of
expression evaluators"); these tests cross-check compiled output against
the interpreted tree on every node type, three-valued logic included.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SharkContext
from repro.datatypes import BOOLEAN, DOUBLE, INT, STRING, Schema
from repro.sql.codegen import (
    compile_expression,
    compile_predicate,
    compile_projection,
)
from repro.sql.expressions import (
    BoundAnd,
    BoundArithmetic,
    BoundBetween,
    BoundCase,
    BoundColumn,
    BoundComparison,
    BoundIn,
    BoundIsNull,
    BoundLike,
    BoundLiteral,
    BoundNegate,
    BoundNot,
    BoundOr,
    BoundScalarCall,
)


def col(index, data_type=INT):
    return BoundColumn(index, data_type, f"c{index}")


def lit(value, data_type=INT):
    return BoundLiteral(value, data_type)


def check(expr, rows):
    compiled = compile_expression(expr)
    assert compiled is not None
    for row in rows:
        assert compiled(row) == expr.eval(row), (expr.name, row)


NUMERIC_ROWS = [
    (5, 7), (7, 5), (0, 0), (None, 3), (3, None), (None, None), (-2, 2),
]


class TestNodeCoverage:
    def test_arithmetic_all_ops(self):
        for op in ("+", "-", "*", "%", "/"):
            check(BoundArithmetic(op, col(0), col(1)),
                  [(6, 3), (5, 0) if op in ("/", "%") else (5, 2),
                   (None, 1), (1, None)])

    def test_division_by_zero_null(self):
        compiled = compile_expression(BoundArithmetic("/", col(0), col(1)))
        assert compiled((4, 0)) is None

    def test_comparisons(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            check(BoundComparison(op, col(0), col(1)), NUMERIC_ROWS)

    def test_kleene_logic(self):
        t, f, n = (
            lit(True, BOOLEAN), lit(False, BOOLEAN), lit(None, BOOLEAN),
        )
        for left in (t, f, n):
            for right in (t, f, n):
                check(BoundAnd(left, right), [()])
                check(BoundOr(left, right), [()])

    def test_short_circuit_preserved(self):
        # AND with false left must not evaluate the right side.
        calls = []

        def boom(v):
            calls.append(v)
            return True

        right = BoundScalarCall("boom", boom, [col(0)], BOOLEAN)
        expr = BoundAnd(lit(False, BOOLEAN), right)
        compiled = compile_expression(expr)
        assert compiled((1,)) is False
        assert calls == []

    def test_not_negate(self):
        check(BoundNot(BoundComparison(">", col(0), lit(3))), NUMERIC_ROWS)
        check(BoundNegate(col(0)), [(5,), (None,), (-3,)])

    def test_between(self):
        rows = [(5,), (0,), (10,), (11,), (None,)]
        check(BoundBetween(col(0), lit(1), lit(10)), rows)
        check(BoundBetween(col(0), lit(1), lit(10), negated=True), rows)

    def test_in_constant_and_dynamic(self):
        rows = [(1,), (4,), (None,)]
        check(BoundIn(col(0), [lit(1), lit(2)]), rows)
        check(BoundIn(col(0), [lit(1)], negated=True), rows)
        check(BoundIn(col(0), [col(0)]), rows)  # dynamic option list

    def test_like_static_and_dynamic(self):
        rows = [("url7",), ("x",), (None,)]
        check(BoundLike(col(0, STRING), lit("url%", STRING)), rows)
        check(
            BoundLike(col(0, STRING), lit("url%", STRING), negated=True),
            rows,
        )
        dynamic = BoundLike(col(0, STRING), col(1, STRING))
        check(dynamic, [("abc", "a%"), ("abc", "b%"), (None, "a%")])

    def test_is_null(self):
        rows = [(1,), (None,)]
        check(BoundIsNull(col(0)), rows)
        check(BoundIsNull(col(0), negated=True), rows)

    def test_case_chain(self):
        expr = BoundCase(
            [
                (BoundComparison(">", col(0), lit(10)), lit("big", STRING)),
                (BoundComparison(">", col(0), lit(5)), lit("mid", STRING)),
            ],
            lit("small", STRING),
            STRING,
        )
        check(expr, [(20,), (7,), (1,), (None,)])

    def test_case_without_else(self):
        expr = BoundCase(
            [(BoundComparison(">", col(0), lit(10)), lit(1))], None, INT
        )
        check(expr, [(20,), (1,)])

    def test_scalar_calls(self):
        upper = BoundScalarCall(
            "upper", str.upper, [col(0, STRING)], STRING
        )
        check(upper, [("abc",), (None,)])
        coalesce = BoundScalarCall(
            "coalesce",
            lambda *vs: next((v for v in vs if v is not None), None),
            [col(0), col(1)],
            INT,
            null_propagating=False,
        )
        check(coalesce, [(None, 5), (3, 5), (None, None)])

    def test_nested_composition(self):
        expr = BoundOr(
            BoundAnd(
                BoundComparison(">", col(0), lit(2)),
                BoundBetween(col(1), lit(0), lit(9)),
            ),
            BoundIsNull(col(0)),
        )
        check(expr, NUMERIC_ROWS)


class TestProjectionAndPredicate:
    def test_projection_tuple(self):
        projection = compile_projection(
            [BoundArithmetic("*", col(0), lit(2)), col(1)]
        )
        assert projection((3, "x")) == (6, "x")

    def test_single_column_projection(self):
        projection = compile_projection([col(0)])
        assert projection((9,)) == (9,)

    def test_predicate_true_only(self):
        predicate = compile_predicate(BoundComparison(">", col(0), lit(3)))
        assert predicate((4,)) is True
        assert predicate((2,)) is False
        assert predicate((None,)) is False  # NULL is not TRUE


class TestEndToEnd:
    def test_codegen_matches_interpreted_query(self):
        from dataclasses import replace

        shark = SharkContext(num_workers=2)
        shark.create_table(
            "t", Schema.of(("a", INT), ("b", STRING), ("c", DOUBLE)),
            cached=True,
        )
        rows = [
            (i, f"s{i % 4}", float(i) / 3.0) if i % 5 else (i, None, None)
            for i in range(200)
        ]
        shark.load_rows("t", rows)
        query = (
            "SELECT a * 2, UPPER(b), CASE WHEN c > 20 THEN 'hi' ELSE 'lo' "
            "END FROM t WHERE (a BETWEEN 10 AND 150 AND b LIKE 's%') "
            "OR c IS NULL"
        )
        with_codegen = sorted(shark.sql(query).rows, key=repr)
        shark.session.config = replace(
            shark.session.config, enable_codegen=False
        )
        interpreted = sorted(shark.sql(query).rows, key=repr)
        assert with_codegen == interpreted


class TestPropertyEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-100, 100)),
                st.one_of(st.none(), st.integers(-100, 100)),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(-50, 50),
        st.integers(-50, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_predicates_match(self, rows, low, high):
        expr = BoundOr(
            BoundAnd(
                BoundComparison(">", col(0), lit(low)),
                BoundComparison("<=", col(1), lit(high)),
            ),
            BoundBetween(col(0), lit(low), lit(high)),
        )
        compiled = compile_expression(expr)
        for row in rows:
            assert compiled(row) == expr.eval(row)

"""Exhaustive vectorized-vs-row parity harness.

The batch pipeline (``PlannerConfig.vectorize=True``, the default) must
be an invisible optimization: every query returns byte-identical rows to
the serial row-at-a-time interpreter.  This harness runs every TPC-H and
Pavlo workload query with vectorization on and off, across compression
on/off (``shark.compress`` table property) and 1 vs 4 partitions, and
compares sorted results with exact types — ``repr`` equality on floats,
so ``-0.0`` vs ``0.0`` or any accumulation-order drift fails loudly.

A chaos section repeats the comparison under the fault injector (task
retries plus speculative stragglers): recovery re-execution must not
perturb batch results either.
"""

from dataclasses import replace

import pytest

from repro import SharkContext
from repro.datatypes import BOOLEAN
from repro.faults.injector import FaultInjector
from repro.workloads import pavlo, tpch

TPCH_Q1 = """
    SELECT L_RETURNFLAG, L_LINESTATUS,
           SUM(L_QUANTITY) AS sum_qty,
           SUM(L_EXTENDEDPRICE) AS sum_base,
           SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS sum_disc,
           AVG(L_QUANTITY) AS avg_qty,
           COUNT(*) AS count_order
    FROM lineitem
    WHERE L_SHIPDATE <= DATE '1998-09-02'
    GROUP BY L_RETURNFLAG, L_LINESTATUS
    ORDER BY L_RETURNFLAG, L_LINESTATUS
"""

TPCH_Q3 = """
    SELECT o.O_ORDERKEY,
           SUM(l.L_EXTENDEDPRICE * (1 - l.L_DISCOUNT)) AS revenue,
           o.O_ORDERDATE
    FROM customer c
    JOIN orders o ON c.C_CUSTKEY = o.O_CUSTKEY
    JOIN lineitem l ON l.L_ORDERKEY = o.O_ORDERKEY
    WHERE c.C_MKTSEGMENT = 'BUILDING'
      AND o.O_ORDERDATE < DATE '1995-03-15'
    GROUP BY o.O_ORDERKEY, o.O_ORDERDATE
    ORDER BY revenue DESC
    LIMIT 10
"""

TPCH_Q6 = """
    SELECT SUM(L_EXTENDEDPRICE * L_DISCOUNT) AS revenue
    FROM lineitem
    WHERE L_SHIPDATE >= DATE '1994-01-01'
      AND L_SHIPDATE < DATE '1995-01-01'
      AND L_DISCOUNT BETWEEN 0.01 AND 0.06
      AND L_QUANTITY < 24
"""

QUERIES = {
    "tpch_q1": TPCH_Q1,
    "tpch_q3": TPCH_Q3,
    "tpch_q6": TPCH_Q6,
    "tpch_agg_1": tpch.AGGREGATION_QUERIES[1],
    "tpch_agg_7": tpch.AGGREGATION_QUERIES[7],
    "tpch_agg_2500": tpch.AGGREGATION_QUERIES[2500],
    "tpch_agg_max": tpch.AGGREGATION_QUERIES["max"],
    "tpch_pde_join": tpch.PDE_JOIN_QUERY,
    "pavlo_selection": pavlo.SELECTION_QUERY.format(cutoff=50),
    "pavlo_agg_full": pavlo.AGGREGATION_FULL_QUERY,
    "pavlo_agg_substr": pavlo.AGGREGATION_SUBSTR_QUERY,
    "pavlo_join": pavlo.JOIN_QUERY,
}


def _datasets():
    return {
        "lineitem": tpch.generate_lineitem(3000),
        "orders": tpch.generate_orders(800),
        "customer": tpch.generate_customer(100),
        "supplier": tpch.generate_supplier(60),
        "rankings": pavlo.generate_rankings(600),
        "uservisits": pavlo.generate_uservisits(
            1500, num_pages=600, num_ips=120
        ),
    }


def _build(compress: bool, partitions: int, **context_kwargs):
    shark = SharkContext(num_workers=4, cores_per_worker=2, **context_kwargs)
    properties = None if compress else {"shark.compress": "false"}
    for name, data in _datasets().items():
        shark.create_table(
            name, data.schema, cached=True, properties=properties
        )
        shark.load_rows(name, data.rows, num_partitions=partitions)
    shark.register_udf(
        "SOME_UDF", lambda addr: addr.endswith("7"), return_type=BOOLEAN
    )
    return shark


def _run(shark, query, vectorize):
    shark.session.config = replace(shark.session.config, vectorize=vectorize)
    return shark.sql(query).rows


def _canonical(rows):
    return sorted((tuple(row) for row in rows), key=repr)


def assert_byte_identical(vectorized, row_mode):
    assert len(vectorized) == len(row_mode)
    for got, want in zip(_canonical(vectorized), _canonical(row_mode)):
        assert len(got) == len(want)
        for x, y in zip(got, want):
            assert type(x) is type(y), (x, y)
            # repr equality: catches -0.0 vs 0.0 and any float drift
            # that value equality would forgive.
            assert repr(x) == repr(y), (x, y)


@pytest.fixture(
    scope="module",
    params=[
        pytest.param((True, 1), id="compressed-1part"),
        pytest.param((True, 4), id="compressed-4part"),
        pytest.param((False, 1), id="uncompressed-1part"),
        pytest.param((False, 4), id="uncompressed-4part"),
    ],
)
def warehouse(request):
    compress, partitions = request.param
    return _build(compress, partitions)


class TestVectorizedParity:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_query_parity(self, warehouse, name):
        query = QUERIES[name]
        assert_byte_identical(
            _run(warehouse, query, vectorize=True),
            _run(warehouse, query, vectorize=False),
        )

    def test_vectorize_off_reports_row_modes(self, warehouse):
        _run(warehouse, QUERIES["tpch_agg_7"], vectorize=False)
        modes = dict(warehouse.last_report.operator_modes)
        assert modes and all(mode == "row" for mode in modes.values())

    def test_vectorize_on_reports_vectorized_scan(self, warehouse):
        _run(warehouse, QUERIES["tpch_agg_7"], vectorize=True)
        modes = dict(warehouse.last_report.operator_modes)
        assert any(
            op.startswith("scan(") and mode.startswith("vectorized")
            for op, mode in modes.items()
        )


class TestChaosParity:
    """Batch pipeline under fault injection == clean serial row path.

    Task retries and speculative straggler backups re-execute batch
    tasks from lineage; the recovered results must still match the row
    interpreter bit for bit.
    """

    CHAOS_QUERIES = ["tpch_q1", "tpch_agg_max", "pavlo_agg_full"]

    @pytest.fixture(scope="class")
    def clean_rows(self):
        shark = _build(True, 4)
        return {
            name: _run(shark, QUERIES[name], vectorize=False)
            for name in self.CHAOS_QUERIES
        }

    @pytest.mark.parametrize("name", CHAOS_QUERIES)
    def test_chaos_batch_matches_clean_rows(self, clean_rows, name):
        injector = FaultInjector(
            seed=13,
            transient_failure_rate=0.25,
            stragglers_per_stage=1,
        )
        chaotic = _build(True, 4, fault_injector=injector)
        got = _run(chaotic, QUERIES[name], vectorize=True)
        assert_byte_identical(got, clean_rows[name])

"""Extended Hive-style builtins: regex, padding, greatest/least, dates."""

from datetime import date

import pytest

from repro import SharkContext
from repro.datatypes import INT, STRING, Schema


@pytest.fixture(scope="module")
def shark():
    shark = SharkContext(num_workers=2)
    shark.create_table(
        "t", Schema.of(("s", STRING), ("n", INT), ("m", INT)), cached=True
    )
    shark.load_rows(
        "t",
        [
            ("alpha-1", 3, 9),
            ("beta-22", 7, None),
            ("gamma-333", None, 4),
        ],
    )
    return shark


class TestRegexFunctions:
    def test_regexp_extract(self, shark):
        result = shark.sql(
            "SELECT REGEXP_EXTRACT(s, '([0-9]+)', 1) FROM t"
        )
        assert [row[0] for row in result.rows] == ["1", "22", "333"]

    def test_regexp_extract_no_match(self, shark):
        assert shark.sql(
            "SELECT REGEXP_EXTRACT('abc', '([0-9]+)', 1)"
        ).scalar() == ""

    def test_regexp_replace(self, shark):
        assert shark.sql(
            "SELECT REGEXP_REPLACE('a1b2', '[0-9]', '#')"
        ).scalar() == "a#b#"

    def test_split(self, shark):
        assert shark.sql("SELECT SPLIT('a-b-c', '-')").scalar() == [
            "a", "b", "c",
        ]


class TestPadding:
    def test_lpad_rpad(self, shark):
        result = shark.sql("SELECT LPAD('ab', 5, '*'), RPAD('ab', 5, '*')")
        assert result.rows[0] == ("***ab", "ab***")

    def test_pad_truncates(self, shark):
        assert shark.sql("SELECT LPAD('abcdef', 3, '*')").scalar() == "abc"


class TestGreatestLeast:
    def test_basic(self, shark):
        result = shark.sql("SELECT GREATEST(n, m), LEAST(n, m) FROM t")
        assert result.rows[0] == (9, 3)

    def test_null_handling_skips_nulls(self, shark):
        # Hive GREATEST returns the max over non-NULL inputs here.
        result = shark.sql(
            "SELECT GREATEST(n, m) FROM t WHERE s = 'beta-22'"
        )
        assert result.scalar() == 7

    def test_strings(self, shark):
        assert shark.sql("SELECT GREATEST('b', 'a', 'c')").scalar() == "c"


class TestDateArithmetic:
    def test_date_add_sub(self, shark):
        result = shark.sql(
            "SELECT DATE_ADD('2000-01-15', 7), DATE_SUB('2000-01-15', 14)"
        )
        assert result.rows[0] == (date(2000, 1, 22), date(2000, 1, 1))

    def test_datediff_roundtrip(self, shark):
        assert shark.sql(
            "SELECT DATEDIFF(DATE_ADD('2020-05-01', 30), '2020-05-01')"
        ).scalar() == 30

    def test_date_comparisons_in_where(self, shark):
        shark.sql(
            "CREATE TABLE events (d STRING) "
            "TBLPROPERTIES ('shark.cache'='true')"
        )
        shark.sql(
            "INSERT INTO events VALUES ('2020-01-05'), ('2020-02-05')"
        )
        result = shark.sql(
            "SELECT COUNT(*) FROM events "
            "WHERE DATE(d) < DATE '2020-02-01'"
        )
        assert result.scalar() == 1

"""Bound expression evaluation, null semantics, signatures."""

import pytest

from repro.datatypes import BOOLEAN, DOUBLE, INT, STRING
from repro.errors import TypeMismatchError
from repro.sql.expressions import (
    BoundAnd,
    BoundArithmetic,
    BoundBetween,
    BoundCase,
    BoundColumn,
    BoundComparison,
    BoundIn,
    BoundIsNull,
    BoundLike,
    BoundLiteral,
    BoundNegate,
    BoundNot,
    BoundOr,
    BoundScalarCall,
    expr_signature,
    like_to_regex,
    rewrite_columns,
)


def col(index, data_type=INT, name="c"):
    return BoundColumn(index, data_type, name)


def lit(value, data_type=INT):
    return BoundLiteral(value, data_type)


class TestArithmetic:
    def test_basic_ops(self):
        row = (10, 3)
        assert BoundArithmetic("+", col(0), col(1)).eval(row) == 13
        assert BoundArithmetic("-", col(0), col(1)).eval(row) == 7
        assert BoundArithmetic("*", col(0), col(1)).eval(row) == 30
        assert BoundArithmetic("%", col(0), col(1)).eval(row) == 1

    def test_division_returns_double_and_null_on_zero(self):
        expr = BoundArithmetic("/", col(0), col(1))
        assert expr.data_type == DOUBLE
        assert expr.eval((10, 4)) == 2.5
        assert expr.eval((10, 0)) is None

    def test_null_propagates(self):
        expr = BoundArithmetic("+", col(0), col(1))
        assert expr.eval((None, 1)) is None
        assert expr.eval((1, None)) is None

    def test_type_promotion(self):
        expr = BoundArithmetic("+", col(0, INT), col(1, DOUBLE))
        assert expr.data_type == DOUBLE

    def test_string_plus_rejected(self):
        with pytest.raises(TypeMismatchError):
            BoundArithmetic("+", col(0, STRING), col(1, STRING))


class TestComparisons:
    def test_all_operators(self):
        row = (5, 7)
        assert BoundComparison("<", col(0), col(1)).eval(row) is True
        assert BoundComparison("<=", col(0), col(1)).eval(row) is True
        assert BoundComparison(">", col(0), col(1)).eval(row) is False
        assert BoundComparison(">=", col(0), col(1)).eval(row) is False
        assert BoundComparison("=", col(0), col(1)).eval(row) is False
        assert BoundComparison("<>", col(0), col(1)).eval(row) is True

    def test_null_yields_null(self):
        expr = BoundComparison("=", col(0), col(1))
        assert expr.eval((None, 1)) is None


class TestThreeValuedLogic:
    def test_and_kleene(self):
        true, false, null = lit(True, BOOLEAN), lit(False, BOOLEAN), lit(None, BOOLEAN)
        assert BoundAnd(true, true).eval(()) is True
        assert BoundAnd(true, false).eval(()) is False
        assert BoundAnd(false, null).eval(()) is False
        assert BoundAnd(true, null).eval(()) is None
        assert BoundAnd(null, null).eval(()) is None

    def test_or_kleene(self):
        true, false, null = lit(True, BOOLEAN), lit(False, BOOLEAN), lit(None, BOOLEAN)
        assert BoundOr(false, true).eval(()) is True
        assert BoundOr(false, false).eval(()) is False
        assert BoundOr(null, true).eval(()) is True
        assert BoundOr(false, null).eval(()) is None

    def test_not(self):
        assert BoundNot(lit(True, BOOLEAN)).eval(()) is False
        assert BoundNot(lit(None, BOOLEAN)).eval(()) is None

    def test_negate(self):
        assert BoundNegate(lit(5)).eval(()) == -5
        assert BoundNegate(lit(None)).eval(()) is None


class TestPredicates:
    def test_between(self):
        expr = BoundBetween(col(0), lit(1), lit(10))
        assert expr.eval((5,)) is True
        assert expr.eval((0,)) is False
        assert expr.eval((None,)) is None

    def test_between_negated(self):
        expr = BoundBetween(col(0), lit(1), lit(10), negated=True)
        assert expr.eval((5,)) is False
        assert expr.eval((50,)) is True

    def test_in_constant_fast_path(self):
        expr = BoundIn(col(0), [lit(1), lit(2)])
        assert expr._constant_set is not None
        assert expr.eval((1,)) is True
        assert expr.eval((3,)) is False
        assert expr.eval((None,)) is None

    def test_in_dynamic_options(self):
        expr = BoundIn(col(0), [col(1)])
        assert expr._constant_set is None
        assert expr.eval((3, 3)) is True
        assert expr.eval((3, 4)) is False

    def test_in_negated(self):
        expr = BoundIn(col(0), [lit(1)], negated=True)
        assert expr.eval((2,)) is True

    def test_is_null(self):
        assert BoundIsNull(col(0)).eval((None,)) is True
        assert BoundIsNull(col(0)).eval((1,)) is False
        assert BoundIsNull(col(0), negated=True).eval((1,)) is True


class TestLike:
    def test_percent_and_underscore(self):
        regex = like_to_regex("a%b_c")
        assert regex.match("aXXXbYc")
        assert not regex.match("ab_c_extra")

    def test_special_chars_escaped(self):
        regex = like_to_regex("10.5%")
        assert regex.match("10.5 off")
        assert not regex.match("1085")

    def test_like_expression(self):
        expr = BoundLike(col(0, STRING), lit("url%", STRING))
        assert expr.eval(("url123",)) is True
        assert expr.eval(("xurl",)) is False
        assert expr.eval((None,)) is None

    def test_like_dynamic_pattern(self):
        expr = BoundLike(col(0, STRING), col(1, STRING))
        assert expr.eval(("abc", "a%")) is True

    def test_not_like(self):
        expr = BoundLike(col(0, STRING), lit("a%", STRING), negated=True)
        assert expr.eval(("b",)) is True


class TestCase:
    def test_first_match_wins(self):
        expr = BoundCase(
            [
                (BoundComparison(">", col(0), lit(10)), lit("big", STRING)),
                (BoundComparison(">", col(0), lit(5)), lit("mid", STRING)),
            ],
            lit("small", STRING),
            STRING,
        )
        assert expr.eval((20,)) == "big"
        assert expr.eval((7,)) == "mid"
        assert expr.eval((1,)) == "small"

    def test_no_else_yields_null(self):
        expr = BoundCase(
            [(BoundComparison(">", col(0), lit(10)), lit(1))], None, INT
        )
        assert expr.eval((5,)) is None


class TestScalarCall:
    def test_null_propagating(self):
        expr = BoundScalarCall("len", len, [col(0, STRING)], INT)
        assert expr.eval(("abc",)) == 3
        assert expr.eval((None,)) is None

    def test_non_propagating(self):
        fn = lambda a, b: b if a is None else a  # noqa: E731
        expr = BoundScalarCall(
            "nvl", fn, [col(0), lit(9)], INT, null_propagating=False
        )
        assert expr.eval((None,)) == 9


class TestReferencesAndRewrite:
    def test_references_collects_all(self):
        expr = BoundAnd(
            BoundComparison("=", col(0), col(3)),
            BoundBetween(col(5), lit(1), lit(2)),
        )
        assert expr.references() == {0, 3, 5}

    def test_rewrite_remaps_without_mutating_original(self):
        original = BoundComparison("=", col(2), lit(1))
        rewritten = rewrite_columns(original, {2: 0})
        assert rewritten.eval((1,)) is True
        assert original.left.index == 2

    def test_rewrite_nested(self):
        expr = BoundCase(
            [(BoundComparison(">", col(4), lit(0)), col(5))], col(6), INT
        )
        rewritten = rewrite_columns(expr, {4: 0, 5: 1, 6: 2})
        assert rewritten.eval((1, "then", "else")) == "then"
        assert rewritten.eval((-1, "then", "else")) == "else"


class TestSignatures:
    def test_same_column_same_signature_regardless_of_name(self):
        assert expr_signature(col(3, INT, "a.x")) == expr_signature(
            col(3, INT, "x")
        )

    def test_different_columns_differ(self):
        assert expr_signature(col(1)) != expr_signature(col(2))

    def test_operator_included(self):
        left = BoundComparison("<", col(0), lit(1))
        right = BoundComparison(">", col(0), lit(1))
        assert expr_signature(left) != expr_signature(right)

    def test_function_name_included(self):
        f = BoundScalarCall("upper", str.upper, [col(0, STRING)], STRING)
        g = BoundScalarCall("lower", str.lower, [col(0, STRING)], STRING)
        assert expr_signature(f) != expr_signature(g)

    def test_literal_value_included(self):
        assert expr_signature(lit(1)) != expr_signature(lit(2))

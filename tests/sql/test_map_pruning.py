"""Map pruning: partitions skipped by statistics (paper Section 3.5)."""

from dataclasses import replace

import pytest

from repro import SharkContext
from repro.columnar.stats import ColumnStats, PartitionStats
from repro.datatypes import INT, STRING, Schema
from repro.sql.planner import PlannerConfig
from repro.workloads import warehouse


@pytest.fixture
def clustered():
    """A logs table loaded with one partition per day (natural clustering)."""
    shark = SharkContext(num_workers=4)
    shark.create_table(
        "logs", Schema.of(("day", INT), ("country", STRING), ("hits", INT)),
        cached=True,
    )
    rows = [
        (day, ["US", "BR", "DE"][day % 3], day * 100 + i)
        for day in range(20)
        for i in range(30)
    ]
    shark.load_rows("logs", rows, num_partitions=20)
    return shark, rows


class TestPruningDecisions:
    def test_equality_prunes_to_one_partition(self, clustered):
        shark, rows = clustered
        result = shark.sql("SELECT COUNT(*) FROM logs WHERE day = 7")
        assert result.scalar() == 30
        assert result.report.scanned_partitions == 1
        assert result.report.pruned_partitions == 19

    def test_range_prunes_partial(self, clustered):
        shark, rows = clustered
        result = shark.sql(
            "SELECT COUNT(*) FROM logs WHERE day >= 5 AND day < 10"
        )
        assert result.scalar() == 150
        assert result.report.scanned_partitions == 5

    def test_between_prunes(self, clustered):
        shark, rows = clustered
        result = shark.sql(
            "SELECT COUNT(*) FROM logs WHERE day BETWEEN 3 AND 4"
        )
        assert result.scalar() == 60
        assert result.report.scanned_partitions == 2

    def test_in_list_prunes_by_distinct_values(self, clustered):
        shark, rows = clustered
        result = shark.sql(
            "SELECT COUNT(*) FROM logs WHERE day IN (1, 15)"
        )
        assert result.scalar() == 60
        assert result.report.scanned_partitions == 2

    def test_enum_column_pruning(self, clustered):
        shark, rows = clustered
        result = shark.sql(
            "SELECT COUNT(*) FROM logs WHERE country = 'US'"
        )
        want = sum(1 for r in rows if r[1] == "US")
        assert result.scalar() == want
        # Only the US-bearing day-partitions scanned (one per 3 days).
        assert result.report.scanned_partitions <= 7

    def test_impossible_predicate_prunes_everything(self, clustered):
        shark, rows = clustered
        result = shark.sql("SELECT COUNT(*) FROM logs WHERE day = 999")
        assert result.scalar() == 0
        assert result.report.scanned_partitions == 0

    def test_flipped_comparison_prunes(self, clustered):
        shark, rows = clustered
        result = shark.sql("SELECT COUNT(*) FROM logs WHERE 18 <= day")
        assert result.scalar() == 60
        assert result.report.scanned_partitions == 2

    def test_unprunable_predicate_scans_all(self, clustered):
        shark, rows = clustered
        result = shark.sql(
            "SELECT COUNT(*) FROM logs WHERE hits % 2 = 0"
        )
        assert result.report.pruned_partitions == 0


class TestPruningSafety:
    def test_disabled_pruning_matches_enabled(self, clustered):
        shark, rows = clustered
        query = "SELECT SUM(hits) FROM logs WHERE day BETWEEN 2 AND 9"
        with_pruning = shark.sql(query).scalar()
        shark.session.config = replace(
            shark.session.config, enable_map_pruning=False
        )
        without = shark.sql(query).scalar()
        assert with_pruning == without

    def test_or_predicates_never_mispruned(self, clustered):
        shark, rows = clustered
        # OR is not a conjunct; pruning must stay conservative.
        result = shark.sql(
            "SELECT COUNT(*) FROM logs WHERE day = 1 OR day = 19"
        )
        assert result.scalar() == 60

    def test_projection_with_pruning(self, clustered):
        shark, rows = clustered
        result = shark.sql(
            "SELECT country, COUNT(*) FROM logs WHERE day = 6 "
            "GROUP BY country"
        )
        assert dict(result.rows) == {"US": 30}


class TestMissingOrStaleStats:
    """Pruning must stay conservative when statistics are absent or
    stale: a partition whose stats cannot vouch for its contents is
    always scanned, never skipped."""

    def test_partition_with_no_stats_never_pruned(self, clustered):
        shark, rows = clustered
        entry = shark.session.catalog.get("logs")
        # As if the loading task died before publishing partition 7's
        # statistics: no per-column entries at all.
        entry.partition_stats[7] = PartitionStats({})
        result = shark.sql("SELECT COUNT(*) FROM logs WHERE day = 5")
        assert result.scalar() == 30
        # day-5 partition kept by its stats, partition 7 kept because
        # nothing vouches for it; the other 18 pruned.
        assert result.report.scanned_partitions == 2
        assert result.report.pruned_partitions == 18

    def test_partition_missing_one_column_never_pruned(self, clustered):
        shark, rows = clustered
        entry = shark.session.catalog.get("logs")
        # Stats exist but not for the predicate column (schema drift:
        # 'day' added after this partition's stats were collected).
        stale = {
            name: stats
            for name, stats in entry.partition_stats[3]._columns.items()
            if name != "day"
        }
        entry.partition_stats[3] = PartitionStats(stale)
        result = shark.sql("SELECT COUNT(*) FROM logs WHERE day = 5")
        assert result.scalar() == 30
        assert result.report.scanned_partitions == 2

    @pytest.mark.parametrize(
        "query",
        [
            "SELECT COUNT(*) FROM logs WHERE day = 5",
            "SELECT COUNT(*) FROM logs WHERE day > 15",
            "SELECT COUNT(*) FROM logs WHERE day BETWEEN 2 AND 4",
            "SELECT COUNT(*) FROM logs WHERE country IN ('US', 'DE')",
        ],
    )
    def test_stale_empty_stats_never_pruned(self, clustered, query):
        shark, rows = clustered
        entry = shark.session.catalog.get("logs")
        baseline = shark.sql(query).scalar()
        # Stale placeholder stats: entries exist for every column but
        # observed zero rows, while the partition itself holds data.
        for index in range(len(entry.partition_stats)):
            entry.partition_stats[index] = PartitionStats(
                {name: ColumnStats() for name in ("day", "country", "hits")}
            )
        result = shark.sql(query)
        assert result.scalar() == baseline
        assert result.report.pruned_partitions == 0

    def test_stale_stats_same_rows_both_modes(self, clustered):
        shark, rows = clustered
        entry = shark.session.catalog.get("logs")
        entry.partition_stats[0] = PartitionStats({})
        query = "SELECT country, SUM(hits) FROM logs WHERE day < 3 GROUP BY country"
        vectorized = shark.sql(query).rows
        shark.session.config = replace(shark.session.config, vectorize=False)
        row_mode = shark.sql(query).rows
        assert sorted(vectorized) == sorted(row_mode)


class TestWarehousePruning:
    def test_representative_queries_prune(self):
        shark = SharkContext(num_workers=4)
        data = warehouse.generate_sessions(num_days=15, rows_per_day=40)
        shark.create_table("sessions", data.schema, cached=True)
        shark.load_rows("sessions", data.rows, num_partitions=15)
        queries = warehouse.representative_queries(day=6)
        result = shark.sql(queries["q1"])
        assert result.report.pruned_partitions > 0
        q4 = shark.sql(queries["q4"])
        assert q4.report.scanned_partitions == 1

"""Join strategy selection: static broadcast, PDE, co-partitioned, shuffle."""

from dataclasses import replace

import pytest

from repro import SharkContext
from repro.datatypes import BOOLEAN, DOUBLE, INT, STRING, Schema
from repro.sql.planner import PlannerConfig


def _load(shark, big_rows=2000, small_rows=50):
    shark.create_table(
        "big", Schema.of(("k", INT), ("payload", STRING)), cached=True
    )
    shark.load_rows(
        "big", [(i % 100, f"row{i}") for i in range(big_rows)]
    )
    shark.create_table(
        "small", Schema.of(("k", INT), ("tag", STRING)), cached=True
    )
    shark.load_rows(
        "small", [(i, f"tag{i}") for i in range(small_rows)]
    )


JOIN_SQL = (
    "SELECT big.payload, small.tag FROM big JOIN small ON big.k = small.k"
)


def _reference(big_rows=2000, small_rows=50):
    small = {i: f"tag{i}" for i in range(small_rows)}
    out = []
    for i in range(big_rows):
        key = i % 100
        if key in small:
            out.append((f"row{i}", small[key]))
    return sorted(out)


class TestStaticSelection:
    def test_small_table_broadcast(self):
        shark = SharkContext(num_workers=4)
        _load(shark)
        result = shark.sql(JOIN_SQL)
        assert sorted(result.rows) == _reference()
        decisions = [d.strategy for d in result.report.join_decisions]
        assert decisions == ["broadcast_right"]

    def test_big_tables_shuffle(self):
        config = PlannerConfig(broadcast_threshold_bytes=16)
        shark = SharkContext(num_workers=4, config=config)
        _load(shark)
        result = shark.sql(JOIN_SQL)
        assert sorted(result.rows) == _reference()
        decisions = [d.strategy for d in result.report.join_decisions]
        assert decisions == ["shuffle"]

    def test_left_join_cannot_broadcast_left(self):
        shark = SharkContext(num_workers=4)
        _load(shark)
        result = shark.sql(
            "SELECT small.tag, big.payload FROM small "
            "LEFT JOIN big ON small.k = big.k"
        )
        # small is the preserved side: only big may be broadcast, and big
        # is large, so either broadcast of big was chosen or shuffle.
        strategies = {d.strategy for d in result.report.join_decisions}
        assert "broadcast_left" not in strategies
        matched = [row for row in result.rows if row[1] is not None]
        unmatched = [row for row in result.rows if row[1] is None]
        assert len(matched) == 2000 // 100 * 50 * 1  # 20 rows per key
        assert len(unmatched) == 0  # every small key appears in big


class TestPdeSelection:
    """Sizes unknown at compile time (UDF filter) -> run-time selection."""

    def _shark(self, threshold=4 * 1024 * 1024):
        config = PlannerConfig(
            enable_static_join_estimates=False,
            broadcast_threshold_bytes=threshold,
        )
        shark = SharkContext(num_workers=4, config=config)
        _load(shark)
        shark.register_udf(
            "selective", lambda t: t.endswith("7"), return_type=BOOLEAN
        )
        return shark

    def test_pde_switches_to_broadcast_after_observation(self):
        shark = self._shark()
        result = shark.sql(
            "SELECT big.payload FROM big JOIN small ON big.k = small.k "
            "WHERE selective(small.tag)"
        )
        decision = result.report.join_decisions[0]
        assert decision.strategy in ("broadcast_left", "broadcast_right")
        assert "PDE" in " ".join(result.report.notes)
        want = sorted(
            (f"row{i}",)
            for i in range(2000)
            if i % 100 < 50 and str(i % 100).endswith("7")
        )
        assert sorted(result.rows) == want

    def test_pde_falls_back_to_shuffle_when_observed_large(self):
        shark = self._shark(threshold=16)
        result = shark.sql(
            "SELECT big.payload FROM big JOIN small ON big.k = small.k "
            "WHERE selective(small.tag)"
        )
        assert result.report.join_decisions[0].strategy == "shuffle"

    def test_pre_shuffle_reused_not_recomputed(self):
        shark = self._shark(threshold=16)
        shark.engine.reset_profiles()
        shark.sql(
            "SELECT big.payload FROM big JOIN small ON big.k = small.k "
            "WHERE selective(small.tag)"
        )
        # Count shuffle-map task executions of the probed (small) side
        # across all jobs: the pre-shuffle ran them once; the final job
        # must have skipped them (0 extra tasks).
        probed_stage_runs = [
            stage.num_tasks
            for profile in shark.engine.profiles
            for stage in profile.stages
            if stage.is_shuffle_map and stage.records_in > 0
        ]
        # Each materialized shuffle-map stage executed exactly once.
        assert all(runs > 0 for runs in probed_stage_runs)


class TestCopartitionedJoin:
    def _shark(self):
        shark = SharkContext(num_workers=4)
        shark.sql(
            "CREATE TABLE l_mem TBLPROPERTIES ('shark.cache'='true') AS "
            "SELECT * FROM lineitem DISTRIBUTE BY k"
        ) if False else None
        return shark

    def test_ctas_distribute_by_enables_narrow_join(self):
        shark = SharkContext(num_workers=4)
        shark.create_table(
            "raw_l", Schema.of(("k", INT), ("v", DOUBLE)), cached=True
        )
        shark.load_rows("raw_l", [(i % 40, float(i)) for i in range(400)])
        shark.create_table(
            "raw_o", Schema.of(("k", INT), ("w", STRING)), cached=True
        )
        shark.load_rows("raw_o", [(i, f"o{i}") for i in range(40)])

        shark.sql(
            "CREATE TABLE l_mem TBLPROPERTIES ('shark.cache'='true') "
            "AS SELECT * FROM raw_l DISTRIBUTE BY k"
        )
        shark.sql(
            "CREATE TABLE o_mem TBLPROPERTIES ('shark.cache'='true', "
            "'copartition'='l_mem') AS SELECT * FROM raw_o DISTRIBUTE BY k"
        )
        result = shark.sql(
            "SELECT l_mem.v, o_mem.w FROM l_mem "
            "JOIN o_mem ON l_mem.k = o_mem.k"
        )
        decisions = [d.strategy for d in result.report.join_decisions]
        assert decisions == ["copartitioned"]
        assert len(result.rows) == 400

    def test_copartition_results_match_shuffle(self):
        shark = SharkContext(num_workers=4)
        shark.create_table(
            "raw_l", Schema.of(("k", INT), ("v", DOUBLE)), cached=True
        )
        shark.load_rows("raw_l", [(i % 25, float(i)) for i in range(300)])
        shark.create_table(
            "raw_o", Schema.of(("k", INT), ("w", STRING)), cached=True
        )
        shark.load_rows("raw_o", [(i, f"o{i}") for i in range(25)])
        shark.sql(
            "CREATE TABLE lm TBLPROPERTIES ('shark.cache'='true') "
            "AS SELECT * FROM raw_l DISTRIBUTE BY k"
        )
        shark.sql(
            "CREATE TABLE om TBLPROPERTIES ('shark.cache'='true', "
            "'copartition'='lm') AS SELECT * FROM raw_o DISTRIBUTE BY k"
        )
        fast = shark.sql(
            "SELECT lm.v, om.w FROM lm JOIN om ON lm.k = om.k"
        )
        config = replace(shark.session.config, enable_copartition_join=False)
        shark.session.config = config
        slow = shark.sql(
            "SELECT lm.v, om.w FROM lm JOIN om ON lm.k = om.k"
        )
        assert sorted(fast.rows) == sorted(slow.rows)

    def test_missing_distribute_by_disables_copartition(self):
        shark = SharkContext(num_workers=4)
        shark.create_table(
            "a", Schema.of(("k", INT), ("v", INT)), cached=True
        )
        shark.load_rows("a", [(i, i) for i in range(20)])
        shark.create_table(
            "b", Schema.of(("k", INT), ("w", INT)), cached=True
        )
        shark.load_rows("b", [(i, i * 2) for i in range(20)])
        result = shark.sql("SELECT a.v, b.w FROM a JOIN b ON a.k = b.k")
        decisions = [d.strategy for d in result.report.join_decisions]
        assert "copartitioned" not in decisions
        assert len(result.rows) == 20

    def test_copartition_requires_matching_target(self):
        from repro.errors import AnalysisError

        shark = SharkContext(num_workers=4)
        shark.create_table("x", Schema.of(("k", INT)), cached=True)
        shark.load_rows("x", [(1,)])
        with pytest.raises(AnalysisError, match="DISTRIBUTE BY"):
            shark.sql(
                "CREATE TABLE y TBLPROPERTIES ('shark.cache'='true', "
                "'copartition'='x') AS SELECT * FROM x DISTRIBUTE BY k"
            )


class TestCrossJoin:
    def test_cartesian_product(self):
        shark = SharkContext(num_workers=2)
        shark.create_table("l", Schema.of(("a", INT)), cached=True)
        shark.load_rows("l", [(1,), (2,)])
        shark.create_table("r", Schema.of(("b", INT)), cached=True)
        shark.load_rows("r", [(10,), (20,), (30,)])
        result = shark.sql("SELECT a, b FROM l, r")
        assert len(result.rows) == 6

    def test_cross_with_non_equi_filter(self):
        shark = SharkContext(num_workers=2)
        shark.create_table("l", Schema.of(("a", INT)), cached=True)
        shark.load_rows("l", [(1,), (5,)])
        shark.create_table("r", Schema.of(("b", INT)), cached=True)
        shark.load_rows("r", [(2,), (4,)])
        result = shark.sql("SELECT a, b FROM l, r WHERE a < b")
        assert sorted(result.rows) == [(1, 2), (1, 4)]

"""Distributed file store and HdfsRDD scans."""

import pytest

from repro.columnar.serde import TextSerde
from repro.datatypes import INT, STRING, Schema
from repro.errors import FileNotFoundInStoreError, StorageError
from repro.storage import DistributedFileStore, HdfsRDD


class TestFileStore:
    def test_write_read_blocks(self):
        store = DistributedFileStore()
        store.write_file("/a", [b"one", b"two"])
        assert store.read_block("/a", 0) == b"one"
        assert store.read_block("/a", 1) == b"two"

    def test_duplicate_write_rejected(self):
        store = DistributedFileStore()
        store.write_file("/a", [b"x"])
        with pytest.raises(StorageError):
            store.write_file("/a", [b"y"])
        store.write_file("/a", [b"y"], overwrite=True)
        assert store.read_block("/a", 0) == b"y"

    def test_missing_file(self):
        store = DistributedFileStore()
        with pytest.raises(FileNotFoundInStoreError):
            store.read_block("/ghost", 0)

    def test_block_out_of_range(self):
        store = DistributedFileStore()
        store.write_file("/a", [b"x"])
        with pytest.raises(StorageError):
            store.read_block("/a", 5)

    def test_append_block(self):
        store = DistributedFileStore()
        store.write_file("/a", [b"one"])
        store.append_block("/a", b"two")
        assert store.file("/a").num_blocks == 2

    def test_replication_accounting(self):
        store = DistributedFileStore(default_replication=3)
        store.write_file("/a", [b"x" * 100])
        assert store.counters.bytes_written == 100
        assert store.counters.bytes_replicated == 200

    def test_read_accounting(self):
        store = DistributedFileStore()
        store.write_file("/a", [b"abcd"])
        store.read_block("/a", 0)
        assert store.counters.bytes_read == 4
        assert store.counters.blocks_read == 1

    def test_delete_and_list(self):
        store = DistributedFileStore()
        store.write_file("/b", [b"x"])
        store.write_file("/a", [b"y"])
        assert store.list_files() == ["/a", "/b"]
        store.delete("/b")
        assert not store.exists("/b")

    def test_total_bytes(self):
        store = DistributedFileStore()
        store.write_file("/a", [b"xx", b"yyy"])
        assert store.total_bytes == 5


class TestHdfsRDD:
    schema = Schema.of(("id", INT), ("name", STRING))

    def _store_with_table(self):
        store = DistributedFileStore()
        serde = TextSerde(self.schema)
        blocks = [
            serde.encode([(1, "a"), (2, "b")]),
            serde.encode([(3, "c")]),
        ]
        store.write_file("/t", blocks, format="text")
        return store

    def test_scan_rows(self, ctx):
        store = self._store_with_table()
        rdd = HdfsRDD(ctx, store, "/t", self.schema)
        assert rdd.num_partitions == 2
        assert rdd.collect() == [(1, "a"), (2, "b"), (3, "c")]

    def test_metrics_mark_disk_source(self, ctx):
        store = self._store_with_table()
        rdd = HdfsRDD(ctx, store, "/t", self.schema)
        rdd.collect()
        stage = ctx.last_profile.stages[0]
        assert all(task.source == "disk" for task in stage.tasks)
        assert stage.bytes_in > 0

    def test_empty_file(self, ctx):
        store = DistributedFileStore()
        store.write_file("/empty", [], format="text")
        rdd = HdfsRDD(ctx, store, "/empty", self.schema)
        assert rdd.collect() == []

    def test_unknown_format_rejected(self, ctx):
        store = DistributedFileStore()
        store.write_file("/t", [b""], format="parquet")
        with pytest.raises(StorageError):
            HdfsRDD(ctx, store, "/t", self.schema)
